//! Network serving tier: a zero-dependency TCP front-end over the
//! [`ModelRegistry`] / resilient batch engine.
//!
//! The wire protocol is deliberately small: each direction carries
//! length-prefixed frames (a 4-byte big-endian payload length followed
//! by that many payload bytes), and each payload is the same versioned
//! JSON envelope `core::io` uses for artifacts —
//! `{"artifact":"serve-request","version":1,"payload":{...}}` — so a
//! stale or foreign frame fails with the same typed errors as a stale
//! artifact file. Every malformed input maps to a typed [`WireError`];
//! nothing in this module panics on hostile bytes.
//!
//! Requests carry an SLO class name plus optional deadline; the server
//! prices both against its per-class [`ClassPolicy`] (admission cap,
//! deadline floor, sample budget) and threads the result through
//! [`crate::RequestClass`] so retry/breaker/telemetry all see the same
//! class label end to end (`net_connections`, `net_frames{result}`,
//! `request_latency_ns{class}`).
//!
//! The module also hosts the closed/open-loop load generator and the
//! serve soak harness (`run_serve_soak`) used by the `loadgen` bench
//! binary, the `fastbcnn serve-net` subcommand and `tests/serve_soak.rs`.
//! Floating-point tensors cross the wire as IEEE-754 bit patterns
//! (`u32`), keeping responses byte-exact for golden fixtures and
//! bit-identity spot checks against [`Engine::predict_robust_seeded`].

use std::collections::BTreeMap;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use fbcnn_nn::models::ModelKind;
use fbcnn_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

use crate::io::{IoError, FORMAT_VERSION};
use crate::{
    error_reason_name, synth_input, BatchRequest, Engine, EngineConfig, ModelArtifact,
    ModelRegistry, NoJitter, RegistryConfig, RegistryOutcome, RequestClass, ResilienceConfig,
    VersionCounters,
};

/// Envelope kind of a request frame.
pub const REQUEST_KIND: &str = "serve-request";
/// Envelope kind of a response frame.
pub const RESPONSE_KIND: &str = "serve-response";
/// Bytes of the big-endian length prefix in front of every frame.
pub const LEN_PREFIX_BYTES: usize = 4;
/// Default per-frame payload ceiling (1 MiB).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;
/// Counter metric: connections, labelled `result=accepted|rejected`.
pub const NET_CONNECTIONS_METRIC: &str = "net_connections";
/// Counter metric: served frames, labelled
/// `result=ok|failed|shed|wire_error|unknown_class`.
pub const NET_FRAMES_METRIC: &str = "net_frames";
/// Counter metric: responses whose deadline/sample budget expired
/// (a subset of `net_frames{result=ok|failed}`).
pub const NET_EXPIRED_METRIC: &str = "net_expired";

/// Counter metric: responses computed but never delivered because the
/// peer stopped draining its socket past the write deadline.
pub const NET_WRITE_DEADLINE_METRIC: &str = "net_write_deadline_drops";

// ---------------------------------------------------------------------------
// Typed wire errors
// ---------------------------------------------------------------------------

/// Every way a frame or its payload can be rejected. The protocol
/// contract (enforced by `tests/wire_props.rs`) is that arbitrary bytes
/// fed to the codec yield one of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended mid-frame.
    Truncated {
        /// Bytes actually present.
        have: usize,
        /// Bytes the prefix (or frame header) promised.
        need: usize,
    },
    /// The length prefix exceeds the configured frame ceiling.
    Oversized {
        /// Length the prefix declared.
        len: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// The payload is not a well-formed `core::io` envelope.
    Envelope(String),
    /// The envelope's format version is not this build's
    /// [`FORMAT_VERSION`].
    StaleVersion {
        /// Version found on the wire.
        found: u32,
        /// Version this build speaks.
        expected: u32,
    },
    /// The envelope holds a different artifact kind than expected.
    ForeignKind {
        /// Kind found on the wire.
        found: String,
        /// Kind the receiver wanted.
        expected: String,
    },
    /// The envelope was fine but its payload JSON did not decode into
    /// the expected message (or failed message-level validation).
    Payload(String),
    /// A read deadline elapsed with a partial frame buffered.
    Deadline {
        /// The deadline that elapsed, in milliseconds.
        waited_ms: u64,
    },
    /// A write deadline elapsed with the peer not draining its socket —
    /// the response was computed but could not be delivered (slow-loris
    /// reader / back-pressure).
    WriteDeadline {
        /// The deadline that elapsed, in milliseconds.
        waited_ms: u64,
    },
    /// Transport-level failure (socket error, peer closed mid-exchange).
    Io(String),
}

impl WireError {
    /// Stable reason label (`wire_*`) used as the `reason` field of
    /// error responses and for counter reconciliation.
    pub fn reason(&self) -> &'static str {
        match self {
            WireError::Truncated { .. } => "wire_truncated",
            WireError::Oversized { .. } => "wire_oversized",
            WireError::Envelope(_) => "wire_envelope",
            WireError::StaleVersion { .. } => "wire_stale_version",
            WireError::ForeignKind { .. } => "wire_foreign_kind",
            WireError::Payload(_) => "wire_payload",
            WireError::Deadline { .. } => "wire_deadline",
            WireError::WriteDeadline { .. } => "wire_write_deadline",
            WireError::Io(_) => "wire_io",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds ceiling {max}")
            }
            WireError::Envelope(msg) => write!(f, "bad envelope: {msg}"),
            WireError::StaleVersion { found, expected } => {
                write!(
                    f,
                    "stale wire version {found} (this build speaks {expected})"
                )
            }
            WireError::ForeignKind { found, expected } => {
                write!(f, "foreign frame kind {found:?} (expected {expected:?})")
            }
            WireError::Payload(msg) => write!(f, "bad payload: {msg}"),
            WireError::Deadline { waited_ms } => {
                write!(f, "read deadline ({waited_ms} ms) elapsed mid-frame")
            }
            WireError::WriteDeadline { waited_ms } => {
                write!(
                    f,
                    "write deadline ({waited_ms} ms) elapsed with the peer not reading"
                )
            }
            WireError::Io(msg) => write!(f, "transport failure: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<IoError> for WireError {
    fn from(e: IoError) -> Self {
        match e {
            IoError::Envelope(msg) => WireError::Envelope(msg),
            IoError::Version { found, expected } => WireError::StaleVersion { found, expected },
            IoError::Kind { found, expected } => WireError::ForeignKind { found, expected },
            IoError::Serde(err) => WireError::Payload(err.to_string()),
            IoError::Io(err) => WireError::Io(err.to_string()),
        }
    }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Wraps `payload` in a 4-byte big-endian length prefix.
///
/// # Errors
///
/// [`WireError::Oversized`] when the payload exceeds `max` bytes.
pub fn encode_frame(payload: &[u8], max: usize) -> Result<Vec<u8>, WireError> {
    if payload.len() > max || payload.len() > u32::MAX as usize {
        return Err(WireError::Oversized {
            len: payload.len(),
            max: max.min(u32::MAX as usize),
        });
    }
    let mut out = Vec::with_capacity(LEN_PREFIX_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Incremental frame decoder tolerant of arbitrary read chunking:
/// bytes go in via [`push`](FrameDecoder::push) in whatever splits the
/// socket produced, complete frames come out via
/// [`next_frame`](FrameDecoder::next_frame), and
/// [`finish`](FrameDecoder::finish) types out whatever is left when the
/// stream ends.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    max: usize,
}

impl FrameDecoder {
    /// A decoder enforcing `max` payload bytes per frame.
    pub fn new(max: usize) -> Self {
        Self {
            buf: Vec::new(),
            pos: 0,
            max,
        }
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn available(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn peek_len(&self) -> Option<usize> {
        if self.available() < LEN_PREFIX_BYTES {
            return None;
        }
        let b = &self.buf[self.pos..self.pos + LEN_PREFIX_BYTES];
        Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize)
    }

    /// Pops the next complete frame payload, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] when the buffered length prefix exceeds
    /// the decoder's ceiling — the connection is unrecoverable at that
    /// point, since the prefix cannot be trusted to resynchronize.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let Some(len) = self.peek_len() else {
            return Ok(None);
        };
        if len > self.max {
            return Err(WireError::Oversized { len, max: self.max });
        }
        if self.available() < LEN_PREFIX_BYTES + len {
            return Ok(None);
        }
        let start = self.pos + LEN_PREFIX_BYTES;
        let frame = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        // Reclaim consumed space so long-lived connections stay O(frame).
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(frame.into())
    }

    /// True when no undecoded bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.available() == 0
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.available()
    }

    /// Validates end-of-stream: any leftover partial frame becomes a
    /// typed error.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] for a partial prefix or body,
    /// [`WireError::Oversized`] for a poisoned length prefix.
    pub fn finish(&self) -> Result<(), WireError> {
        let avail = self.available();
        if avail == 0 {
            return Ok(());
        }
        match self.peek_len() {
            None => Err(WireError::Truncated {
                have: avail,
                need: LEN_PREFIX_BYTES,
            }),
            Some(len) if len > self.max => Err(WireError::Oversized { len, max: self.max }),
            Some(len) => {
                let body = avail - LEN_PREFIX_BYTES;
                if body < len {
                    Err(WireError::Truncated {
                        have: body,
                        need: len,
                    })
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Serializes `payload_json` into an envelope of `kind` and frames it.
///
/// # Errors
///
/// [`WireError::Oversized`] when the sealed envelope exceeds `max`.
pub fn seal_frame(kind: &str, payload_json: &str, max: usize) -> Result<Vec<u8>, WireError> {
    let envelope = format!(
        "{{\"artifact\":\"{kind}\",\"version\":{FORMAT_VERSION},\"payload\":{payload_json}}}"
    );
    encode_frame(envelope.as_bytes(), max)
}

/// Opens a frame payload as an envelope of `kind`, returning the inner
/// payload JSON.
///
/// # Errors
///
/// Typed [`WireError`] for non-UTF-8 bytes, malformed envelopes, stale
/// versions and foreign kinds.
pub fn open_frame(frame: &[u8], kind: &str) -> Result<String, WireError> {
    let text = std::str::from_utf8(frame)
        .map_err(|e| WireError::Envelope(format!("frame is not UTF-8: {e}")))?;
    let (found_kind, version, payload) = crate::io::parse_envelope(text)?;
    if version != FORMAT_VERSION {
        return Err(WireError::StaleVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    if found_kind != kind {
        return Err(WireError::ForeignKind {
            found: found_kind.to_string(),
            expected: kind.to_string(),
        });
    }
    Ok(payload.to_string())
}

// ---------------------------------------------------------------------------
// Wire messages
// ---------------------------------------------------------------------------

/// One inference request on the wire. Input pixels travel as IEEE-754
/// bit patterns so encode → decode is byte-lossless and fixtures can pin
/// exact frames.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-chosen request id (feeds the deterministic seed derivation).
    pub id: u64,
    /// SLO class name; must match a server-side [`ClassPolicy`].
    pub class: String,
    /// Optional client deadline in milliseconds; the server prices it
    /// against the class deadline and enforces the tighter of the two.
    pub deadline_ms: Option<u64>,
    /// Explicit mask-seed override (`None` derives from the id).
    pub seed: Option<u64>,
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Row-major input pixels as `f32::to_bits` patterns;
    /// `len == channels * height * width`.
    pub data_bits: Vec<u32>,
}

impl ServeRequest {
    /// Builds a request from a tensor input.
    pub fn from_input(id: u64, class: impl Into<String>, input: &Tensor) -> Self {
        let shape = input.shape();
        Self {
            id,
            class: class.into(),
            deadline_ms: None,
            seed: None,
            channels: shape.channels(),
            height: shape.height(),
            width: shape.width(),
            data_bits: input.iter().map(|v| v.to_bits()).collect(),
        }
    }

    /// Reconstructs the input tensor, validating dimensions first
    /// (`Tensor::from_vec` panics on mismatch, so hostile frames must
    /// fail here with a typed error instead).
    ///
    /// # Errors
    ///
    /// [`WireError::Payload`] on zero dimensions, overflowing products
    /// or a `data_bits` length that disagrees with the shape.
    pub fn input(&self) -> Result<Tensor, WireError> {
        if self.channels == 0 || self.height == 0 || self.width == 0 {
            return Err(WireError::Payload(format!(
                "degenerate input shape {}x{}x{}",
                self.channels, self.height, self.width
            )));
        }
        let expected = self
            .channels
            .checked_mul(self.height)
            .and_then(|n| n.checked_mul(self.width))
            .ok_or_else(|| WireError::Payload("input shape product overflows".to_string()))?;
        if expected != self.data_bits.len() {
            return Err(WireError::Payload(format!(
                "input shape {}x{}x{} wants {expected} values, frame carries {}",
                self.channels,
                self.height,
                self.width,
                self.data_bits.len()
            )));
        }
        let data = self.data_bits.iter().map(|b| f32::from_bits(*b)).collect();
        Ok(Tensor::from_vec(
            Shape::new(self.channels, self.height, self.width),
            data,
        ))
    }

    /// Serializes into a sealed, length-prefixed frame.
    ///
    /// # Errors
    ///
    /// [`WireError`] on serialization failure or an oversized frame.
    pub fn encode(&self, max: usize) -> Result<Vec<u8>, WireError> {
        let payload = serde_json::to_string(self).map_err(|e| WireError::Payload(e.to_string()))?;
        seal_frame(REQUEST_KIND, &payload, max)
    }

    /// Decodes a frame payload (envelope + message JSON).
    ///
    /// # Errors
    ///
    /// Typed [`WireError`] for envelope or payload failures.
    pub fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let payload = open_frame(frame, REQUEST_KIND)?;
        serde_json::from_str(&payload).map_err(|e| WireError::Payload(e.to_string()))
    }
}

/// One inference response on the wire. Deliberately free of wall-clock
/// fields so identical requests produce byte-identical responses — the
/// property the golden fixtures and the determinism test pin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeResponse {
    /// Request id, echoed back (0 when the request was undecodable).
    pub id: u64,
    /// Class the request was served under (empty when undecodable).
    pub class: String,
    /// Whether a prediction was produced.
    pub ok: bool,
    /// `"ok"`, a typed engine reason (`expired`, `overloaded`, ...), a
    /// `wire_*` reason, or `"unknown_class"`.
    pub reason: String,
    /// Whether admission control shed the request before inference.
    pub shed: bool,
    /// Whether a deadline/sample budget expired the request (partial
    /// prediction when `ok`, typed expiry error otherwise).
    pub expired: bool,
    /// [`crate::DegradedMode`] name of an `ok` response, else `"none"`.
    pub degraded: String,
    /// Monte-Carlo samples that contributed to the prediction.
    pub used_samples: u64,
    /// Samples the engine configuration asked for.
    pub requested_samples: u64,
    /// Predicted class index (0 when not `ok`).
    pub predicted: u64,
    /// Posterior mean as `f32::to_bits` patterns (empty when not `ok`).
    pub mean_bits: Vec<u32>,
    /// Predictive entropy as an `f32::to_bits` pattern (0 when not `ok`).
    pub entropy_bits: u32,
    /// Model version that served the request (0 when it never routed).
    pub version: u64,
    /// Shard that served the request (0 when it never routed).
    pub shard: u64,
    /// Execution attempts (0 when the request never reached the engine).
    pub attempts: u32,
}

impl ServeResponse {
    /// Posterior mean decoded back to floats.
    pub fn mean(&self) -> Vec<f32> {
        self.mean_bits.iter().map(|b| f32::from_bits(*b)).collect()
    }

    /// True when the response is a full-fidelity fast-path prediction —
    /// the bit-identity contract only binds for these.
    pub fn is_pristine(&self) -> bool {
        self.ok && !self.expired && self.degraded == "healthy"
    }

    /// Serializes into a sealed, length-prefixed frame.
    ///
    /// # Errors
    ///
    /// [`WireError`] on serialization failure or an oversized frame.
    pub fn encode(&self, max: usize) -> Result<Vec<u8>, WireError> {
        let payload = serde_json::to_string(self).map_err(|e| WireError::Payload(e.to_string()))?;
        seal_frame(RESPONSE_KIND, &payload, max)
    }

    /// Decodes a frame payload (envelope + message JSON).
    ///
    /// # Errors
    ///
    /// Typed [`WireError`] for envelope or payload failures.
    pub fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let payload = open_frame(frame, RESPONSE_KIND)?;
        serde_json::from_str(&payload).map_err(|e| WireError::Payload(e.to_string()))
    }
}

fn reject_response(id: u64, class: &str, reason: &str) -> ServeResponse {
    ServeResponse {
        id,
        class: class.to_string(),
        ok: false,
        reason: reason.to_string(),
        shed: false,
        expired: false,
        degraded: "none".to_string(),
        used_samples: 0,
        requested_samples: 0,
        predicted: 0,
        mean_bits: Vec::new(),
        entropy_bits: 0,
        version: 0,
        shard: 0,
        attempts: 0,
    }
}

fn shed_response(id: u64, class: &str) -> ServeResponse {
    ServeResponse {
        shed: true,
        ..reject_response(id, class, "overloaded")
    }
}

fn response_of(id: u64, class: &str, out: &RegistryOutcome) -> (ServeResponse, &'static str) {
    let ro = &out.outcome;
    match &ro.outcome.result {
        Ok((pred, report)) => (
            ServeResponse {
                id,
                class: class.to_string(),
                ok: true,
                reason: "ok".to_string(),
                shed: ro.shed,
                expired: ro.expired,
                degraded: report.mode.name().to_string(),
                used_samples: report.used_samples as u64,
                requested_samples: report.requested_samples as u64,
                predicted: pred.class as u64,
                mean_bits: pred.mean.iter().map(|v| v.to_bits()).collect(),
                entropy_bits: pred.predictive_entropy.to_bits(),
                version: out.version,
                shard: out.shard as u64,
                attempts: ro.attempts,
            },
            "ok",
        ),
        Err(e) => (
            ServeResponse {
                id,
                class: class.to_string(),
                ok: false,
                reason: error_reason_name(e).to_string(),
                shed: ro.shed,
                expired: ro.expired,
                degraded: "none".to_string(),
                used_samples: 0,
                requested_samples: 0,
                predicted: 0,
                mean_bits: Vec::new(),
                entropy_bits: 0,
                version: out.version,
                shard: out.shard as u64,
                attempts: ro.attempts,
            },
            "failed",
        ),
    }
}

// ---------------------------------------------------------------------------
// Server configuration and admission control
// ---------------------------------------------------------------------------

/// Per-SLO-class serving policy; admission control prices every request
/// against its class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassPolicy {
    /// Class name carried on the wire and on every telemetry label.
    pub name: String,
    /// Class deadline; the effective deadline is the tighter of this
    /// and the request's own `deadline_ms`.
    pub deadline: Option<Duration>,
    /// Deterministic sample budget (expires after this many sample
    /// checkpoints) — the testable deadline used by golden fixtures.
    pub sample_budget: Option<u64>,
    /// Concurrent in-flight requests admitted for this class; 0 sheds
    /// everything (a deterministic-rejection tier), `usize::MAX` is
    /// unbounded.
    pub max_inflight: usize,
}

impl ClassPolicy {
    /// An unbounded class with no deadline.
    pub fn unbounded(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            deadline: None,
            sample_budget: None,
            max_inflight: usize::MAX,
        }
    }
}

/// Default SLO tiers: `interactive` (250 ms, capped fan-in),
/// `standard` (2 s), `batch` (no deadline).
pub fn default_classes() -> Vec<ClassPolicy> {
    vec![
        ClassPolicy {
            name: "interactive".to_string(),
            deadline: Some(Duration::from_millis(250)),
            sample_budget: None,
            max_inflight: 64,
        },
        ClassPolicy {
            name: "standard".to_string(),
            deadline: Some(Duration::from_secs(2)),
            sample_budget: None,
            max_inflight: usize::MAX,
        },
        ClassPolicy::unbounded("batch"),
    ]
}

/// Knobs of the TCP server front-end.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// SLO classes this server admits.
    pub classes: Vec<ClassPolicy>,
    /// Per-frame payload ceiling in bytes.
    pub max_frame_bytes: usize,
    /// Concurrent connections; excess accepts are counted and closed.
    pub max_connections: usize,
    /// Per-connection read deadline: a partial frame older than this is
    /// answered with [`WireError::Deadline`] and the connection closed.
    /// Idle connections (no partial frame) are unaffected.
    pub read_timeout: Duration,
    /// Per-connection write deadline: a response write stalled longer
    /// than this (the peer sent a request but never drains the reply —
    /// a slow-loris reader pinning the worker) is dropped with a typed
    /// [`WireError::WriteDeadline`] and the connection closed. Must be
    /// non-zero.
    pub write_timeout: Duration,
    /// Accept-loop poll interval (the listener is non-blocking so
    /// shutdown stays responsive).
    pub accept_poll: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            classes: default_classes(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_connections: 256,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(10),
            accept_poll: Duration::from_millis(2),
        }
    }
}

/// Snapshot of the server's frame/connection accounting — the
/// authoritative side of every soak reconciliation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeTotals {
    /// Connections accepted and served.
    pub connections: u64,
    /// Connections closed immediately because `max_connections` was hit.
    pub connections_rejected: u64,
    /// Frames answered with an `ok` prediction (including expired
    /// partial-sample predictions).
    pub frames_ok: u64,
    /// Frames answered with a typed engine error.
    pub frames_failed: u64,
    /// Frames shed by per-class admission control (never reached the
    /// registry).
    pub frames_shed: u64,
    /// Frames (or streams) rejected with a typed [`WireError`].
    pub frames_wire_error: u64,
    /// Frames naming a class the server does not admit.
    pub frames_unknown_class: u64,
    /// Responses whose deadline/sample budget expired (subset of
    /// `frames_ok + frames_failed`).
    pub expired: u64,
    /// Responses computed but never delivered because the peer stopped
    /// draining its socket past the write deadline. The frame itself is
    /// already counted under its result label, so this is an overlay —
    /// deliberately not part of [`ServeTotals::frames_total`].
    pub write_deadline_drops: u64,
}

impl ServeTotals {
    /// Every frame the server accounted for, across all result labels.
    pub fn frames_total(&self) -> u64 {
        self.frames_ok
            + self.frames_failed
            + self.frames_shed
            + self.frames_wire_error
            + self.frames_unknown_class
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    connections_rejected: AtomicU64,
    frames_ok: AtomicU64,
    frames_failed: AtomicU64,
    frames_shed: AtomicU64,
    frames_wire_error: AtomicU64,
    frames_unknown_class: AtomicU64,
    expired: AtomicU64,
    write_deadline_drops: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServeTotals {
        ServeTotals {
            connections: self.connections.load(Ordering::Acquire),
            connections_rejected: self.connections_rejected.load(Ordering::Acquire),
            frames_ok: self.frames_ok.load(Ordering::Acquire),
            frames_failed: self.frames_failed.load(Ordering::Acquire),
            frames_shed: self.frames_shed.load(Ordering::Acquire),
            frames_wire_error: self.frames_wire_error.load(Ordering::Acquire),
            frames_unknown_class: self.frames_unknown_class.load(Ordering::Acquire),
            expired: self.expired.load(Ordering::Acquire),
            write_deadline_drops: self.write_deadline_drops.load(Ordering::Acquire),
        }
    }

    fn note_frame(&self, label: &'static str) {
        let cell = match label {
            "ok" => &self.frames_ok,
            "failed" => &self.frames_failed,
            "shed" => &self.frames_shed,
            "wire_error" => &self.frames_wire_error,
            _ => &self.frames_unknown_class,
        };
        cell.fetch_add(1, Ordering::AcqRel);
        fbcnn_telemetry::counter_add(NET_FRAMES_METRIC, &[("result", label)], 1);
    }
}

struct ClassSlot {
    policy: ClassPolicy,
    inflight: AtomicUsize,
}

impl ClassSlot {
    fn try_admit(&self) -> bool {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.policy.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

struct NetState {
    registry: Arc<ModelRegistry>,
    cfg: ServeConfig,
    classes: Vec<ClassSlot>,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    counters: Counters,
}

fn effective_deadline(policy: Option<Duration>, request_ms: Option<u64>) -> Option<Duration> {
    let requested = request_ms.map(Duration::from_millis);
    match (policy, requested) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

fn serve_frame(state: &NetState, frame: &[u8]) -> (ServeResponse, &'static str) {
    let req = match ServeRequest::decode(frame) {
        Ok(req) => req,
        Err(e) => return (reject_response(0, "", e.reason()), "wire_error"),
    };
    let input = match req.input() {
        Ok(input) => input,
        Err(e) => {
            return (
                reject_response(req.id, &req.class, e.reason()),
                "wire_error",
            )
        }
    };
    let Some(slot) = state.classes.iter().find(|s| s.policy.name == req.class) else {
        return (
            reject_response(req.id, &req.class, "unknown_class"),
            "unknown_class",
        );
    };
    if !slot.try_admit() {
        return (shed_response(req.id, &req.class), "shed");
    }
    let class = RequestClass {
        name: slot.policy.name.clone(),
        deadline: effective_deadline(slot.policy.deadline, req.deadline_ms),
        sample_budget: slot.policy.sample_budget,
    };
    let mut batch_req = BatchRequest::new(req.id, input);
    batch_req.seed = req.seed;
    let outcome = state.registry.handle_classed(&batch_req, Some(&class));
    slot.release();
    response_of(req.id, &req.class, &outcome)
}

// ---------------------------------------------------------------------------
// The TCP server
// ---------------------------------------------------------------------------

/// A running [`serve`] instance. Dropping the handle shuts the server
/// down and drains its connections.
pub struct NetServerHandle {
    addr: SocketAddr,
    state: Arc<NetState>,
    accept: Option<thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl NetServerHandle {
    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server's accounting so far.
    pub fn totals(&self) -> ServeTotals {
        self.state.counters.snapshot()
    }

    fn drain(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = {
            let mut guard = self
                .connections
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: stop accepting, finish every buffered request,
    /// join all connection threads, and return the final accounting.
    pub fn shutdown(mut self) -> ServeTotals {
        self.drain();
        self.state.counters.snapshot()
    }
}

impl Drop for NetServerHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Boots the TCP front-end over `registry`.
///
/// The accept loop is non-blocking (polling `cfg.accept_poll`) so
/// shutdown stays responsive; each accepted connection gets its own
/// worker thread with a read deadline of `cfg.read_timeout`.
///
/// # Errors
///
/// [`WireError::Io`] when the listener cannot bind.
pub fn serve(registry: Arc<ModelRegistry>, cfg: ServeConfig) -> Result<NetServerHandle, WireError> {
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| WireError::Io(e.to_string()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let addr = listener
        .local_addr()
        .map_err(|e| WireError::Io(e.to_string()))?;
    let classes = cfg
        .classes
        .iter()
        .map(|policy| ClassSlot {
            policy: policy.clone(),
            inflight: AtomicUsize::new(0),
        })
        .collect();
    let state = Arc::new(NetState {
        registry,
        cfg,
        classes,
        shutdown: AtomicBool::new(false),
        active_connections: AtomicUsize::new(0),
        counters: Counters::default(),
    });
    let connections: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_state = Arc::clone(&state);
    let accept_connections = Arc::clone(&connections);
    let accept = thread::spawn(move || loop {
        if accept_state.shutdown.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let active = accept_state.active_connections.load(Ordering::Acquire);
                if active >= accept_state.cfg.max_connections {
                    accept_state
                        .counters
                        .connections_rejected
                        .fetch_add(1, Ordering::AcqRel);
                    fbcnn_telemetry::counter_add(
                        NET_CONNECTIONS_METRIC,
                        &[("result", "rejected")],
                        1,
                    );
                    drop(stream);
                    continue;
                }
                accept_state
                    .active_connections
                    .fetch_add(1, Ordering::AcqRel);
                accept_state
                    .counters
                    .connections
                    .fetch_add(1, Ordering::AcqRel);
                fbcnn_telemetry::counter_add(NET_CONNECTIONS_METRIC, &[("result", "accepted")], 1);
                let conn_state = Arc::clone(&accept_state);
                let worker = thread::spawn(move || {
                    handle_connection(&conn_state, stream);
                    conn_state.active_connections.fetch_sub(1, Ordering::AcqRel);
                });
                let mut guard = accept_connections
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                // Reap finished workers so long soaks stay O(active).
                let mut alive = Vec::with_capacity(guard.len() + 1);
                for handle in guard.drain(..) {
                    if handle.is_finished() {
                        let _ = handle.join();
                    } else {
                        alive.push(handle);
                    }
                }
                alive.push(worker);
                *guard = alive;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(accept_state.cfg.accept_poll);
            }
            Err(_) => thread::sleep(accept_state.cfg.accept_poll),
        }
    });

    Ok(NetServerHandle {
        addr,
        state,
        accept: Some(accept),
        connections,
    })
}

fn write_frame(stream: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    stream.write_all(bytes)?;
    stream.flush()
}

/// Classifies a failed response write: a `WouldBlock`/`TimedOut` error
/// kind means the socket's write deadline elapsed with the peer not
/// reading ([`WireError::WriteDeadline`]); anything else is a plain
/// transport failure ([`WireError::Io`]).
pub fn classify_write_failure(e: &std::io::Error, deadline: Duration) -> WireError {
    if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) {
        WireError::WriteDeadline {
            waited_ms: deadline.as_millis() as u64,
        }
    } else {
        WireError::Io(e.to_string())
    }
}

/// Encodes and writes `response`, classifying any failure.
///
/// # Errors
///
/// [`WireError::WriteDeadline`] when the write deadline elapsed with
/// the peer not draining the socket, the encode-time or transport
/// [`WireError`] otherwise.
fn send_response(
    stream: &mut TcpStream,
    state: &NetState,
    response: &ServeResponse,
) -> Result<(), WireError> {
    let bytes = response.encode(state.cfg.max_frame_bytes)?;
    write_frame(stream, &bytes).map_err(|e| classify_write_failure(&e, state.cfg.write_timeout))
}

/// [`send_response`] plus accounting: a write-deadline drop is counted
/// (the response was computed but the peer never drained it); any
/// failure tells the caller to close the connection.
fn deliver(stream: &mut TcpStream, state: &NetState, response: &ServeResponse) -> bool {
    match send_response(stream, state, response) {
        Ok(()) => true,
        Err(e) => {
            if matches!(e, WireError::WriteDeadline { .. }) {
                state
                    .counters
                    .write_deadline_drops
                    .fetch_add(1, Ordering::AcqRel);
                fbcnn_telemetry::counter_add(NET_WRITE_DEADLINE_METRIC, &[], 1);
            }
            false
        }
    }
}

fn handle_connection(state: &Arc<NetState>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(state.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(state.cfg.write_timeout));
    let mut decoder = FrameDecoder::new(state.cfg.max_frame_bytes);
    let mut buf = vec![0u8; 16 * 1024];
    'conn: loop {
        // Serve every complete frame already buffered.
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    let (response, label) = serve_frame(state, &frame);
                    state.counters.note_frame(label);
                    if response.expired {
                        state.counters.expired.fetch_add(1, Ordering::AcqRel);
                        fbcnn_telemetry::counter_add(NET_EXPIRED_METRIC, &[], 1);
                    }
                    if !deliver(&mut stream, state, &response) {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // A poisoned length prefix cannot resynchronize:
                    // answer with the typed error and close.
                    state.counters.note_frame("wire_error");
                    let _ = deliver(&mut stream, state, &reject_response(0, "", e.reason()));
                    break 'conn;
                }
            }
        }
        // Graceful drain: on shutdown, everything buffered has been
        // answered above; stop reading new work.
        if state.shutdown.load(Ordering::Acquire) && decoder.is_empty() {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                if decoder.finish().is_err() {
                    // Mid-frame EOF: typed, counted, nobody to answer.
                    state.counters.note_frame("wire_error");
                }
                break;
            }
            Ok(n) => decoder.push(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if decoder.is_empty() {
                    continue; // Idle connection: keep waiting.
                }
                // Partial frame older than the read deadline.
                let waited_ms = state.cfg.read_timeout.as_millis() as u64;
                state.counters.note_frame("wire_error");
                let _ = deliver(
                    &mut stream,
                    state,
                    &reject_response(0, "", WireError::Deadline { waited_ms }.reason()),
                );
                break;
            }
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking client for the serve protocol (used by the load
/// generator, the CLI self-drive and the protocol tests).
pub struct ServeClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    buf: Vec<u8>,
}

impl ServeClient {
    /// Connects with a receive deadline and frame ceiling.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on connect/socket-option failure.
    pub fn connect(
        addr: SocketAddr,
        read_timeout: Duration,
        max_frame: usize,
    ) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr).map_err(|e| WireError::Io(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| WireError::Io(e.to_string()))?;
        stream
            .set_read_timeout(Some(read_timeout))
            .map_err(|e| WireError::Io(e.to_string()))?;
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(max_frame),
            buf: vec![0u8; 16 * 1024],
        })
    }

    /// Sends pre-encoded bytes verbatim (the load generator uses this
    /// to inject malformed frames).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on transport failure.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        write_frame(&mut self.stream, bytes).map_err(|e| WireError::Io(e.to_string()))
    }

    /// Encodes and sends one request.
    ///
    /// # Errors
    ///
    /// [`WireError`] on encoding or transport failure.
    pub fn send(&mut self, req: &ServeRequest, max_frame: usize) -> Result<(), WireError> {
        let bytes = req.encode(max_frame)?;
        self.send_bytes(&bytes)
    }

    /// Blocks for the next response frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Deadline`] when the receive deadline elapses,
    /// [`WireError::Io`] when the server closes the stream, and any
    /// decode-level [`WireError`] for malformed responses.
    pub fn recv(&mut self) -> Result<ServeResponse, WireError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return ServeResponse::decode(&frame);
            }
            match self.stream.read(&mut self.buf) {
                Ok(0) => {
                    self.decoder.finish()?;
                    return Err(WireError::Io("server closed the connection".to_string()));
                }
                Ok(n) => {
                    let chunk = self.buf[..n].to_vec();
                    self.decoder.push(&chunk);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(WireError::Deadline { waited_ms: 0 });
                }
                Err(e) => return Err(WireError::Io(e.to_string())),
            }
        }
    }

    /// Sends a request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from [`send`](Self::send) or [`recv`](Self::recv).
    pub fn roundtrip(
        &mut self,
        req: &ServeRequest,
        max_frame: usize,
    ) -> Result<ServeResponse, WireError> {
        self.send(req, max_frame)?;
        self.recv()
    }
}

// ---------------------------------------------------------------------------
// Load generator
// ---------------------------------------------------------------------------

/// splitmix64 — the same cheap deterministic mixer the batch tier uses
/// for seed derivation.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Whether workers wait for each response before sending the next
/// request (closed loop) or pipeline a window of frames (open loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// One request in flight per connection; latency excludes queueing.
    Closed,
    /// A pipelined window per connection; latency includes queue wait.
    Open,
}

impl LoadMode {
    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LoadMode::Closed => "closed",
            LoadMode::Open => "open",
        }
    }

    /// Parses a report/CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "closed" => Some(LoadMode::Closed),
            "open" => Some(LoadMode::Open),
            _ => None,
        }
    }
}

/// Knobs of the seeded load generator.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Seed of the request mix (inputs, malformed variants).
    pub seed: u64,
    /// Closed or open loop.
    pub mode: LoadMode,
    /// Concurrent client connections (one worker thread each).
    pub connections: usize,
    /// Requests each connection offers.
    pub requests_per_connection: usize,
    /// Healthy SLO classes, cycled per request.
    pub classes: Vec<String>,
    /// Class targeted to provoke deterministic admission sheds (pair it
    /// with a server-side `max_inflight: 0` policy); `None` disables.
    pub shed_class: Option<String>,
    /// Every Nth request goes to `shed_class` (0 disables).
    pub shed_every: usize,
    /// Every Nth request carries `deadline_ms: 0`, forcing a typed
    /// expiry (0 disables).
    pub expiring_every: usize,
    /// Every Nth frame is malformed — garbage envelope, foreign kind,
    /// stale version or broken payload, chosen by seed (0 disables).
    pub malformed_every: usize,
    /// Every Nth pristine response is bit-checked against
    /// [`Engine::predict_robust_seeded`] (0 disables).
    pub bit_check_every: usize,
    /// Frames in flight per connection in [`LoadMode::Open`].
    pub open_pipeline: usize,
    /// Client receive deadline per response.
    pub read_timeout: Duration,
    /// Workers stop offering new requests past this wall-clock bound,
    /// keeping soaks boundable; `None` runs the full plan.
    pub time_limit: Option<Duration>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            mode: LoadMode::Closed,
            connections: 2,
            requests_per_connection: 32,
            classes: vec!["interactive".to_string(), "batch".to_string()],
            shed_class: None,
            shed_every: 0,
            expiring_every: 0,
            malformed_every: 0,
            bit_check_every: 8,
            open_pipeline: 8,
            read_timeout: Duration::from_secs(10),
            time_limit: None,
        }
    }
}

/// Client-side accounting, reconciled 1:1 against [`ServeTotals`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadgenTotals {
    /// Frames sent (requests plus injected malformed frames).
    pub offered: u64,
    /// `ok` responses received.
    pub ok: u64,
    /// Typed-engine-error responses received.
    pub failed: u64,
    /// Admission-shed responses received.
    pub shed: u64,
    /// Responses flagged expired (subset of `ok + failed`).
    pub expired: u64,
    /// `wire_*`-reason responses received.
    pub wire_error_responses: u64,
    /// `unknown_class` responses received.
    pub unknown_class: u64,
    /// Transport-level failures (lost responses, refused connects).
    pub transport_errors: u64,
    /// Reconnects workers performed after a transport failure.
    pub reconnects: u64,
    /// Pristine responses spot-checked for bit identity.
    pub bit_checked: u64,
    /// Spot checks that mismatched the reference engine.
    pub bit_mismatched: u64,
}

impl LoadgenTotals {
    fn merge(&mut self, other: &LoadgenTotals) {
        self.offered += other.offered;
        self.ok += other.ok;
        self.failed += other.failed;
        self.shed += other.shed;
        self.expired += other.expired;
        self.wire_error_responses += other.wire_error_responses;
        self.unknown_class += other.unknown_class;
        self.transport_errors += other.transport_errors;
        self.reconnects += other.reconnects;
        self.bit_checked += other.bit_checked;
        self.bit_mismatched += other.bit_mismatched;
    }
}

/// What one load-generator run observed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Aggregated client-side accounting.
    pub totals: LoadgenTotals,
    /// Client-measured request latencies in nanoseconds, per class
    /// (keyed `malformed` for injected bad frames).
    pub latencies_ns: BTreeMap<String, Vec<u64>>,
    /// Workers that died before finishing their plan (must be 0 for a
    /// soak to pass).
    pub aborted_workers: u64,
    /// Wall clock of the whole run in nanoseconds.
    pub elapsed_ns: u64,
}

struct Planned {
    bytes: Vec<u8>,
    class: String,
    /// `(request id, input pool index)` when this request is eligible
    /// for a bit-identity spot check.
    check: Option<(u64, usize)>,
}

fn malformed_frame(variant: u64, max: usize) -> Vec<u8> {
    let fallback = || vec![0u8; LEN_PREFIX_BYTES];
    match variant % 4 {
        0 => encode_frame(b"{\"nope\":true}", max).unwrap_or_else(|_| fallback()),
        1 => seal_frame("network", "{\"x\":1}", max).unwrap_or_else(|_| fallback()),
        2 => {
            let stale =
                format!("{{\"artifact\":\"{REQUEST_KIND}\",\"version\":99,\"payload\":{{}}}}");
            encode_frame(stale.as_bytes(), max).unwrap_or_else(|_| fallback())
        }
        _ => seal_frame(REQUEST_KIND, "{\"id\":\"zebra\"}", max).unwrap_or_else(|_| fallback()),
    }
}

fn plan_worker(
    cfg: &LoadgenConfig,
    worker: usize,
    pool: &[Tensor],
) -> Result<Vec<Planned>, WireError> {
    let mut plan = Vec::with_capacity(cfg.requests_per_connection);
    for i in 0..cfg.requests_per_connection {
        let id = ((worker as u64 + 1) << 32) | i as u64;
        let nth = i + 1;
        if cfg.malformed_every > 0 && nth % cfg.malformed_every == 0 {
            plan.push(Planned {
                bytes: malformed_frame(mix64(cfg.seed ^ id), DEFAULT_MAX_FRAME_BYTES),
                class: "malformed".to_string(),
                check: None,
            });
            continue;
        }
        let pool_idx = (mix64(cfg.seed.wrapping_add(id)) % pool.len() as u64) as usize;
        let shed_bound =
            cfg.shed_every > 0 && cfg.shed_class.is_some() && nth % cfg.shed_every == 0;
        let class = if shed_bound {
            cfg.shed_class.clone().unwrap_or_default()
        } else {
            cfg.classes[i % cfg.classes.len().max(1)].clone()
        };
        let mut req = ServeRequest::from_input(id, class.clone(), &pool[pool_idx]);
        let mut check = None;
        if !shed_bound {
            if cfg.expiring_every > 0 && nth % cfg.expiring_every == 0 {
                req.deadline_ms = Some(0);
            } else if cfg.bit_check_every > 0 && nth % cfg.bit_check_every == 0 {
                check = Some((id, pool_idx));
            }
        }
        plan.push(Planned {
            bytes: req.encode(DEFAULT_MAX_FRAME_BYTES)?,
            class,
            check,
        });
    }
    Ok(plan)
}

struct WorkerOut {
    totals: LoadgenTotals,
    latencies: BTreeMap<String, Vec<u64>>,
    aborted: bool,
}

fn bit_check(
    reference: &Engine,
    pool: &[Tensor],
    check: (u64, usize),
    resp: &ServeResponse,
    totals: &mut LoadgenTotals,
) {
    if !resp.is_pristine() {
        return;
    }
    let (id, pool_idx) = check;
    let seed = BatchRequest::new(id, pool[pool_idx].clone()).resolved_seed(reference.config().seed);
    totals.bit_checked += 1;
    match reference.predict_robust_seeded(&pool[pool_idx], seed) {
        Ok((pred, _report)) => {
            let mean_bits: Vec<u32> = pred.mean.iter().map(|v| v.to_bits()).collect();
            if mean_bits != resp.mean_bits || pred.class as u64 != resp.predicted {
                totals.bit_mismatched += 1;
            }
        }
        Err(_) => totals.bit_mismatched += 1,
    }
}

fn absorb(
    resp: &ServeResponse,
    class: &str,
    elapsed_ns: u64,
    totals: &mut LoadgenTotals,
    latencies: &mut BTreeMap<String, Vec<u64>>,
) {
    if resp.reason.starts_with("wire_") {
        totals.wire_error_responses += 1;
    } else if resp.reason == "unknown_class" {
        totals.unknown_class += 1;
    } else if resp.shed {
        totals.shed += 1;
    } else if resp.ok {
        totals.ok += 1;
    } else {
        totals.failed += 1;
    }
    if resp.expired {
        totals.expired += 1;
    }
    latencies
        .entry(class.to_string())
        .or_default()
        .push(elapsed_ns);
}

fn run_worker(
    addr: SocketAddr,
    reference: &Engine,
    cfg: &LoadgenConfig,
    pool: &[Tensor],
    plan: &[Planned],
    started: Instant,
) -> WorkerOut {
    let mut out = WorkerOut {
        totals: LoadgenTotals::default(),
        latencies: BTreeMap::new(),
        aborted: false,
    };
    let mut client = match ServeClient::connect(addr, cfg.read_timeout, DEFAULT_MAX_FRAME_BYTES) {
        Ok(c) => c,
        Err(_) => {
            out.totals.transport_errors += 1;
            out.aborted = true;
            return out;
        }
    };
    let window = match cfg.mode {
        LoadMode::Closed => 1,
        LoadMode::Open => cfg.open_pipeline.max(1),
    };
    for chunk in plan.chunks(window) {
        if let Some(limit) = cfg.time_limit {
            if started.elapsed() >= limit {
                break;
            }
        }
        // Pipeline the window, then collect its responses in order —
        // the server answers frames of one connection sequentially.
        let mut sent: Vec<(&Planned, Instant)> = Vec::with_capacity(chunk.len());
        for planned in chunk {
            if client.send_bytes(&planned.bytes).is_err() {
                out.totals.transport_errors += 1;
                out.aborted = true;
                return out;
            }
            out.totals.offered += 1;
            sent.push((planned, Instant::now()));
        }
        for (planned, sent_at) in sent {
            match client.recv() {
                Ok(resp) => {
                    let elapsed_ns = sent_at.elapsed().as_nanos() as u64;
                    absorb(
                        &resp,
                        &planned.class,
                        elapsed_ns,
                        &mut out.totals,
                        &mut out.latencies,
                    );
                    if let Some(check) = planned.check {
                        bit_check(reference, pool, check, &resp, &mut out.totals);
                    }
                }
                Err(_) => {
                    out.totals.transport_errors += 1;
                    match ServeClient::connect(addr, cfg.read_timeout, DEFAULT_MAX_FRAME_BYTES) {
                        Ok(next) => {
                            client = next;
                            out.totals.reconnects += 1;
                            break; // Responses of this window are lost.
                        }
                        Err(_) => {
                            out.aborted = true;
                            return out;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Runs the seeded load generator against a serve endpoint.
///
/// `reference` must be an engine bit-identical to the one behind the
/// server (same artifact) — it anchors the bit-identity spot checks.
pub fn run_loadgen(addr: SocketAddr, reference: &Engine, cfg: &LoadgenConfig) -> LoadgenReport {
    let started = Instant::now();
    let shape = reference.network().input_shape();
    let pool: Vec<Tensor> = (0..8)
        .map(|i| synth_input(shape, cfg.seed.wrapping_add(i)))
        .collect();
    let plans: Vec<Result<Vec<Planned>, WireError>> = (0..cfg.connections.max(1))
        .map(|w| plan_worker(cfg, w, &pool))
        .collect();
    let mut totals = LoadgenTotals::default();
    let mut latencies: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut aborted_workers = 0u64;
    let outs: Vec<WorkerOut> = thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let pool = &pool;
                scope.spawn(move || match plan {
                    Ok(plan) => run_worker(addr, reference, cfg, pool, plan, started),
                    Err(_) => WorkerOut {
                        totals: LoadgenTotals::default(),
                        latencies: BTreeMap::new(),
                        aborted: true,
                    },
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| WorkerOut {
                    totals: LoadgenTotals::default(),
                    latencies: BTreeMap::new(),
                    aborted: true,
                })
            })
            .collect()
    });
    for out in &outs {
        totals.merge(&out.totals);
        for (class, lat) in &out.latencies {
            latencies.entry(class.clone()).or_default().extend(lat);
        }
        if out.aborted {
            aborted_workers += 1;
        }
    }
    LoadgenReport {
        totals,
        latencies_ns: latencies,
        aborted_workers,
        elapsed_ns: started.elapsed().as_nanos() as u64,
    }
}

// ---------------------------------------------------------------------------
// Adversarial clients
// ---------------------------------------------------------------------------

/// Knobs of the adversarial client battery: deliberately hostile
/// connection behaviors driven against a live server to prove the
/// deadline/oversize/EOF defenses hold under churn. Each count is a
/// number of connections exhibiting that behavior; every behavior has a
/// deterministic server-side verdict, so the battery's effect on
/// [`ServeTotals`] reconciles exactly
/// (see [`AdversarialReport::expected_wire_errors`]).
#[derive(Debug, Clone)]
pub struct AdversarialConfig {
    /// Slow-loris connections: dribble a partial frame byte-by-byte,
    /// then stall until the server's read deadline rejects them
    /// (`wire_deadline`, one wire error each).
    pub slow_loris: usize,
    /// Connections that send a partial frame and abruptly close
    /// mid-frame (typed EOF truncation, one wire error each).
    pub abrupt_close: usize,
    /// Connections that declare an oversized length prefix
    /// (`wire_oversized`, one wire error each).
    pub oversize: usize,
    /// Connections that open and cleanly close without offering a frame
    /// (connection churn; no frames, no wire errors).
    pub churn: usize,
    /// Delay between dribbled slow-loris bytes.
    pub dribble_delay: Duration,
    /// How long each client waits for the server's verdict; must exceed
    /// the server's `read_timeout` for the slow-loris verdict to arrive.
    pub read_timeout: Duration,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        Self {
            slow_loris: 1,
            abrupt_close: 1,
            oversize: 1,
            churn: 2,
            dribble_delay: Duration::from_millis(5),
            read_timeout: Duration::from_secs(10),
        }
    }
}

impl AdversarialConfig {
    /// Connections the battery opens.
    pub fn connections(&self) -> u64 {
        (self.slow_loris + self.abrupt_close + self.oversize + self.churn) as u64
    }

    /// Wire errors the battery deterministically provokes server-side.
    pub fn expected_wire_errors(&self) -> u64 {
        (self.slow_loris + self.abrupt_close + self.oversize) as u64
    }
}

/// What the adversarial battery observed.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct AdversarialReport {
    /// Connections opened.
    pub connections: u64,
    /// Wire errors the server must have counted for this battery
    /// (one per slow-loris, abrupt-close and oversize connection).
    pub expected_wire_errors: u64,
    /// Typed `wire_*` reject responses actually read back before the
    /// server closed (abrupt-close clients cannot receive one).
    pub rejects_received: u64,
    /// Clients whose connection failed outright (must be 0 for a soak).
    pub transport_errors: u64,
    /// Wall clock of the battery in nanoseconds.
    pub elapsed_ns: u64,
}

/// Reads one response frame with a deadline, returning its `reason` if
/// it is a typed `wire_*` reject.
fn read_wire_reject(stream: &mut TcpStream, read_timeout: Duration) -> Option<String> {
    let _ = stream.set_read_timeout(Some(read_timeout));
    let mut decoder = FrameDecoder::new(DEFAULT_MAX_FRAME_BYTES);
    let mut buf = [0u8; 4096];
    loop {
        match decoder.next_frame() {
            Ok(Some(frame)) => {
                let resp = ServeResponse::decode(&frame).ok()?;
                return resp.reason.starts_with("wire_").then_some(resp.reason);
            }
            Ok(None) => {}
            Err(_) => return None,
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => decoder.push(&buf[..n]),
            Err(_) => return None,
        }
    }
}

/// One adversarial connection; returns `(got_reject, transport_error)`.
fn run_adversary(addr: SocketAddr, mode: usize, cfg: &AdversarialConfig) -> (bool, bool) {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return (false, true);
    };
    let _ = stream.set_nodelay(true);
    match mode {
        // Slow loris: a valid prefix promising 64 bytes, dribbled body,
        // then a stall the server must answer with `wire_deadline`.
        0 => {
            let prefix = (64u32).to_be_bytes();
            if stream.write_all(&prefix).is_err() {
                return (false, true);
            }
            for _ in 0..4 {
                if stream.write_all(&[0x7B]).is_err() {
                    return (false, true);
                }
                let _ = stream.flush();
                thread::sleep(cfg.dribble_delay);
            }
            let got = read_wire_reject(&mut stream, cfg.read_timeout)
                .is_some_and(|r| r == "wire_deadline");
            (got, false)
        }
        // Abrupt close: partial frame, then a hard shutdown mid-frame.
        1 => {
            let prefix = (32u32).to_be_bytes();
            if stream.write_all(&prefix).is_err() || stream.write_all(&[1, 2, 3]).is_err() {
                return (false, true);
            }
            let _ = stream.flush();
            let _ = stream.shutdown(std::net::Shutdown::Both);
            (false, false)
        }
        // Oversize: a length prefix past any ceiling the server admits.
        2 => {
            let prefix = (u32::MAX).to_be_bytes();
            if stream.write_all(&prefix).is_err() {
                return (false, true);
            }
            let _ = stream.flush();
            let got = read_wire_reject(&mut stream, cfg.read_timeout)
                .is_some_and(|r| r == "wire_oversized");
            (got, false)
        }
        // Churn: clean open/close, no frame offered.
        _ => {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            (false, false)
        }
    }
}

/// Drives the adversarial battery against a live server, all
/// connections concurrently. The server must outlive the call; its
/// `read_timeout` must be shorter than `cfg.read_timeout` or the
/// slow-loris verdicts never arrive.
pub fn run_adversarial(addr: SocketAddr, cfg: &AdversarialConfig) -> AdversarialReport {
    let started = Instant::now();
    let mut modes = Vec::new();
    modes.extend(std::iter::repeat_n(0usize, cfg.slow_loris));
    modes.extend(std::iter::repeat_n(1usize, cfg.abrupt_close));
    modes.extend(std::iter::repeat_n(2usize, cfg.oversize));
    modes.extend(std::iter::repeat_n(3usize, cfg.churn));
    let outcomes: Vec<(bool, bool)> = thread::scope(|scope| {
        let handles: Vec<_> = modes
            .iter()
            .map(|&mode| scope.spawn(move || run_adversary(addr, mode, cfg)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or((false, true)))
            .collect()
    });
    let rejects = outcomes.iter().filter(|(got, _)| *got).count() as u64;
    let transport = outcomes.iter().filter(|(_, err)| *err).count() as u64;
    AdversarialReport {
        connections: cfg.connections(),
        expected_wire_errors: cfg.expected_wire_errors(),
        rejects_received: rejects,
        transport_errors: transport,
        elapsed_ns: started.elapsed().as_nanos() as u64,
    }
}

// ---------------------------------------------------------------------------
// Soak harness
// ---------------------------------------------------------------------------

/// SLO tiers of the serve soak: two healthy tiers, one deterministic
/// partial-sample tier and one always-shed tier, so every counter the
/// reconciliation checks is exercised on every run.
pub fn soak_classes(samples: usize) -> Vec<ClassPolicy> {
    vec![
        ClassPolicy {
            name: "interactive".to_string(),
            deadline: Some(Duration::from_secs(5)),
            sample_budget: None,
            max_inflight: usize::MAX,
        },
        ClassPolicy::unbounded("batch"),
        ClassPolicy {
            name: "degraded".to_string(),
            deadline: None,
            sample_budget: Some((samples / 2).max(1) as u64),
            max_inflight: usize::MAX,
        },
        ClassPolicy {
            name: "reject".to_string(),
            deadline: None,
            sample_budget: None,
            max_inflight: 0,
        },
    ]
}

/// Knobs of one serve soak campaign.
#[derive(Debug, Clone)]
pub struct ServeSoakConfig {
    /// Seed of the model, the inputs and the request mix.
    pub seed: u64,
    /// Monte-Carlo samples per request (T).
    pub samples: usize,
    /// Registry shards behind the server.
    pub shards: usize,
    /// Concurrent load-generator connections.
    pub connections: usize,
    /// Requests each connection offers.
    pub requests_per_connection: usize,
    /// Load-generator loop mode.
    pub mode: LoadMode,
    /// Wall-clock bound on the load phase (workers stop offering new
    /// requests past it).
    pub time_limit: Duration,
}

impl ServeSoakConfig {
    /// CI-speed campaign (a few seconds).
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            samples: 4,
            shards: 2,
            connections: 2,
            requests_per_connection: 30,
            mode: LoadMode::Closed,
            time_limit: Duration::from_secs(45),
        }
    }

    /// Acceptance-floor campaign (bounded under a minute).
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            samples: 6,
            shards: 2,
            connections: 4,
            requests_per_connection: 150,
            mode: LoadMode::Closed,
            time_limit: Duration::from_secs(50),
        }
    }

    fn loadgen(&self) -> LoadgenConfig {
        LoadgenConfig {
            seed: self.seed,
            mode: self.mode,
            connections: self.connections,
            requests_per_connection: self.requests_per_connection,
            classes: vec![
                "interactive".to_string(),
                "batch".to_string(),
                "degraded".to_string(),
            ],
            shed_class: Some("reject".to_string()),
            shed_every: 7,
            expiring_every: 11,
            malformed_every: 13,
            bit_check_every: 5,
            open_pipeline: 8,
            read_timeout: Duration::from_secs(20),
            time_limit: Some(self.time_limit),
        }
    }
}

/// Builds the registry a soak serves from, plus the bit-identical
/// reference engine the load generator checks against.
///
/// # Errors
///
/// [`WireError::Io`] when the artifact or registry cannot be built.
pub fn build_soak_registry(
    cfg: &ServeSoakConfig,
) -> Result<(Arc<ModelRegistry>, Engine), WireError> {
    let engine_cfg = EngineConfig {
        samples: cfg.samples.max(2),
        calibration_samples: 3,
        seed: cfg.seed,
        threads: 1,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    };
    let reference = Engine::new(engine_cfg);
    let artifact = ModelArtifact::from_engine(&reference, 1, "serve-soak");
    let registry = ModelRegistry::new(
        artifact,
        RegistryConfig {
            shards: cfg.shards.max(1),
            resilience: ResilienceConfig {
                deadline_class: "net".to_string(),
                ..ResilienceConfig::default()
            },
            jitter: Some(Arc::new(NoJitter)),
            ..RegistryConfig::default()
        },
    )
    .map_err(|e| WireError::Io(e.to_string()))?;
    Ok((Arc::new(registry), reference))
}

/// What one serve soak observed, on both sides of the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeSoakReport {
    /// Campaign seed.
    pub seed: u64,
    /// Load-generator mode name.
    pub mode: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Requests per connection.
    pub requests_per_connection: usize,
    /// Monte-Carlo samples per request.
    pub samples: usize,
    /// Registry shards.
    pub shards: usize,
    /// Client-side observations.
    pub loadgen: LoadgenReport,
    /// Server-side accounting.
    pub server: ServeTotals,
    /// Registry requests over the campaign (delta of version counters).
    pub registry_requests: u64,
    /// Registry `ok` outcomes over the campaign.
    pub registry_ok: u64,
    /// Registry `failed` outcomes over the campaign.
    pub registry_failed: u64,
    /// Wall clock of the whole campaign in nanoseconds.
    pub elapsed_ns: u64,
}

impl ServeSoakReport {
    /// Exact three-way reconciliation: load generator ↔ server wire
    /// accounting ↔ registry version counters. Any drift is a dropped
    /// or double-counted request.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatched ledger row.
    pub fn reconcile(&self) -> Result<(), String> {
        let lg = &self.loadgen.totals;
        let sv = &self.server;
        let checks: [(&str, u64, u64); 9] = [
            ("offered vs server frames", lg.offered, sv.frames_total()),
            ("ok", lg.ok, sv.frames_ok),
            ("failed", lg.failed, sv.frames_failed),
            ("shed", lg.shed, sv.frames_shed),
            ("wire errors", lg.wire_error_responses, sv.frames_wire_error),
            ("unknown class", lg.unknown_class, sv.frames_unknown_class),
            ("expired", lg.expired, sv.expired),
            (
                "registry requests vs served frames",
                self.registry_requests,
                sv.frames_ok + sv.frames_failed,
            ),
            ("registry ok", self.registry_ok, sv.frames_ok),
        ];
        for (what, client, server) in checks {
            if client != server {
                return Err(format!("{what} drifted: {client} != {server}"));
            }
        }
        if self.registry_failed != sv.frames_failed {
            return Err(format!(
                "registry failed drifted: {} != {}",
                self.registry_failed, sv.frames_failed
            ));
        }
        if self.loadgen.aborted_workers != 0 {
            return Err(format!(
                "{} load-generator workers aborted",
                self.loadgen.aborted_workers
            ));
        }
        if lg.transport_errors != 0 {
            return Err(format!("{} transport errors", lg.transport_errors));
        }
        if lg.bit_mismatched != 0 {
            return Err(format!(
                "{} of {} bit-identity spot checks mismatched",
                lg.bit_mismatched, lg.bit_checked
            ));
        }
        Ok(())
    }
}

fn sum_delta(
    before: &BTreeMap<u64, VersionCounters>,
    after: &BTreeMap<u64, VersionCounters>,
) -> (u64, u64, u64) {
    let mut requests = 0;
    let mut ok = 0;
    let mut failed = 0;
    for (version, counters) in after {
        let base = before.get(version).copied().unwrap_or_default();
        requests += counters.requests - base.requests;
        ok += counters.ok - base.ok;
        failed += counters.failed - base.failed;
    }
    (requests, ok, failed)
}

/// Runs a serve soak, recording into `telemetry` (installing it as the
/// global recorder for the duration unless it is already the sink).
///
/// # Errors
///
/// [`WireError`] when the registry or the server cannot be built.
pub fn run_serve_soak_into(
    cfg: &ServeSoakConfig,
    telemetry: &Arc<fbcnn_telemetry::Registry>,
) -> Result<ServeSoakReport, WireError> {
    let started = Instant::now();
    let recorder = Arc::clone(telemetry) as Arc<dyn fbcnn_telemetry::Recorder>;
    // `installed_sink_is` (not `is_installed`): the global slot may hold
    // a wrapper that aggregates into this registry; re-installing would
    // deadlock on the non-reentrant install lock.
    let _guard = if fbcnn_telemetry::installed_sink_is(telemetry) {
        None
    } else {
        Some(fbcnn_telemetry::install(recorder))
    };
    let (registry, reference) = build_soak_registry(cfg)?;
    let before = registry.version_counters();
    let server = serve(
        Arc::clone(&registry),
        ServeConfig {
            classes: soak_classes(cfg.samples.max(2)),
            ..ServeConfig::default()
        },
    )?;
    let loadgen = run_loadgen(server.addr(), &reference, &cfg.loadgen());
    let totals = server.shutdown();
    let after = registry.version_counters();
    let (registry_requests, registry_ok, registry_failed) = sum_delta(&before, &after);
    Ok(ServeSoakReport {
        seed: cfg.seed,
        mode: cfg.mode.name().to_string(),
        connections: cfg.connections,
        requests_per_connection: cfg.requests_per_connection,
        samples: cfg.samples,
        shards: cfg.shards,
        loadgen,
        server: totals,
        registry_requests,
        registry_ok,
        registry_failed,
        elapsed_ns: started.elapsed().as_nanos() as u64,
    })
}

/// Runs a serve soak into a fresh private telemetry registry, returning
/// both.
///
/// # Errors
///
/// [`WireError`] when the registry or the server cannot be built.
pub fn run_serve_soak_with_registry(
    cfg: &ServeSoakConfig,
) -> Result<(ServeSoakReport, Arc<fbcnn_telemetry::Registry>), WireError> {
    let telemetry = Arc::new(fbcnn_telemetry::Registry::new());
    let report = run_serve_soak_into(cfg, &telemetry)?;
    Ok((report, telemetry))
}

/// Runs a serve soak, discarding telemetry.
///
/// # Errors
///
/// [`WireError`] when the registry or the server cannot be built.
pub fn run_serve_soak(cfg: &ServeSoakConfig) -> Result<ServeSoakReport, WireError> {
    run_serve_soak_with_registry(cfg).map(|(report, _)| report)
}

// ---------------------------------------------------------------------------
// Supervision soak
// ---------------------------------------------------------------------------

/// Shard poisoned with per-sample panics in a supervision soak.
pub const SUPERVISE_PANIC_SHARD: usize = 0;
/// Shard poisoned with watchdog-tripping stalls in a supervision soak.
pub const SUPERVISE_HANG_SHARD: usize = 1;
/// Shard whose circuit breaker is jammed open in a supervision soak.
pub const SUPERVISE_JAM_SHARD: usize = 2;

/// Knobs of one supervision soak campaign: a supervised multi-shard
/// registry behind a live TCP server, three simultaneously injected
/// shard-poisoning fault classes (per-sample panics on
/// [`SUPERVISE_PANIC_SHARD`], watchdog-abandoned stalls on
/// [`SUPERVISE_HANG_SHARD`], a jammed breaker on
/// [`SUPERVISE_JAM_SHARD`]), an adversarial client battery, and seeded
/// load driven in bursts until every poisoned shard has walked the full
/// Suspect → Quarantined → Rebuilding → Healthy cycle.
#[derive(Debug, Clone)]
pub struct SuperviseSoakConfig {
    /// Seed of the model, the inputs and the request mix.
    pub seed: u64,
    /// Monte-Carlo samples per request (T).
    pub samples: usize,
    /// Registry shards; must exceed the three poisoned indices so at
    /// least one shard is never poisoned (the failover sink).
    pub shards: usize,
    /// Concurrent load-generator connections per burst.
    pub connections: usize,
    /// Requests each connection offers per burst.
    pub requests_per_burst: usize,
    /// Upper bound on bursts across all phases.
    pub max_bursts: usize,
    /// Adversarial battery driven while the poisons are still armed.
    pub adversarial: AdversarialConfig,
    /// Stall of the hang poison; must be well past `watchdog`.
    pub stall: Duration,
    /// Resilience watchdog timeout while the soak runs.
    pub watchdog: Duration,
    /// Wall-clock bound of the whole campaign; on exhaustion the soak
    /// stops bursting and the final reconciliation reports what is
    /// missing.
    pub time_limit: Duration,
}

impl SuperviseSoakConfig {
    /// CI-speed campaign (a few seconds).
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            samples: 4,
            shards: 4,
            connections: 2,
            requests_per_burst: 26,
            max_bursts: 60,
            adversarial: AdversarialConfig {
                slow_loris: 1,
                abrupt_close: 1,
                oversize: 1,
                churn: 1,
                dribble_delay: Duration::from_millis(2),
                read_timeout: Duration::from_secs(5),
            },
            stall: Duration::from_millis(60),
            watchdog: Duration::from_millis(30),
            time_limit: Duration::from_secs(45),
        }
    }

    /// Acceptance-floor campaign (bounded under two minutes).
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            samples: 6,
            shards: 4,
            connections: 4,
            requests_per_burst: 40,
            max_bursts: 120,
            adversarial: AdversarialConfig {
                slow_loris: 2,
                abrupt_close: 2,
                oversize: 2,
                churn: 3,
                dribble_delay: Duration::from_millis(3),
                read_timeout: Duration::from_secs(10),
            },
            stall: Duration::from_millis(60),
            watchdog: Duration::from_millis(30),
            time_limit: Duration::from_secs(120),
        }
    }

    /// The supervision thresholds the soak pins: windows wide enough to
    /// span a burst, at least four observations before a verdict binds
    /// (so the recurring pre-expired ids can never fill a window on
    /// their own), two strikes to quarantine, a three-probe re-admission
    /// gate.
    fn supervise(&self) -> crate::supervise::SuperviseConfig {
        crate::supervise::SuperviseConfig {
            window_ns: 700_000_000,
            min_observations: 4,
            failure_rate_threshold: 0.6,
            expiry_rate_threshold: 1.0,
            // Two abandonments per window: one spurious watchdog trip
            // (a legitimately slow attempt on a noisy scheduler) must
            // not strike a healthy shard; the hang poison abandons
            // every request it touches, so it clears two trivially.
            abandon_threshold: 2,
            breaker_open_dwell_ns: 150_000_000,
            suspect_strikes: 2,
            probe_requests: 3,
            probe_max_failures: 0,
            // Hold each quarantined shard out of the ring for a quarter
            // second so the closed-loop bursts actually exercise the
            // failover path before the rebuild probation begins.
            rebuild_backoff_ns: 250_000_000,
            ..crate::supervise::SuperviseConfig::default()
        }
    }

    fn burst_loadgen(&self, salt: u64, clean: bool) -> LoadgenConfig {
        LoadgenConfig {
            seed: self.seed.wrapping_add(salt),
            mode: LoadMode::Closed,
            connections: self.connections,
            requests_per_connection: self.requests_per_burst,
            classes: vec![
                "interactive".to_string(),
                "batch".to_string(),
                "degraded".to_string(),
            ],
            shed_class: (!clean).then(|| "reject".to_string()),
            shed_every: if clean { 0 } else { 7 },
            expiring_every: if clean { 0 } else { 11 },
            malformed_every: if clean { 0 } else { 13 },
            bit_check_every: if clean { 1 } else { 5 },
            open_pipeline: 8,
            read_timeout: Duration::from_secs(20),
            time_limit: None,
        }
    }
}

/// One supervision state transition, flattened for serialization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransitionRow {
    /// Shard that moved.
    pub shard: usize,
    /// State it left.
    pub from: String,
    /// State it entered.
    pub to: String,
}

/// What one supervision soak observed, on all three sides of the wire:
/// the load generator, the server's wire accounting, and the
/// supervisor's per-shard ledger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuperviseSoakReport {
    /// Campaign seed.
    pub seed: u64,
    /// Registry shards.
    pub shards: usize,
    /// Concurrent connections per burst.
    pub connections: usize,
    /// Bursts driven across all phases.
    pub bursts: u64,
    /// The poisoned shard indices, in panic/hang/jam order.
    pub poisoned: Vec<usize>,
    /// Client-side accounting, merged across every burst.
    pub loadgen: LoadgenTotals,
    /// Load-generator connections opened (connections × bursts).
    pub loadgen_connections: u64,
    /// Load-generator workers that died before finishing (must be 0).
    pub aborted_workers: u64,
    /// Client-measured latencies in nanoseconds, merged across bursts.
    pub latencies_ns: BTreeMap<String, Vec<u64>>,
    /// What the adversarial battery observed.
    pub adversarial: AdversarialReport,
    /// Wire rejects the battery must have read back (slow-loris and
    /// oversize clients; abrupt-close clients cannot receive one).
    pub adversarial_expected_rejects: u64,
    /// Server-side wire accounting.
    pub server: ServeTotals,
    /// Registry requests over the campaign (delta of version counters).
    pub registry_requests: u64,
    /// Registry `ok` outcomes over the campaign.
    pub registry_ok: u64,
    /// Registry `failed` outcomes over the campaign.
    pub registry_failed: u64,
    /// Final health per shard, by name.
    pub health: Vec<String>,
    /// Final cumulative supervision ledger per shard.
    pub ledger: Vec<crate::supervise::ShardLedger>,
    /// Every supervision transition, in order.
    pub transitions: Vec<TransitionRow>,
    /// Whether each poisoned shard (in `poisoned` order) completed the
    /// full Suspect → Quarantined → Rebuilding → Healthy walk.
    pub full_walks: Vec<bool>,
    /// Shard rebuilds attempted.
    pub rebuild_attempts: u64,
    /// Rebuilds whose probe gate re-admitted the shard.
    pub rebuild_successes: u64,
    /// Rebuilds whose probe gate sent the shard back to quarantine.
    pub rebuild_probe_rejects: u64,
    /// Wall clock until every poisoned shard had been quarantined.
    pub quarantine_elapsed_ns: u64,
    /// Wall clock of the whole campaign in nanoseconds.
    pub elapsed_ns: u64,
}

impl SuperviseSoakReport {
    /// Exact three-way reconciliation of the supervision soak: load
    /// generator ↔ server wire accounting ↔ registry version counters ↔
    /// per-shard supervision ledger, plus the self-healing walk itself —
    /// every poisoned shard quarantined, rebuilt and re-admitted, zero
    /// lost requests, and the healthy-shard responses bit-identical to
    /// the pristine reference engine.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first failed ledger row or
    /// healing invariant.
    pub fn reconcile(&self) -> Result<(), String> {
        let lg = &self.loadgen;
        let sv = &self.server;
        let adv = &self.adversarial;
        let fold = |f: fn(&crate::supervise::ShardLedger) -> u64| -> u64 {
            self.ledger.iter().map(f).sum()
        };
        let checks: [(&str, u64, u64); 17] = [
            (
                "offered + adversarial vs server frames",
                lg.offered + adv.expected_wire_errors,
                sv.frames_total(),
            ),
            ("ok", lg.ok, sv.frames_ok),
            ("failed", lg.failed, sv.frames_failed),
            ("shed", lg.shed, sv.frames_shed),
            (
                "wire errors",
                lg.wire_error_responses + adv.expected_wire_errors,
                sv.frames_wire_error,
            ),
            ("unknown class", lg.unknown_class, sv.frames_unknown_class),
            ("expired", lg.expired, sv.expired),
            (
                "registry requests vs served frames",
                self.registry_requests,
                sv.frames_ok + sv.frames_failed,
            ),
            ("registry ok", self.registry_ok, sv.frames_ok),
            ("registry failed", self.registry_failed, sv.frames_failed),
            (
                "supervision ledger served vs registry requests",
                fold(|s| s.served),
                self.registry_requests,
            ),
            (
                "supervision ledger ok vs registry ok",
                fold(|s| s.ok),
                self.registry_ok,
            ),
            (
                "supervision ledger failed vs registry failed",
                fold(|s| s.failed),
                self.registry_failed,
            ),
            (
                "supervision ledger expired vs server expired",
                fold(|s| s.expired),
                sv.expired,
            ),
            (
                "failover folds",
                fold(|s| s.failovers_out),
                fold(|s| s.failovers_in),
            ),
            (
                "connections",
                self.loadgen_connections + adv.connections,
                sv.connections,
            ),
            (
                "adversarial rejects read back",
                adv.rejects_received,
                self.adversarial_expected_rejects,
            ),
        ];
        for (what, left, right) in checks {
            if left != right {
                return Err(format!("{what} drifted: {left} != {right}"));
            }
        }
        if sv.connections_rejected != 0 {
            return Err(format!("{} connections rejected", sv.connections_rejected));
        }
        if self.aborted_workers != 0 {
            return Err(format!(
                "{} load-generator workers aborted",
                self.aborted_workers
            ));
        }
        if lg.transport_errors != 0 {
            return Err(format!("{} transport errors", lg.transport_errors));
        }
        if adv.transport_errors != 0 {
            return Err(format!(
                "{} adversarial transport errors",
                adv.transport_errors
            ));
        }
        if lg.bit_checked == 0 {
            return Err("no bit-identity spot checks ran".to_string());
        }
        if lg.bit_mismatched != 0 {
            return Err(format!(
                "{} of {} bit-identity spot checks mismatched",
                lg.bit_mismatched, lg.bit_checked
            ));
        }
        for (i, &shard) in self.poisoned.iter().enumerate() {
            if !self.full_walks.get(i).copied().unwrap_or(false) {
                return Err(format!(
                    "poisoned shard {shard} never completed the \
                     quarantine → rebuild → re-admission walk"
                ));
            }
            let ledger = self
                .ledger
                .get(shard)
                .ok_or_else(|| format!("no ledger row for shard {shard}"))?;
            if ledger.quarantines == 0 {
                return Err(format!("poisoned shard {shard} was never quarantined"));
            }
        }
        if let Some(h) = self.health.iter().find(|h| h.as_str() != "healthy") {
            return Err(format!("a shard ended the campaign {h}"));
        }
        if fold(|s| s.failovers_out) == 0 {
            return Err("no requests ever failed over".to_string());
        }
        let hang = self
            .ledger
            .get(SUPERVISE_HANG_SHARD)
            .ok_or("no hang-shard ledger row")?;
        if hang.abandoned == 0 {
            return Err("the hang poison never produced a watchdog abandonment".to_string());
        }
        let panicked = self
            .ledger
            .get(SUPERVISE_PANIC_SHARD)
            .ok_or("no panic-shard ledger row")?;
        if panicked.failed == 0 {
            return Err("the panic poison never produced a typed failure".to_string());
        }
        if self.rebuild_attempts < self.poisoned.len() as u64 {
            return Err(format!(
                "only {} rebuilds attempted for {} poisoned shards",
                self.rebuild_attempts,
                self.poisoned.len()
            ));
        }
        if self.rebuild_attempts != self.rebuild_successes + self.rebuild_probe_rejects {
            return Err(format!(
                "unresolved rebuilds: {} attempted, {} re-admitted + {} rejected",
                self.rebuild_attempts, self.rebuild_successes, self.rebuild_probe_rejects
            ));
        }
        Ok(())
    }
}

/// Campaign-wide loadgen accumulators of the supervision soak, merged
/// across every burst.
#[derive(Default)]
struct BurstTotals {
    totals: LoadgenTotals,
    latencies: BTreeMap<String, Vec<u64>>,
    aborted: u64,
    connections: u64,
}

/// One load burst of the supervision soak, merged into the campaign
/// accumulators.
fn supervise_burst(
    addr: SocketAddr,
    reference: &Engine,
    cfg: &SuperviseSoakConfig,
    salt: u64,
    clean: bool,
    acc: &mut BurstTotals,
) {
    let report = run_loadgen(addr, reference, &cfg.burst_loadgen(salt, clean));
    acc.totals.merge(&report.totals);
    for (class, lat) in &report.latencies_ns {
        acc.latencies.entry(class.clone()).or_default().extend(lat);
    }
    acc.aborted += report.aborted_workers;
    acc.connections += cfg.connections as u64;
}

/// Runs a supervision soak, recording into `telemetry` (installing it
/// as the global recorder for the duration unless it is already the
/// sink).
///
/// The campaign has three phases: (1) poisoned — panics, stalls and a
/// jammed breaker active on three distinct shards, bursts driven until
/// the supervisor has quarantined all three, with the adversarial
/// battery fired while the poisons are still armed; (2) healing —
/// poisons disarmed, bursts driven until every poisoned shard has been
/// rebuilt and re-admitted through its probe gate and the whole ring is
/// Healthy; (3) verification — one clean burst with every response
/// bit-checked against the pristine reference engine.
///
/// # Errors
///
/// [`WireError`] when the registry or the server cannot be built (a
/// *failed* campaign instead surfaces through
/// [`SuperviseSoakReport::reconcile`]).
pub fn run_supervise_soak_into(
    cfg: &SuperviseSoakConfig,
    telemetry: &Arc<fbcnn_telemetry::Registry>,
) -> Result<SuperviseSoakReport, WireError> {
    let started = Instant::now();
    let poisoned = [
        SUPERVISE_PANIC_SHARD,
        SUPERVISE_HANG_SHARD,
        SUPERVISE_JAM_SHARD,
    ];
    let max_poisoned = poisoned.iter().max().copied().unwrap_or(0);
    if cfg.shards <= max_poisoned + 1 {
        return Err(WireError::Io(format!(
            "supervise soak needs at least {} shards (got {})",
            max_poisoned + 2,
            cfg.shards
        )));
    }
    let recorder = Arc::clone(telemetry) as Arc<dyn fbcnn_telemetry::Recorder>;
    let _guard = if fbcnn_telemetry::installed_sink_is(telemetry) {
        None
    } else {
        Some(fbcnn_telemetry::install(recorder))
    };
    let _silencer = crate::chaos::SilencedChaosPanics::install();

    let routing_seed = cfg.seed;
    let gate = crate::supervise::SupervisorGate::default();
    let panic_armed = Arc::new(AtomicBool::new(true));
    let hang_armed = Arc::new(AtomicBool::new(true));
    let panic_hook = crate::faults::FaultInjector::shard_panic_hook(
        routing_seed,
        cfg.shards,
        SUPERVISE_PANIC_SHARD,
        Arc::clone(&panic_armed),
        Arc::clone(&gate),
    );
    let hang_hook = crate::faults::FaultInjector::shard_hang_hook(
        routing_seed,
        cfg.shards,
        SUPERVISE_HANG_SHARD,
        Arc::clone(&hang_armed),
        Arc::clone(&gate),
        cfg.stall,
    );
    let hook: crate::resilience::RequestSampleHook = Arc::new(move |id, attempt, sample| {
        panic_hook(id, attempt, sample);
        hang_hook(id, attempt, sample);
    });

    let engine_cfg = EngineConfig {
        samples: cfg.samples.max(2),
        calibration_samples: 3,
        seed: cfg.seed,
        threads: 1,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    };
    let registry_cfg = RegistryConfig {
        shards: cfg.shards,
        routing_seed,
        resilience: ResilienceConfig {
            deadline_class: "net".to_string(),
            watchdog_timeout: Some(cfg.watchdog),
            max_requeues: 1,
            ..ResilienceConfig::default()
        },
        sample_hook: Some(hook),
        jitter: Some(Arc::new(NoJitter)),
        supervise: Some(cfg.supervise()),
        ..RegistryConfig::default()
    };
    let (registry, reference) =
        crate::chaos::boot_registry_via_disk(engine_cfg, 1, "supervise_soak", registry_cfg)
            .map_err(|e| WireError::Io(e.to_string()))?;
    *crate::supervise::lock_gate(&gate) = registry.supervisor().cloned();
    let sup = registry
        .supervisor()
        .cloned()
        .ok_or_else(|| WireError::Io("supervision missing from the registry".to_string()))?;
    registry.jam_shard_breaker(SUPERVISE_JAM_SHARD);
    let supervisor_thread = registry.spawn_supervisor(Duration::from_millis(5));
    let before = registry.version_counters();
    let server = serve(
        Arc::clone(&registry),
        ServeConfig {
            classes: soak_classes(cfg.samples.max(2)),
            read_timeout: Duration::from_millis(150),
            ..ServeConfig::default()
        },
    )?;

    let mut acc = BurstTotals::default();
    let mut bursts = 0u64;

    // Phase 1: poisoned. Burst until the supervisor has quarantined all
    // three poisoned shards at least once (their rebuilds start
    // immediately, so current health is checked via the transition
    // ledger, not the live state).
    loop {
        supervise_burst(server.addr(), &reference, cfg, bursts, false, &mut acc);
        bursts += 1;
        let snap = sup.snapshot();
        let all_quarantined = poisoned.iter().all(|&s| {
            snap.transitions
                .iter()
                .any(|t| t.shard == s && t.to == crate::supervise::ShardHealth::Quarantined)
        });
        if all_quarantined {
            break;
        }
        if bursts as usize >= cfg.max_bursts || started.elapsed() >= cfg.time_limit {
            break;
        }
    }
    let quarantine_elapsed_ns = started.elapsed().as_nanos() as u64;

    // The adversarial battery fires while the shard poisons are still
    // armed — hostile transports and sick shards at the same time.
    let adversarial = run_adversarial(server.addr(), &cfg.adversarial);

    // Phase 2: healing. Disarm the poisons (the jammed breaker is cured
    // by the rebuild itself, which installs a fresh breaker) and burst
    // until every poisoned shard has walked the full cycle and the whole
    // ring is Healthy again — with every breaker closed, so a lingering
    // open breaker cannot dwell-strike a healed shard back to Suspect
    // during the verification burst.
    panic_armed.store(false, Ordering::Relaxed);
    hang_armed.store(false, Ordering::Relaxed);
    // Let the supervisor's tick thread flush every window that still
    // carries armed-era observations (and any breaker dwell) before
    // judging the heal: a stale bad window closing mid-verification
    // would otherwise strike a healed shard after the last chance to
    // recover.
    std::thread::sleep(
        Duration::from_nanos(cfg.supervise().window_ns) + Duration::from_millis(100),
    );
    loop {
        supervise_burst(server.addr(), &reference, cfg, bursts, false, &mut acc);
        bursts += 1;
        let snap = sup.snapshot();
        let healed = poisoned.iter().all(|&s| snap.full_walk(s))
            && snap
                .health
                .iter()
                .all(|h| *h == crate::supervise::ShardHealth::Healthy)
            && (0..cfg.shards).all(|s| !registry.shard_breaker_open(s));
        if healed {
            break;
        }
        if bursts as usize >= cfg.max_bursts || started.elapsed() >= cfg.time_limit {
            break;
        }
    }

    // Phase 3: verification. One clean burst against the healed ring,
    // every response bit-checked against the pristine reference. The
    // tick thread keeps running — with every breaker closed and only
    // clean traffic flowing, it has nothing left to strike.
    supervise_burst(server.addr(), &reference, cfg, bursts, true, &mut acc);
    bursts += 1;

    drop(supervisor_thread); // stop ticking before the final snapshot
    let server_totals = server.shutdown();
    let after = registry.version_counters();
    let (registry_requests, registry_ok, registry_failed) = sum_delta(&before, &after);
    let snap = sup.snapshot();
    Ok(SuperviseSoakReport {
        seed: cfg.seed,
        shards: cfg.shards,
        connections: cfg.connections,
        bursts,
        poisoned: poisoned.to_vec(),
        loadgen: acc.totals,
        loadgen_connections: acc.connections,
        aborted_workers: acc.aborted,
        latencies_ns: acc.latencies,
        adversarial,
        adversarial_expected_rejects: (cfg.adversarial.slow_loris + cfg.adversarial.oversize)
            as u64,
        server: server_totals,
        registry_requests,
        registry_ok,
        registry_failed,
        health: snap.health.iter().map(|h| h.name().to_string()).collect(),
        ledger: snap.shards.clone(),
        transitions: snap
            .transitions
            .iter()
            .map(|t| TransitionRow {
                shard: t.shard,
                from: t.from.name().to_string(),
                to: t.to.name().to_string(),
            })
            .collect(),
        full_walks: poisoned.iter().map(|&s| snap.full_walk(s)).collect(),
        rebuild_attempts: snap.rebuild_attempts,
        rebuild_successes: snap.rebuild_successes,
        rebuild_probe_rejects: snap.rebuild_probe_rejects,
        quarantine_elapsed_ns,
        elapsed_ns: started.elapsed().as_nanos() as u64,
    })
}

/// Runs a supervision soak into a fresh private telemetry registry,
/// returning both.
///
/// # Errors
///
/// [`WireError`] when the registry or the server cannot be built.
pub fn run_supervise_soak_with_registry(
    cfg: &SuperviseSoakConfig,
) -> Result<(SuperviseSoakReport, Arc<fbcnn_telemetry::Registry>), WireError> {
    let telemetry = Arc::new(fbcnn_telemetry::Registry::new());
    let report = run_supervise_soak_into(cfg, &telemetry)?;
    Ok((report, telemetry))
}

/// Runs a supervision soak, discarding telemetry.
///
/// # Errors
///
/// [`WireError`] when the registry or the server cannot be built.
pub fn run_supervise_soak(cfg: &SuperviseSoakConfig) -> Result<SuperviseSoakReport, WireError> {
    run_supervise_soak_with_registry(cfg).map(|(report, _)| report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_is_byte_lossless() {
        let payload = b"hello frames";
        let frame = encode_frame(payload, 64).unwrap();
        let mut dec = FrameDecoder::new(64);
        dec.push(&frame);
        assert_eq!(dec.next_frame().unwrap().unwrap(), payload);
        assert!(dec.is_empty());
        dec.finish().unwrap();
    }

    #[test]
    fn split_and_coalesced_reads_reassemble() {
        let a = encode_frame(b"first", 64).unwrap();
        let b = encode_frame(b"second", 64).unwrap();
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        // Feed one byte at a time.
        let mut dec = FrameDecoder::new(64);
        let mut out = Vec::new();
        for byte in &joined {
            dec.push(std::slice::from_ref(byte));
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(out, vec![b"first".to_vec(), b"second".to_vec()]);
        dec.finish().unwrap();
    }

    #[test]
    fn truncation_and_oversize_are_typed() {
        let frame = encode_frame(b"truncate me", 64).unwrap();
        let mut dec = FrameDecoder::new(64);
        dec.push(&frame[..frame.len() - 3]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(matches!(dec.finish(), Err(WireError::Truncated { .. })));

        let mut dec = FrameDecoder::new(8);
        dec.push(&encode_frame(b"tiny", 64).unwrap()[..4]);
        assert_eq!(dec.next_frame().unwrap(), None); // only the prefix: 4 <= 8
        let mut dec = FrameDecoder::new(2);
        dec.push(&encode_frame(b"tiny", 64).unwrap());
        assert!(matches!(
            dec.next_frame(),
            Err(WireError::Oversized { len: 4, max: 2 })
        ));
        assert!(encode_frame(b"tiny", 2).is_err());
    }

    #[test]
    fn envelope_kind_and_version_are_checked() {
        let frame = seal_frame(REQUEST_KIND, "{\"x\":1}", 1024).unwrap();
        let payload = open_frame(&frame[LEN_PREFIX_BYTES..], REQUEST_KIND).unwrap();
        assert_eq!(payload, "{\"x\":1}");
        assert!(matches!(
            open_frame(&frame[LEN_PREFIX_BYTES..], RESPONSE_KIND),
            Err(WireError::ForeignKind { .. })
        ));
        let stale = format!("{{\"artifact\":\"{REQUEST_KIND}\",\"version\":99,\"payload\":{{}}}}");
        assert!(matches!(
            open_frame(stale.as_bytes(), REQUEST_KIND),
            Err(WireError::StaleVersion { found: 99, .. })
        ));
        assert!(matches!(
            open_frame(&[0xFF, 0xFE], REQUEST_KIND),
            Err(WireError::Envelope(_))
        ));
    }

    #[test]
    fn request_message_roundtrip_and_validation() {
        let input = synth_input(Shape::new(1, 8, 8), 3);
        let mut req = ServeRequest::from_input(42, "interactive", &input);
        req.deadline_ms = Some(125);
        let frame = req.encode(DEFAULT_MAX_FRAME_BYTES).unwrap();
        let back = ServeRequest::decode(&frame[LEN_PREFIX_BYTES..]).unwrap();
        assert_eq!(back, req);
        assert_eq!(
            back.input().unwrap().iter().collect::<Vec<_>>(),
            input.iter().collect::<Vec<_>>()
        );

        let mut bad = req.clone();
        bad.width = 0;
        assert!(matches!(bad.input(), Err(WireError::Payload(_))));
        let mut bad = req.clone();
        bad.data_bits.pop();
        assert!(matches!(bad.input(), Err(WireError::Payload(_))));
        let mut bad = req;
        bad.height = usize::MAX;
        bad.width = usize::MAX;
        assert!(matches!(bad.input(), Err(WireError::Payload(_))));
    }

    #[test]
    fn deadline_pricing_takes_the_tighter_bound() {
        let policy = Some(Duration::from_millis(100));
        assert_eq!(
            effective_deadline(policy, Some(40)),
            Some(Duration::from_millis(40))
        );
        assert_eq!(
            effective_deadline(policy, Some(400)),
            Some(Duration::from_millis(100))
        );
        assert_eq!(effective_deadline(policy, None), policy);
        assert_eq!(
            effective_deadline(None, Some(7)),
            Some(Duration::from_millis(7))
        );
        assert_eq!(effective_deadline(None, None), None);
    }

    #[test]
    fn adversarial_battery_reconciles_exactly() {
        let (registry, _reference) = build_soak_registry(&ServeSoakConfig::quick(3)).unwrap();
        let server = serve(
            Arc::clone(&registry),
            ServeConfig {
                read_timeout: Duration::from_millis(150),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let adv = AdversarialConfig::default();
        let report = run_adversarial(server.addr(), &adv);
        let totals = server.shutdown();
        assert_eq!(report.transport_errors, 0, "adversaries lost connections");
        assert_eq!(totals.connections, report.connections);
        assert_eq!(totals.frames_wire_error, report.expected_wire_errors);
        // The battery offers nothing else: every counted frame is one of
        // its provoked wire errors.
        assert_eq!(totals.frames_total(), report.expected_wire_errors);
        // Slow-loris and oversize clients keep reading, so their typed
        // verdicts must actually arrive; abrupt-close clients cannot.
        assert_eq!(
            report.rejects_received,
            (adv.slow_loris + adv.oversize) as u64,
            "typed verdicts were not delivered"
        );
        assert_eq!(totals.frames_ok, 0);
        assert_eq!(totals.write_deadline_drops, 0);
    }

    #[test]
    fn supervise_soak_quick_heals_and_reconciles() {
        let cfg = SuperviseSoakConfig::quick(11);
        let (report, telemetry) = run_supervise_soak_with_registry(&cfg).unwrap();
        report.reconcile().unwrap_or_else(|e| panic!("{e}"));
        assert!(report.bursts >= 3, "all three phases must burst");
        assert!(
            report.ledger[SUPERVISE_JAM_SHARD].quarantines >= 1,
            "breaker dwell never quarantined the jammed shard"
        );
        // The supervision counters made it into the installed sink.
        assert_eq!(
            telemetry.counter_total(crate::supervise::REBUILD_ATTEMPTS_METRIC),
            report.rebuild_attempts
        );
        assert_eq!(
            telemetry.counter_total(crate::supervise::REBUILD_SUCCESSES_METRIC),
            report.rebuild_successes
        );
        assert!(
            telemetry.counter_total(crate::supervise::SHARD_HEALTH_TRANSITIONS_METRIC)
                >= report.transitions.len() as u64,
            "health transitions missing from telemetry"
        );
        let failovers: u64 = report.ledger.iter().map(|s| s.failovers_out).sum();
        assert_eq!(
            telemetry.counter_total(crate::supervise::FAILOVER_REQUESTS_METRIC),
            failovers
        );
    }

    #[test]
    fn quick_soak_reconciles_exactly() {
        let cfg = ServeSoakConfig::quick(11);
        let (report, telemetry) = run_serve_soak_with_registry(&cfg).unwrap();
        report.reconcile().unwrap_or_else(|e| panic!("{e}"));
        let lg = &report.loadgen.totals;
        assert!(lg.ok > 0, "no ok responses");
        assert!(lg.shed > 0, "shed tier never exercised");
        assert!(lg.expired > 0, "expiry tier never exercised");
        assert!(
            lg.wire_error_responses > 0,
            "malformed frames never exercised"
        );
        assert!(lg.bit_checked > 0, "no bit-identity spot checks ran");
        assert_eq!(lg.bit_mismatched, 0);
        // Wire counters made it into telemetry.
        assert!(telemetry.counter_total(NET_FRAMES_METRIC) >= lg.offered);
        assert!(telemetry.counter_total(NET_CONNECTIONS_METRIC) >= cfg.connections as u64);
    }
}
