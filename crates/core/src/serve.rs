//! Network serving tier: a zero-dependency TCP front-end over the
//! [`ModelRegistry`] / resilient batch engine.
//!
//! The wire protocol is deliberately small: each direction carries
//! length-prefixed frames (a 4-byte big-endian payload length followed
//! by that many payload bytes), and each payload is the same versioned
//! JSON envelope `core::io` uses for artifacts —
//! `{"artifact":"serve-request","version":1,"payload":{...}}` — so a
//! stale or foreign frame fails with the same typed errors as a stale
//! artifact file. Every malformed input maps to a typed [`WireError`];
//! nothing in this module panics on hostile bytes.
//!
//! Requests carry an SLO class name plus optional deadline; the server
//! prices both against its per-class [`ClassPolicy`] (admission cap,
//! deadline floor, sample budget) and threads the result through
//! [`crate::RequestClass`] so retry/breaker/telemetry all see the same
//! class label end to end (`net_connections`, `net_frames{result}`,
//! `request_latency_ns{class}`).
//!
//! The module also hosts the closed/open-loop load generator and the
//! serve soak harness (`run_serve_soak`) used by the `loadgen` bench
//! binary, the `fastbcnn serve-net` subcommand and `tests/serve_soak.rs`.
//! Floating-point tensors cross the wire as IEEE-754 bit patterns
//! (`u32`), keeping responses byte-exact for golden fixtures and
//! bit-identity spot checks against [`Engine::predict_robust_seeded`].

use std::collections::BTreeMap;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use fbcnn_nn::models::ModelKind;
use fbcnn_tensor::{Shape, Tensor};
use serde::{Deserialize, Serialize};

use crate::io::{IoError, FORMAT_VERSION};
use crate::{
    error_reason_name, synth_input, BatchRequest, Engine, EngineConfig, ModelArtifact,
    ModelRegistry, NoJitter, RegistryConfig, RegistryOutcome, RequestClass, ResilienceConfig,
    VersionCounters,
};

/// Envelope kind of a request frame.
pub const REQUEST_KIND: &str = "serve-request";
/// Envelope kind of a response frame.
pub const RESPONSE_KIND: &str = "serve-response";
/// Bytes of the big-endian length prefix in front of every frame.
pub const LEN_PREFIX_BYTES: usize = 4;
/// Default per-frame payload ceiling (1 MiB).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;
/// Counter metric: connections, labelled `result=accepted|rejected`.
pub const NET_CONNECTIONS_METRIC: &str = "net_connections";
/// Counter metric: served frames, labelled
/// `result=ok|failed|shed|wire_error|unknown_class`.
pub const NET_FRAMES_METRIC: &str = "net_frames";
/// Counter metric: responses whose deadline/sample budget expired
/// (a subset of `net_frames{result=ok|failed}`).
pub const NET_EXPIRED_METRIC: &str = "net_expired";

// ---------------------------------------------------------------------------
// Typed wire errors
// ---------------------------------------------------------------------------

/// Every way a frame or its payload can be rejected. The protocol
/// contract (enforced by `tests/wire_props.rs`) is that arbitrary bytes
/// fed to the codec yield one of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The stream ended mid-frame.
    Truncated {
        /// Bytes actually present.
        have: usize,
        /// Bytes the prefix (or frame header) promised.
        need: usize,
    },
    /// The length prefix exceeds the configured frame ceiling.
    Oversized {
        /// Length the prefix declared.
        len: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// The payload is not a well-formed `core::io` envelope.
    Envelope(String),
    /// The envelope's format version is not this build's
    /// [`FORMAT_VERSION`].
    StaleVersion {
        /// Version found on the wire.
        found: u32,
        /// Version this build speaks.
        expected: u32,
    },
    /// The envelope holds a different artifact kind than expected.
    ForeignKind {
        /// Kind found on the wire.
        found: String,
        /// Kind the receiver wanted.
        expected: String,
    },
    /// The envelope was fine but its payload JSON did not decode into
    /// the expected message (or failed message-level validation).
    Payload(String),
    /// A read deadline elapsed with a partial frame buffered.
    Deadline {
        /// The deadline that elapsed, in milliseconds.
        waited_ms: u64,
    },
    /// Transport-level failure (socket error, peer closed mid-exchange).
    Io(String),
}

impl WireError {
    /// Stable reason label (`wire_*`) used as the `reason` field of
    /// error responses and for counter reconciliation.
    pub fn reason(&self) -> &'static str {
        match self {
            WireError::Truncated { .. } => "wire_truncated",
            WireError::Oversized { .. } => "wire_oversized",
            WireError::Envelope(_) => "wire_envelope",
            WireError::StaleVersion { .. } => "wire_stale_version",
            WireError::ForeignKind { .. } => "wire_foreign_kind",
            WireError::Payload(_) => "wire_payload",
            WireError::Deadline { .. } => "wire_deadline",
            WireError::Io(_) => "wire_io",
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { have, need } => {
                write!(f, "truncated frame: have {have} bytes, need {need}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes exceeds ceiling {max}")
            }
            WireError::Envelope(msg) => write!(f, "bad envelope: {msg}"),
            WireError::StaleVersion { found, expected } => {
                write!(
                    f,
                    "stale wire version {found} (this build speaks {expected})"
                )
            }
            WireError::ForeignKind { found, expected } => {
                write!(f, "foreign frame kind {found:?} (expected {expected:?})")
            }
            WireError::Payload(msg) => write!(f, "bad payload: {msg}"),
            WireError::Deadline { waited_ms } => {
                write!(f, "read deadline ({waited_ms} ms) elapsed mid-frame")
            }
            WireError::Io(msg) => write!(f, "transport failure: {msg}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<IoError> for WireError {
    fn from(e: IoError) -> Self {
        match e {
            IoError::Envelope(msg) => WireError::Envelope(msg),
            IoError::Version { found, expected } => WireError::StaleVersion { found, expected },
            IoError::Kind { found, expected } => WireError::ForeignKind { found, expected },
            IoError::Serde(err) => WireError::Payload(err.to_string()),
            IoError::Io(err) => WireError::Io(err.to_string()),
        }
    }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Wraps `payload` in a 4-byte big-endian length prefix.
///
/// # Errors
///
/// [`WireError::Oversized`] when the payload exceeds `max` bytes.
pub fn encode_frame(payload: &[u8], max: usize) -> Result<Vec<u8>, WireError> {
    if payload.len() > max || payload.len() > u32::MAX as usize {
        return Err(WireError::Oversized {
            len: payload.len(),
            max: max.min(u32::MAX as usize),
        });
    }
    let mut out = Vec::with_capacity(LEN_PREFIX_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Incremental frame decoder tolerant of arbitrary read chunking:
/// bytes go in via [`push`](FrameDecoder::push) in whatever splits the
/// socket produced, complete frames come out via
/// [`next_frame`](FrameDecoder::next_frame), and
/// [`finish`](FrameDecoder::finish) types out whatever is left when the
/// stream ends.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    max: usize,
}

impl FrameDecoder {
    /// A decoder enforcing `max` payload bytes per frame.
    pub fn new(max: usize) -> Self {
        Self {
            buf: Vec::new(),
            pos: 0,
            max,
        }
    }

    /// Appends raw bytes from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    fn available(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn peek_len(&self) -> Option<usize> {
        if self.available() < LEN_PREFIX_BYTES {
            return None;
        }
        let b = &self.buf[self.pos..self.pos + LEN_PREFIX_BYTES];
        Some(u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as usize)
    }

    /// Pops the next complete frame payload, if one is buffered.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversized`] when the buffered length prefix exceeds
    /// the decoder's ceiling — the connection is unrecoverable at that
    /// point, since the prefix cannot be trusted to resynchronize.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, WireError> {
        let Some(len) = self.peek_len() else {
            return Ok(None);
        };
        if len > self.max {
            return Err(WireError::Oversized { len, max: self.max });
        }
        if self.available() < LEN_PREFIX_BYTES + len {
            return Ok(None);
        }
        let start = self.pos + LEN_PREFIX_BYTES;
        let frame = self.buf[start..start + len].to_vec();
        self.pos = start + len;
        // Reclaim consumed space so long-lived connections stay O(frame).
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(frame.into())
    }

    /// True when no undecoded bytes are buffered.
    pub fn is_empty(&self) -> bool {
        self.available() == 0
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.available()
    }

    /// Validates end-of-stream: any leftover partial frame becomes a
    /// typed error.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] for a partial prefix or body,
    /// [`WireError::Oversized`] for a poisoned length prefix.
    pub fn finish(&self) -> Result<(), WireError> {
        let avail = self.available();
        if avail == 0 {
            return Ok(());
        }
        match self.peek_len() {
            None => Err(WireError::Truncated {
                have: avail,
                need: LEN_PREFIX_BYTES,
            }),
            Some(len) if len > self.max => Err(WireError::Oversized { len, max: self.max }),
            Some(len) => {
                let body = avail - LEN_PREFIX_BYTES;
                if body < len {
                    Err(WireError::Truncated {
                        have: body,
                        need: len,
                    })
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Serializes `payload_json` into an envelope of `kind` and frames it.
///
/// # Errors
///
/// [`WireError::Oversized`] when the sealed envelope exceeds `max`.
pub fn seal_frame(kind: &str, payload_json: &str, max: usize) -> Result<Vec<u8>, WireError> {
    let envelope = format!(
        "{{\"artifact\":\"{kind}\",\"version\":{FORMAT_VERSION},\"payload\":{payload_json}}}"
    );
    encode_frame(envelope.as_bytes(), max)
}

/// Opens a frame payload as an envelope of `kind`, returning the inner
/// payload JSON.
///
/// # Errors
///
/// Typed [`WireError`] for non-UTF-8 bytes, malformed envelopes, stale
/// versions and foreign kinds.
pub fn open_frame(frame: &[u8], kind: &str) -> Result<String, WireError> {
    let text = std::str::from_utf8(frame)
        .map_err(|e| WireError::Envelope(format!("frame is not UTF-8: {e}")))?;
    let (found_kind, version, payload) = crate::io::parse_envelope(text)?;
    if version != FORMAT_VERSION {
        return Err(WireError::StaleVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    if found_kind != kind {
        return Err(WireError::ForeignKind {
            found: found_kind.to_string(),
            expected: kind.to_string(),
        });
    }
    Ok(payload.to_string())
}

// ---------------------------------------------------------------------------
// Wire messages
// ---------------------------------------------------------------------------

/// One inference request on the wire. Input pixels travel as IEEE-754
/// bit patterns so encode → decode is byte-lossless and fixtures can pin
/// exact frames.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeRequest {
    /// Caller-chosen request id (feeds the deterministic seed derivation).
    pub id: u64,
    /// SLO class name; must match a server-side [`ClassPolicy`].
    pub class: String,
    /// Optional client deadline in milliseconds; the server prices it
    /// against the class deadline and enforces the tighter of the two.
    pub deadline_ms: Option<u64>,
    /// Explicit mask-seed override (`None` derives from the id).
    pub seed: Option<u64>,
    /// Input channels.
    pub channels: usize,
    /// Input height.
    pub height: usize,
    /// Input width.
    pub width: usize,
    /// Row-major input pixels as `f32::to_bits` patterns;
    /// `len == channels * height * width`.
    pub data_bits: Vec<u32>,
}

impl ServeRequest {
    /// Builds a request from a tensor input.
    pub fn from_input(id: u64, class: impl Into<String>, input: &Tensor) -> Self {
        let shape = input.shape();
        Self {
            id,
            class: class.into(),
            deadline_ms: None,
            seed: None,
            channels: shape.channels(),
            height: shape.height(),
            width: shape.width(),
            data_bits: input.iter().map(|v| v.to_bits()).collect(),
        }
    }

    /// Reconstructs the input tensor, validating dimensions first
    /// (`Tensor::from_vec` panics on mismatch, so hostile frames must
    /// fail here with a typed error instead).
    ///
    /// # Errors
    ///
    /// [`WireError::Payload`] on zero dimensions, overflowing products
    /// or a `data_bits` length that disagrees with the shape.
    pub fn input(&self) -> Result<Tensor, WireError> {
        if self.channels == 0 || self.height == 0 || self.width == 0 {
            return Err(WireError::Payload(format!(
                "degenerate input shape {}x{}x{}",
                self.channels, self.height, self.width
            )));
        }
        let expected = self
            .channels
            .checked_mul(self.height)
            .and_then(|n| n.checked_mul(self.width))
            .ok_or_else(|| WireError::Payload("input shape product overflows".to_string()))?;
        if expected != self.data_bits.len() {
            return Err(WireError::Payload(format!(
                "input shape {}x{}x{} wants {expected} values, frame carries {}",
                self.channels,
                self.height,
                self.width,
                self.data_bits.len()
            )));
        }
        let data = self.data_bits.iter().map(|b| f32::from_bits(*b)).collect();
        Ok(Tensor::from_vec(
            Shape::new(self.channels, self.height, self.width),
            data,
        ))
    }

    /// Serializes into a sealed, length-prefixed frame.
    ///
    /// # Errors
    ///
    /// [`WireError`] on serialization failure or an oversized frame.
    pub fn encode(&self, max: usize) -> Result<Vec<u8>, WireError> {
        let payload = serde_json::to_string(self).map_err(|e| WireError::Payload(e.to_string()))?;
        seal_frame(REQUEST_KIND, &payload, max)
    }

    /// Decodes a frame payload (envelope + message JSON).
    ///
    /// # Errors
    ///
    /// Typed [`WireError`] for envelope or payload failures.
    pub fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let payload = open_frame(frame, REQUEST_KIND)?;
        serde_json::from_str(&payload).map_err(|e| WireError::Payload(e.to_string()))
    }
}

/// One inference response on the wire. Deliberately free of wall-clock
/// fields so identical requests produce byte-identical responses — the
/// property the golden fixtures and the determinism test pin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeResponse {
    /// Request id, echoed back (0 when the request was undecodable).
    pub id: u64,
    /// Class the request was served under (empty when undecodable).
    pub class: String,
    /// Whether a prediction was produced.
    pub ok: bool,
    /// `"ok"`, a typed engine reason (`expired`, `overloaded`, ...), a
    /// `wire_*` reason, or `"unknown_class"`.
    pub reason: String,
    /// Whether admission control shed the request before inference.
    pub shed: bool,
    /// Whether a deadline/sample budget expired the request (partial
    /// prediction when `ok`, typed expiry error otherwise).
    pub expired: bool,
    /// [`crate::DegradedMode`] name of an `ok` response, else `"none"`.
    pub degraded: String,
    /// Monte-Carlo samples that contributed to the prediction.
    pub used_samples: u64,
    /// Samples the engine configuration asked for.
    pub requested_samples: u64,
    /// Predicted class index (0 when not `ok`).
    pub predicted: u64,
    /// Posterior mean as `f32::to_bits` patterns (empty when not `ok`).
    pub mean_bits: Vec<u32>,
    /// Predictive entropy as an `f32::to_bits` pattern (0 when not `ok`).
    pub entropy_bits: u32,
    /// Model version that served the request (0 when it never routed).
    pub version: u64,
    /// Shard that served the request (0 when it never routed).
    pub shard: u64,
    /// Execution attempts (0 when the request never reached the engine).
    pub attempts: u32,
}

impl ServeResponse {
    /// Posterior mean decoded back to floats.
    pub fn mean(&self) -> Vec<f32> {
        self.mean_bits.iter().map(|b| f32::from_bits(*b)).collect()
    }

    /// True when the response is a full-fidelity fast-path prediction —
    /// the bit-identity contract only binds for these.
    pub fn is_pristine(&self) -> bool {
        self.ok && !self.expired && self.degraded == "healthy"
    }

    /// Serializes into a sealed, length-prefixed frame.
    ///
    /// # Errors
    ///
    /// [`WireError`] on serialization failure or an oversized frame.
    pub fn encode(&self, max: usize) -> Result<Vec<u8>, WireError> {
        let payload = serde_json::to_string(self).map_err(|e| WireError::Payload(e.to_string()))?;
        seal_frame(RESPONSE_KIND, &payload, max)
    }

    /// Decodes a frame payload (envelope + message JSON).
    ///
    /// # Errors
    ///
    /// Typed [`WireError`] for envelope or payload failures.
    pub fn decode(frame: &[u8]) -> Result<Self, WireError> {
        let payload = open_frame(frame, RESPONSE_KIND)?;
        serde_json::from_str(&payload).map_err(|e| WireError::Payload(e.to_string()))
    }
}

fn reject_response(id: u64, class: &str, reason: &str) -> ServeResponse {
    ServeResponse {
        id,
        class: class.to_string(),
        ok: false,
        reason: reason.to_string(),
        shed: false,
        expired: false,
        degraded: "none".to_string(),
        used_samples: 0,
        requested_samples: 0,
        predicted: 0,
        mean_bits: Vec::new(),
        entropy_bits: 0,
        version: 0,
        shard: 0,
        attempts: 0,
    }
}

fn shed_response(id: u64, class: &str) -> ServeResponse {
    ServeResponse {
        shed: true,
        ..reject_response(id, class, "overloaded")
    }
}

fn response_of(id: u64, class: &str, out: &RegistryOutcome) -> (ServeResponse, &'static str) {
    let ro = &out.outcome;
    match &ro.outcome.result {
        Ok((pred, report)) => (
            ServeResponse {
                id,
                class: class.to_string(),
                ok: true,
                reason: "ok".to_string(),
                shed: ro.shed,
                expired: ro.expired,
                degraded: report.mode.name().to_string(),
                used_samples: report.used_samples as u64,
                requested_samples: report.requested_samples as u64,
                predicted: pred.class as u64,
                mean_bits: pred.mean.iter().map(|v| v.to_bits()).collect(),
                entropy_bits: pred.predictive_entropy.to_bits(),
                version: out.version,
                shard: out.shard as u64,
                attempts: ro.attempts,
            },
            "ok",
        ),
        Err(e) => (
            ServeResponse {
                id,
                class: class.to_string(),
                ok: false,
                reason: error_reason_name(e).to_string(),
                shed: ro.shed,
                expired: ro.expired,
                degraded: "none".to_string(),
                used_samples: 0,
                requested_samples: 0,
                predicted: 0,
                mean_bits: Vec::new(),
                entropy_bits: 0,
                version: out.version,
                shard: out.shard as u64,
                attempts: ro.attempts,
            },
            "failed",
        ),
    }
}

// ---------------------------------------------------------------------------
// Server configuration and admission control
// ---------------------------------------------------------------------------

/// Per-SLO-class serving policy; admission control prices every request
/// against its class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassPolicy {
    /// Class name carried on the wire and on every telemetry label.
    pub name: String,
    /// Class deadline; the effective deadline is the tighter of this
    /// and the request's own `deadline_ms`.
    pub deadline: Option<Duration>,
    /// Deterministic sample budget (expires after this many sample
    /// checkpoints) — the testable deadline used by golden fixtures.
    pub sample_budget: Option<u64>,
    /// Concurrent in-flight requests admitted for this class; 0 sheds
    /// everything (a deterministic-rejection tier), `usize::MAX` is
    /// unbounded.
    pub max_inflight: usize,
}

impl ClassPolicy {
    /// An unbounded class with no deadline.
    pub fn unbounded(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            deadline: None,
            sample_budget: None,
            max_inflight: usize::MAX,
        }
    }
}

/// Default SLO tiers: `interactive` (250 ms, capped fan-in),
/// `standard` (2 s), `batch` (no deadline).
pub fn default_classes() -> Vec<ClassPolicy> {
    vec![
        ClassPolicy {
            name: "interactive".to_string(),
            deadline: Some(Duration::from_millis(250)),
            sample_budget: None,
            max_inflight: 64,
        },
        ClassPolicy {
            name: "standard".to_string(),
            deadline: Some(Duration::from_secs(2)),
            sample_budget: None,
            max_inflight: usize::MAX,
        },
        ClassPolicy::unbounded("batch"),
    ]
}

/// Knobs of the TCP server front-end.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// SLO classes this server admits.
    pub classes: Vec<ClassPolicy>,
    /// Per-frame payload ceiling in bytes.
    pub max_frame_bytes: usize,
    /// Concurrent connections; excess accepts are counted and closed.
    pub max_connections: usize,
    /// Per-connection read deadline: a partial frame older than this is
    /// answered with [`WireError::Deadline`] and the connection closed.
    /// Idle connections (no partial frame) are unaffected.
    pub read_timeout: Duration,
    /// Accept-loop poll interval (the listener is non-blocking so
    /// shutdown stays responsive).
    pub accept_poll: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            classes: default_classes(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_connections: 256,
            read_timeout: Duration::from_millis(500),
            accept_poll: Duration::from_millis(2),
        }
    }
}

/// Snapshot of the server's frame/connection accounting — the
/// authoritative side of every soak reconciliation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeTotals {
    /// Connections accepted and served.
    pub connections: u64,
    /// Connections closed immediately because `max_connections` was hit.
    pub connections_rejected: u64,
    /// Frames answered with an `ok` prediction (including expired
    /// partial-sample predictions).
    pub frames_ok: u64,
    /// Frames answered with a typed engine error.
    pub frames_failed: u64,
    /// Frames shed by per-class admission control (never reached the
    /// registry).
    pub frames_shed: u64,
    /// Frames (or streams) rejected with a typed [`WireError`].
    pub frames_wire_error: u64,
    /// Frames naming a class the server does not admit.
    pub frames_unknown_class: u64,
    /// Responses whose deadline/sample budget expired (subset of
    /// `frames_ok + frames_failed`).
    pub expired: u64,
}

impl ServeTotals {
    /// Every frame the server accounted for, across all result labels.
    pub fn frames_total(&self) -> u64 {
        self.frames_ok
            + self.frames_failed
            + self.frames_shed
            + self.frames_wire_error
            + self.frames_unknown_class
    }
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    connections_rejected: AtomicU64,
    frames_ok: AtomicU64,
    frames_failed: AtomicU64,
    frames_shed: AtomicU64,
    frames_wire_error: AtomicU64,
    frames_unknown_class: AtomicU64,
    expired: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServeTotals {
        ServeTotals {
            connections: self.connections.load(Ordering::Acquire),
            connections_rejected: self.connections_rejected.load(Ordering::Acquire),
            frames_ok: self.frames_ok.load(Ordering::Acquire),
            frames_failed: self.frames_failed.load(Ordering::Acquire),
            frames_shed: self.frames_shed.load(Ordering::Acquire),
            frames_wire_error: self.frames_wire_error.load(Ordering::Acquire),
            frames_unknown_class: self.frames_unknown_class.load(Ordering::Acquire),
            expired: self.expired.load(Ordering::Acquire),
        }
    }

    fn note_frame(&self, label: &'static str) {
        let cell = match label {
            "ok" => &self.frames_ok,
            "failed" => &self.frames_failed,
            "shed" => &self.frames_shed,
            "wire_error" => &self.frames_wire_error,
            _ => &self.frames_unknown_class,
        };
        cell.fetch_add(1, Ordering::AcqRel);
        fbcnn_telemetry::counter_add(NET_FRAMES_METRIC, &[("result", label)], 1);
    }
}

struct ClassSlot {
    policy: ClassPolicy,
    inflight: AtomicUsize,
}

impl ClassSlot {
    fn try_admit(&self) -> bool {
        let mut cur = self.inflight.load(Ordering::Relaxed);
        loop {
            if cur >= self.policy.max_inflight {
                return false;
            }
            match self.inflight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => cur = now,
            }
        }
    }

    fn release(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

struct NetState {
    registry: Arc<ModelRegistry>,
    cfg: ServeConfig,
    classes: Vec<ClassSlot>,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    counters: Counters,
}

fn effective_deadline(policy: Option<Duration>, request_ms: Option<u64>) -> Option<Duration> {
    let requested = request_ms.map(Duration::from_millis);
    match (policy, requested) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

fn serve_frame(state: &NetState, frame: &[u8]) -> (ServeResponse, &'static str) {
    let req = match ServeRequest::decode(frame) {
        Ok(req) => req,
        Err(e) => return (reject_response(0, "", e.reason()), "wire_error"),
    };
    let input = match req.input() {
        Ok(input) => input,
        Err(e) => {
            return (
                reject_response(req.id, &req.class, e.reason()),
                "wire_error",
            )
        }
    };
    let Some(slot) = state.classes.iter().find(|s| s.policy.name == req.class) else {
        return (
            reject_response(req.id, &req.class, "unknown_class"),
            "unknown_class",
        );
    };
    if !slot.try_admit() {
        return (shed_response(req.id, &req.class), "shed");
    }
    let class = RequestClass {
        name: slot.policy.name.clone(),
        deadline: effective_deadline(slot.policy.deadline, req.deadline_ms),
        sample_budget: slot.policy.sample_budget,
    };
    let mut batch_req = BatchRequest::new(req.id, input);
    batch_req.seed = req.seed;
    let outcome = state.registry.handle_classed(&batch_req, Some(&class));
    slot.release();
    response_of(req.id, &req.class, &outcome)
}

// ---------------------------------------------------------------------------
// The TCP server
// ---------------------------------------------------------------------------

/// A running [`serve`] instance. Dropping the handle shuts the server
/// down and drains its connections.
pub struct NetServerHandle {
    addr: SocketAddr,
    state: Arc<NetState>,
    accept: Option<thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<thread::JoinHandle<()>>>>,
}

impl NetServerHandle {
    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the server's accounting so far.
    pub fn totals(&self) -> ServeTotals {
        self.state.counters.snapshot()
    }

    fn drain(&mut self) {
        self.state.shutdown.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        let handles: Vec<_> = {
            let mut guard = self
                .connections
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            guard.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Graceful shutdown: stop accepting, finish every buffered request,
    /// join all connection threads, and return the final accounting.
    pub fn shutdown(mut self) -> ServeTotals {
        self.drain();
        self.state.counters.snapshot()
    }
}

impl Drop for NetServerHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

/// Boots the TCP front-end over `registry`.
///
/// The accept loop is non-blocking (polling `cfg.accept_poll`) so
/// shutdown stays responsive; each accepted connection gets its own
/// worker thread with a read deadline of `cfg.read_timeout`.
///
/// # Errors
///
/// [`WireError::Io`] when the listener cannot bind.
pub fn serve(registry: Arc<ModelRegistry>, cfg: ServeConfig) -> Result<NetServerHandle, WireError> {
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| WireError::Io(e.to_string()))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| WireError::Io(e.to_string()))?;
    let addr = listener
        .local_addr()
        .map_err(|e| WireError::Io(e.to_string()))?;
    let classes = cfg
        .classes
        .iter()
        .map(|policy| ClassSlot {
            policy: policy.clone(),
            inflight: AtomicUsize::new(0),
        })
        .collect();
    let state = Arc::new(NetState {
        registry,
        cfg,
        classes,
        shutdown: AtomicBool::new(false),
        active_connections: AtomicUsize::new(0),
        counters: Counters::default(),
    });
    let connections: Arc<Mutex<Vec<thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept_state = Arc::clone(&state);
    let accept_connections = Arc::clone(&connections);
    let accept = thread::spawn(move || loop {
        if accept_state.shutdown.load(Ordering::Acquire) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let active = accept_state.active_connections.load(Ordering::Acquire);
                if active >= accept_state.cfg.max_connections {
                    accept_state
                        .counters
                        .connections_rejected
                        .fetch_add(1, Ordering::AcqRel);
                    fbcnn_telemetry::counter_add(
                        NET_CONNECTIONS_METRIC,
                        &[("result", "rejected")],
                        1,
                    );
                    drop(stream);
                    continue;
                }
                accept_state
                    .active_connections
                    .fetch_add(1, Ordering::AcqRel);
                accept_state
                    .counters
                    .connections
                    .fetch_add(1, Ordering::AcqRel);
                fbcnn_telemetry::counter_add(NET_CONNECTIONS_METRIC, &[("result", "accepted")], 1);
                let conn_state = Arc::clone(&accept_state);
                let worker = thread::spawn(move || {
                    handle_connection(&conn_state, stream);
                    conn_state.active_connections.fetch_sub(1, Ordering::AcqRel);
                });
                let mut guard = accept_connections
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                // Reap finished workers so long soaks stay O(active).
                let mut alive = Vec::with_capacity(guard.len() + 1);
                for handle in guard.drain(..) {
                    if handle.is_finished() {
                        let _ = handle.join();
                    } else {
                        alive.push(handle);
                    }
                }
                alive.push(worker);
                *guard = alive;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(accept_state.cfg.accept_poll);
            }
            Err(_) => thread::sleep(accept_state.cfg.accept_poll),
        }
    });

    Ok(NetServerHandle {
        addr,
        state,
        accept: Some(accept),
        connections,
    })
}

fn write_frame(stream: &mut TcpStream, bytes: &[u8]) -> std::io::Result<()> {
    stream.write_all(bytes)?;
    stream.flush()
}

fn send_response(stream: &mut TcpStream, state: &NetState, response: &ServeResponse) -> bool {
    match response.encode(state.cfg.max_frame_bytes) {
        Ok(bytes) => write_frame(stream, &bytes).is_ok(),
        Err(_) => false,
    }
}

fn handle_connection(state: &Arc<NetState>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(state.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let mut decoder = FrameDecoder::new(state.cfg.max_frame_bytes);
    let mut buf = vec![0u8; 16 * 1024];
    'conn: loop {
        // Serve every complete frame already buffered.
        loop {
            match decoder.next_frame() {
                Ok(Some(frame)) => {
                    let (response, label) = serve_frame(state, &frame);
                    state.counters.note_frame(label);
                    if response.expired {
                        state.counters.expired.fetch_add(1, Ordering::AcqRel);
                        fbcnn_telemetry::counter_add(NET_EXPIRED_METRIC, &[], 1);
                    }
                    if !send_response(&mut stream, state, &response) {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // A poisoned length prefix cannot resynchronize:
                    // answer with the typed error and close.
                    state.counters.note_frame("wire_error");
                    let _ = send_response(&mut stream, state, &reject_response(0, "", e.reason()));
                    break 'conn;
                }
            }
        }
        // Graceful drain: on shutdown, everything buffered has been
        // answered above; stop reading new work.
        if state.shutdown.load(Ordering::Acquire) && decoder.is_empty() {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                if decoder.finish().is_err() {
                    // Mid-frame EOF: typed, counted, nobody to answer.
                    state.counters.note_frame("wire_error");
                }
                break;
            }
            Ok(n) => decoder.push(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if decoder.is_empty() {
                    continue; // Idle connection: keep waiting.
                }
                // Partial frame older than the read deadline.
                let waited_ms = state.cfg.read_timeout.as_millis() as u64;
                state.counters.note_frame("wire_error");
                let _ = send_response(
                    &mut stream,
                    state,
                    &reject_response(0, "", WireError::Deadline { waited_ms }.reason()),
                );
                break;
            }
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking client for the serve protocol (used by the load
/// generator, the CLI self-drive and the protocol tests).
pub struct ServeClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    buf: Vec<u8>,
}

impl ServeClient {
    /// Connects with a receive deadline and frame ceiling.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on connect/socket-option failure.
    pub fn connect(
        addr: SocketAddr,
        read_timeout: Duration,
        max_frame: usize,
    ) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr).map_err(|e| WireError::Io(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| WireError::Io(e.to_string()))?;
        stream
            .set_read_timeout(Some(read_timeout))
            .map_err(|e| WireError::Io(e.to_string()))?;
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(max_frame),
            buf: vec![0u8; 16 * 1024],
        })
    }

    /// Sends pre-encoded bytes verbatim (the load generator uses this
    /// to inject malformed frames).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] on transport failure.
    pub fn send_bytes(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        write_frame(&mut self.stream, bytes).map_err(|e| WireError::Io(e.to_string()))
    }

    /// Encodes and sends one request.
    ///
    /// # Errors
    ///
    /// [`WireError`] on encoding or transport failure.
    pub fn send(&mut self, req: &ServeRequest, max_frame: usize) -> Result<(), WireError> {
        let bytes = req.encode(max_frame)?;
        self.send_bytes(&bytes)
    }

    /// Blocks for the next response frame.
    ///
    /// # Errors
    ///
    /// [`WireError::Deadline`] when the receive deadline elapses,
    /// [`WireError::Io`] when the server closes the stream, and any
    /// decode-level [`WireError`] for malformed responses.
    pub fn recv(&mut self) -> Result<ServeResponse, WireError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return ServeResponse::decode(&frame);
            }
            match self.stream.read(&mut self.buf) {
                Ok(0) => {
                    self.decoder.finish()?;
                    return Err(WireError::Io("server closed the connection".to_string()));
                }
                Ok(n) => {
                    let chunk = self.buf[..n].to_vec();
                    self.decoder.push(&chunk);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(WireError::Deadline { waited_ms: 0 });
                }
                Err(e) => return Err(WireError::Io(e.to_string())),
            }
        }
    }

    /// Sends a request and blocks for its response.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from [`send`](Self::send) or [`recv`](Self::recv).
    pub fn roundtrip(
        &mut self,
        req: &ServeRequest,
        max_frame: usize,
    ) -> Result<ServeResponse, WireError> {
        self.send(req, max_frame)?;
        self.recv()
    }
}

// ---------------------------------------------------------------------------
// Load generator
// ---------------------------------------------------------------------------

/// splitmix64 — the same cheap deterministic mixer the batch tier uses
/// for seed derivation.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Whether workers wait for each response before sending the next
/// request (closed loop) or pipeline a window of frames (open loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// One request in flight per connection; latency excludes queueing.
    Closed,
    /// A pipelined window per connection; latency includes queue wait.
    Open,
}

impl LoadMode {
    /// Stable lowercase name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            LoadMode::Closed => "closed",
            LoadMode::Open => "open",
        }
    }

    /// Parses a report/CLI name.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "closed" => Some(LoadMode::Closed),
            "open" => Some(LoadMode::Open),
            _ => None,
        }
    }
}

/// Knobs of the seeded load generator.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Seed of the request mix (inputs, malformed variants).
    pub seed: u64,
    /// Closed or open loop.
    pub mode: LoadMode,
    /// Concurrent client connections (one worker thread each).
    pub connections: usize,
    /// Requests each connection offers.
    pub requests_per_connection: usize,
    /// Healthy SLO classes, cycled per request.
    pub classes: Vec<String>,
    /// Class targeted to provoke deterministic admission sheds (pair it
    /// with a server-side `max_inflight: 0` policy); `None` disables.
    pub shed_class: Option<String>,
    /// Every Nth request goes to `shed_class` (0 disables).
    pub shed_every: usize,
    /// Every Nth request carries `deadline_ms: 0`, forcing a typed
    /// expiry (0 disables).
    pub expiring_every: usize,
    /// Every Nth frame is malformed — garbage envelope, foreign kind,
    /// stale version or broken payload, chosen by seed (0 disables).
    pub malformed_every: usize,
    /// Every Nth pristine response is bit-checked against
    /// [`Engine::predict_robust_seeded`] (0 disables).
    pub bit_check_every: usize,
    /// Frames in flight per connection in [`LoadMode::Open`].
    pub open_pipeline: usize,
    /// Client receive deadline per response.
    pub read_timeout: Duration,
    /// Workers stop offering new requests past this wall-clock bound,
    /// keeping soaks boundable; `None` runs the full plan.
    pub time_limit: Option<Duration>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            mode: LoadMode::Closed,
            connections: 2,
            requests_per_connection: 32,
            classes: vec!["interactive".to_string(), "batch".to_string()],
            shed_class: None,
            shed_every: 0,
            expiring_every: 0,
            malformed_every: 0,
            bit_check_every: 8,
            open_pipeline: 8,
            read_timeout: Duration::from_secs(10),
            time_limit: None,
        }
    }
}

/// Client-side accounting, reconciled 1:1 against [`ServeTotals`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadgenTotals {
    /// Frames sent (requests plus injected malformed frames).
    pub offered: u64,
    /// `ok` responses received.
    pub ok: u64,
    /// Typed-engine-error responses received.
    pub failed: u64,
    /// Admission-shed responses received.
    pub shed: u64,
    /// Responses flagged expired (subset of `ok + failed`).
    pub expired: u64,
    /// `wire_*`-reason responses received.
    pub wire_error_responses: u64,
    /// `unknown_class` responses received.
    pub unknown_class: u64,
    /// Transport-level failures (lost responses, refused connects).
    pub transport_errors: u64,
    /// Reconnects workers performed after a transport failure.
    pub reconnects: u64,
    /// Pristine responses spot-checked for bit identity.
    pub bit_checked: u64,
    /// Spot checks that mismatched the reference engine.
    pub bit_mismatched: u64,
}

impl LoadgenTotals {
    fn merge(&mut self, other: &LoadgenTotals) {
        self.offered += other.offered;
        self.ok += other.ok;
        self.failed += other.failed;
        self.shed += other.shed;
        self.expired += other.expired;
        self.wire_error_responses += other.wire_error_responses;
        self.unknown_class += other.unknown_class;
        self.transport_errors += other.transport_errors;
        self.reconnects += other.reconnects;
        self.bit_checked += other.bit_checked;
        self.bit_mismatched += other.bit_mismatched;
    }
}

/// What one load-generator run observed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadgenReport {
    /// Aggregated client-side accounting.
    pub totals: LoadgenTotals,
    /// Client-measured request latencies in nanoseconds, per class
    /// (keyed `malformed` for injected bad frames).
    pub latencies_ns: BTreeMap<String, Vec<u64>>,
    /// Workers that died before finishing their plan (must be 0 for a
    /// soak to pass).
    pub aborted_workers: u64,
    /// Wall clock of the whole run in nanoseconds.
    pub elapsed_ns: u64,
}

struct Planned {
    bytes: Vec<u8>,
    class: String,
    /// `(request id, input pool index)` when this request is eligible
    /// for a bit-identity spot check.
    check: Option<(u64, usize)>,
}

fn malformed_frame(variant: u64, max: usize) -> Vec<u8> {
    let fallback = || vec![0u8; LEN_PREFIX_BYTES];
    match variant % 4 {
        0 => encode_frame(b"{\"nope\":true}", max).unwrap_or_else(|_| fallback()),
        1 => seal_frame("network", "{\"x\":1}", max).unwrap_or_else(|_| fallback()),
        2 => {
            let stale =
                format!("{{\"artifact\":\"{REQUEST_KIND}\",\"version\":99,\"payload\":{{}}}}");
            encode_frame(stale.as_bytes(), max).unwrap_or_else(|_| fallback())
        }
        _ => seal_frame(REQUEST_KIND, "{\"id\":\"zebra\"}", max).unwrap_or_else(|_| fallback()),
    }
}

fn plan_worker(
    cfg: &LoadgenConfig,
    worker: usize,
    pool: &[Tensor],
) -> Result<Vec<Planned>, WireError> {
    let mut plan = Vec::with_capacity(cfg.requests_per_connection);
    for i in 0..cfg.requests_per_connection {
        let id = ((worker as u64 + 1) << 32) | i as u64;
        let nth = i + 1;
        if cfg.malformed_every > 0 && nth % cfg.malformed_every == 0 {
            plan.push(Planned {
                bytes: malformed_frame(mix64(cfg.seed ^ id), DEFAULT_MAX_FRAME_BYTES),
                class: "malformed".to_string(),
                check: None,
            });
            continue;
        }
        let pool_idx = (mix64(cfg.seed.wrapping_add(id)) % pool.len() as u64) as usize;
        let shed_bound =
            cfg.shed_every > 0 && cfg.shed_class.is_some() && nth % cfg.shed_every == 0;
        let class = if shed_bound {
            cfg.shed_class.clone().unwrap_or_default()
        } else {
            cfg.classes[i % cfg.classes.len().max(1)].clone()
        };
        let mut req = ServeRequest::from_input(id, class.clone(), &pool[pool_idx]);
        let mut check = None;
        if !shed_bound {
            if cfg.expiring_every > 0 && nth % cfg.expiring_every == 0 {
                req.deadline_ms = Some(0);
            } else if cfg.bit_check_every > 0 && nth % cfg.bit_check_every == 0 {
                check = Some((id, pool_idx));
            }
        }
        plan.push(Planned {
            bytes: req.encode(DEFAULT_MAX_FRAME_BYTES)?,
            class,
            check,
        });
    }
    Ok(plan)
}

struct WorkerOut {
    totals: LoadgenTotals,
    latencies: BTreeMap<String, Vec<u64>>,
    aborted: bool,
}

fn bit_check(
    reference: &Engine,
    pool: &[Tensor],
    check: (u64, usize),
    resp: &ServeResponse,
    totals: &mut LoadgenTotals,
) {
    if !resp.is_pristine() {
        return;
    }
    let (id, pool_idx) = check;
    let seed = BatchRequest::new(id, pool[pool_idx].clone()).resolved_seed(reference.config().seed);
    totals.bit_checked += 1;
    match reference.predict_robust_seeded(&pool[pool_idx], seed) {
        Ok((pred, _report)) => {
            let mean_bits: Vec<u32> = pred.mean.iter().map(|v| v.to_bits()).collect();
            if mean_bits != resp.mean_bits || pred.class as u64 != resp.predicted {
                totals.bit_mismatched += 1;
            }
        }
        Err(_) => totals.bit_mismatched += 1,
    }
}

fn absorb(
    resp: &ServeResponse,
    class: &str,
    elapsed_ns: u64,
    totals: &mut LoadgenTotals,
    latencies: &mut BTreeMap<String, Vec<u64>>,
) {
    if resp.reason.starts_with("wire_") {
        totals.wire_error_responses += 1;
    } else if resp.reason == "unknown_class" {
        totals.unknown_class += 1;
    } else if resp.shed {
        totals.shed += 1;
    } else if resp.ok {
        totals.ok += 1;
    } else {
        totals.failed += 1;
    }
    if resp.expired {
        totals.expired += 1;
    }
    latencies
        .entry(class.to_string())
        .or_default()
        .push(elapsed_ns);
}

fn run_worker(
    addr: SocketAddr,
    reference: &Engine,
    cfg: &LoadgenConfig,
    pool: &[Tensor],
    plan: &[Planned],
    started: Instant,
) -> WorkerOut {
    let mut out = WorkerOut {
        totals: LoadgenTotals::default(),
        latencies: BTreeMap::new(),
        aborted: false,
    };
    let mut client = match ServeClient::connect(addr, cfg.read_timeout, DEFAULT_MAX_FRAME_BYTES) {
        Ok(c) => c,
        Err(_) => {
            out.totals.transport_errors += 1;
            out.aborted = true;
            return out;
        }
    };
    let window = match cfg.mode {
        LoadMode::Closed => 1,
        LoadMode::Open => cfg.open_pipeline.max(1),
    };
    for chunk in plan.chunks(window) {
        if let Some(limit) = cfg.time_limit {
            if started.elapsed() >= limit {
                break;
            }
        }
        // Pipeline the window, then collect its responses in order —
        // the server answers frames of one connection sequentially.
        let mut sent: Vec<(&Planned, Instant)> = Vec::with_capacity(chunk.len());
        for planned in chunk {
            if client.send_bytes(&planned.bytes).is_err() {
                out.totals.transport_errors += 1;
                out.aborted = true;
                return out;
            }
            out.totals.offered += 1;
            sent.push((planned, Instant::now()));
        }
        for (planned, sent_at) in sent {
            match client.recv() {
                Ok(resp) => {
                    let elapsed_ns = sent_at.elapsed().as_nanos() as u64;
                    absorb(
                        &resp,
                        &planned.class,
                        elapsed_ns,
                        &mut out.totals,
                        &mut out.latencies,
                    );
                    if let Some(check) = planned.check {
                        bit_check(reference, pool, check, &resp, &mut out.totals);
                    }
                }
                Err(_) => {
                    out.totals.transport_errors += 1;
                    match ServeClient::connect(addr, cfg.read_timeout, DEFAULT_MAX_FRAME_BYTES) {
                        Ok(next) => {
                            client = next;
                            out.totals.reconnects += 1;
                            break; // Responses of this window are lost.
                        }
                        Err(_) => {
                            out.aborted = true;
                            return out;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Runs the seeded load generator against a serve endpoint.
///
/// `reference` must be an engine bit-identical to the one behind the
/// server (same artifact) — it anchors the bit-identity spot checks.
pub fn run_loadgen(addr: SocketAddr, reference: &Engine, cfg: &LoadgenConfig) -> LoadgenReport {
    let started = Instant::now();
    let shape = reference.network().input_shape();
    let pool: Vec<Tensor> = (0..8)
        .map(|i| synth_input(shape, cfg.seed.wrapping_add(i)))
        .collect();
    let plans: Vec<Result<Vec<Planned>, WireError>> = (0..cfg.connections.max(1))
        .map(|w| plan_worker(cfg, w, &pool))
        .collect();
    let mut totals = LoadgenTotals::default();
    let mut latencies: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut aborted_workers = 0u64;
    let outs: Vec<WorkerOut> = thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let pool = &pool;
                scope.spawn(move || match plan {
                    Ok(plan) => run_worker(addr, reference, cfg, pool, plan, started),
                    Err(_) => WorkerOut {
                        totals: LoadgenTotals::default(),
                        latencies: BTreeMap::new(),
                        aborted: true,
                    },
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| WorkerOut {
                    totals: LoadgenTotals::default(),
                    latencies: BTreeMap::new(),
                    aborted: true,
                })
            })
            .collect()
    });
    for out in &outs {
        totals.merge(&out.totals);
        for (class, lat) in &out.latencies {
            latencies.entry(class.clone()).or_default().extend(lat);
        }
        if out.aborted {
            aborted_workers += 1;
        }
    }
    LoadgenReport {
        totals,
        latencies_ns: latencies,
        aborted_workers,
        elapsed_ns: started.elapsed().as_nanos() as u64,
    }
}

// ---------------------------------------------------------------------------
// Soak harness
// ---------------------------------------------------------------------------

/// SLO tiers of the serve soak: two healthy tiers, one deterministic
/// partial-sample tier and one always-shed tier, so every counter the
/// reconciliation checks is exercised on every run.
pub fn soak_classes(samples: usize) -> Vec<ClassPolicy> {
    vec![
        ClassPolicy {
            name: "interactive".to_string(),
            deadline: Some(Duration::from_secs(5)),
            sample_budget: None,
            max_inflight: usize::MAX,
        },
        ClassPolicy::unbounded("batch"),
        ClassPolicy {
            name: "degraded".to_string(),
            deadline: None,
            sample_budget: Some((samples / 2).max(1) as u64),
            max_inflight: usize::MAX,
        },
        ClassPolicy {
            name: "reject".to_string(),
            deadline: None,
            sample_budget: None,
            max_inflight: 0,
        },
    ]
}

/// Knobs of one serve soak campaign.
#[derive(Debug, Clone)]
pub struct ServeSoakConfig {
    /// Seed of the model, the inputs and the request mix.
    pub seed: u64,
    /// Monte-Carlo samples per request (T).
    pub samples: usize,
    /// Registry shards behind the server.
    pub shards: usize,
    /// Concurrent load-generator connections.
    pub connections: usize,
    /// Requests each connection offers.
    pub requests_per_connection: usize,
    /// Load-generator loop mode.
    pub mode: LoadMode,
    /// Wall-clock bound on the load phase (workers stop offering new
    /// requests past it).
    pub time_limit: Duration,
}

impl ServeSoakConfig {
    /// CI-speed campaign (a few seconds).
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            samples: 4,
            shards: 2,
            connections: 2,
            requests_per_connection: 30,
            mode: LoadMode::Closed,
            time_limit: Duration::from_secs(45),
        }
    }

    /// Acceptance-floor campaign (bounded under a minute).
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            samples: 6,
            shards: 2,
            connections: 4,
            requests_per_connection: 150,
            mode: LoadMode::Closed,
            time_limit: Duration::from_secs(50),
        }
    }

    fn loadgen(&self) -> LoadgenConfig {
        LoadgenConfig {
            seed: self.seed,
            mode: self.mode,
            connections: self.connections,
            requests_per_connection: self.requests_per_connection,
            classes: vec![
                "interactive".to_string(),
                "batch".to_string(),
                "degraded".to_string(),
            ],
            shed_class: Some("reject".to_string()),
            shed_every: 7,
            expiring_every: 11,
            malformed_every: 13,
            bit_check_every: 5,
            open_pipeline: 8,
            read_timeout: Duration::from_secs(20),
            time_limit: Some(self.time_limit),
        }
    }
}

/// Builds the registry a soak serves from, plus the bit-identical
/// reference engine the load generator checks against.
///
/// # Errors
///
/// [`WireError::Io`] when the artifact or registry cannot be built.
pub fn build_soak_registry(
    cfg: &ServeSoakConfig,
) -> Result<(Arc<ModelRegistry>, Engine), WireError> {
    let engine_cfg = EngineConfig {
        samples: cfg.samples.max(2),
        calibration_samples: 3,
        seed: cfg.seed,
        threads: 1,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    };
    let reference = Engine::new(engine_cfg);
    let artifact = ModelArtifact::from_engine(&reference, 1, "serve-soak");
    let registry = ModelRegistry::new(
        artifact,
        RegistryConfig {
            shards: cfg.shards.max(1),
            resilience: ResilienceConfig {
                deadline_class: "net".to_string(),
                ..ResilienceConfig::default()
            },
            jitter: Some(Arc::new(NoJitter)),
            ..RegistryConfig::default()
        },
    )
    .map_err(|e| WireError::Io(e.to_string()))?;
    Ok((Arc::new(registry), reference))
}

/// What one serve soak observed, on both sides of the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeSoakReport {
    /// Campaign seed.
    pub seed: u64,
    /// Load-generator mode name.
    pub mode: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Requests per connection.
    pub requests_per_connection: usize,
    /// Monte-Carlo samples per request.
    pub samples: usize,
    /// Registry shards.
    pub shards: usize,
    /// Client-side observations.
    pub loadgen: LoadgenReport,
    /// Server-side accounting.
    pub server: ServeTotals,
    /// Registry requests over the campaign (delta of version counters).
    pub registry_requests: u64,
    /// Registry `ok` outcomes over the campaign.
    pub registry_ok: u64,
    /// Registry `failed` outcomes over the campaign.
    pub registry_failed: u64,
    /// Wall clock of the whole campaign in nanoseconds.
    pub elapsed_ns: u64,
}

impl ServeSoakReport {
    /// Exact three-way reconciliation: load generator ↔ server wire
    /// accounting ↔ registry version counters. Any drift is a dropped
    /// or double-counted request.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first mismatched ledger row.
    pub fn reconcile(&self) -> Result<(), String> {
        let lg = &self.loadgen.totals;
        let sv = &self.server;
        let checks: [(&str, u64, u64); 9] = [
            ("offered vs server frames", lg.offered, sv.frames_total()),
            ("ok", lg.ok, sv.frames_ok),
            ("failed", lg.failed, sv.frames_failed),
            ("shed", lg.shed, sv.frames_shed),
            ("wire errors", lg.wire_error_responses, sv.frames_wire_error),
            ("unknown class", lg.unknown_class, sv.frames_unknown_class),
            ("expired", lg.expired, sv.expired),
            (
                "registry requests vs served frames",
                self.registry_requests,
                sv.frames_ok + sv.frames_failed,
            ),
            ("registry ok", self.registry_ok, sv.frames_ok),
        ];
        for (what, client, server) in checks {
            if client != server {
                return Err(format!("{what} drifted: {client} != {server}"));
            }
        }
        if self.registry_failed != sv.frames_failed {
            return Err(format!(
                "registry failed drifted: {} != {}",
                self.registry_failed, sv.frames_failed
            ));
        }
        if self.loadgen.aborted_workers != 0 {
            return Err(format!(
                "{} load-generator workers aborted",
                self.loadgen.aborted_workers
            ));
        }
        if lg.transport_errors != 0 {
            return Err(format!("{} transport errors", lg.transport_errors));
        }
        if lg.bit_mismatched != 0 {
            return Err(format!(
                "{} of {} bit-identity spot checks mismatched",
                lg.bit_mismatched, lg.bit_checked
            ));
        }
        Ok(())
    }
}

fn sum_delta(
    before: &BTreeMap<u64, VersionCounters>,
    after: &BTreeMap<u64, VersionCounters>,
) -> (u64, u64, u64) {
    let mut requests = 0;
    let mut ok = 0;
    let mut failed = 0;
    for (version, counters) in after {
        let base = before.get(version).copied().unwrap_or_default();
        requests += counters.requests - base.requests;
        ok += counters.ok - base.ok;
        failed += counters.failed - base.failed;
    }
    (requests, ok, failed)
}

/// Runs a serve soak, recording into `telemetry` (installing it as the
/// global recorder for the duration unless it is already the sink).
///
/// # Errors
///
/// [`WireError`] when the registry or the server cannot be built.
pub fn run_serve_soak_into(
    cfg: &ServeSoakConfig,
    telemetry: &Arc<fbcnn_telemetry::Registry>,
) -> Result<ServeSoakReport, WireError> {
    let started = Instant::now();
    let recorder = Arc::clone(telemetry) as Arc<dyn fbcnn_telemetry::Recorder>;
    // `installed_sink_is` (not `is_installed`): the global slot may hold
    // a wrapper that aggregates into this registry; re-installing would
    // deadlock on the non-reentrant install lock.
    let _guard = if fbcnn_telemetry::installed_sink_is(telemetry) {
        None
    } else {
        Some(fbcnn_telemetry::install(recorder))
    };
    let (registry, reference) = build_soak_registry(cfg)?;
    let before = registry.version_counters();
    let server = serve(
        Arc::clone(&registry),
        ServeConfig {
            classes: soak_classes(cfg.samples.max(2)),
            ..ServeConfig::default()
        },
    )?;
    let loadgen = run_loadgen(server.addr(), &reference, &cfg.loadgen());
    let totals = server.shutdown();
    let after = registry.version_counters();
    let (registry_requests, registry_ok, registry_failed) = sum_delta(&before, &after);
    Ok(ServeSoakReport {
        seed: cfg.seed,
        mode: cfg.mode.name().to_string(),
        connections: cfg.connections,
        requests_per_connection: cfg.requests_per_connection,
        samples: cfg.samples,
        shards: cfg.shards,
        loadgen,
        server: totals,
        registry_requests,
        registry_ok,
        registry_failed,
        elapsed_ns: started.elapsed().as_nanos() as u64,
    })
}

/// Runs a serve soak into a fresh private telemetry registry, returning
/// both.
///
/// # Errors
///
/// [`WireError`] when the registry or the server cannot be built.
pub fn run_serve_soak_with_registry(
    cfg: &ServeSoakConfig,
) -> Result<(ServeSoakReport, Arc<fbcnn_telemetry::Registry>), WireError> {
    let telemetry = Arc::new(fbcnn_telemetry::Registry::new());
    let report = run_serve_soak_into(cfg, &telemetry)?;
    Ok((report, telemetry))
}

/// Runs a serve soak, discarding telemetry.
///
/// # Errors
///
/// [`WireError`] when the registry or the server cannot be built.
pub fn run_serve_soak(cfg: &ServeSoakConfig) -> Result<ServeSoakReport, WireError> {
    run_serve_soak_with_registry(cfg).map(|(report, _)| report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_is_byte_lossless() {
        let payload = b"hello frames";
        let frame = encode_frame(payload, 64).unwrap();
        let mut dec = FrameDecoder::new(64);
        dec.push(&frame);
        assert_eq!(dec.next_frame().unwrap().unwrap(), payload);
        assert!(dec.is_empty());
        dec.finish().unwrap();
    }

    #[test]
    fn split_and_coalesced_reads_reassemble() {
        let a = encode_frame(b"first", 64).unwrap();
        let b = encode_frame(b"second", 64).unwrap();
        let mut joined = a.clone();
        joined.extend_from_slice(&b);
        // Feed one byte at a time.
        let mut dec = FrameDecoder::new(64);
        let mut out = Vec::new();
        for byte in &joined {
            dec.push(std::slice::from_ref(byte));
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(out, vec![b"first".to_vec(), b"second".to_vec()]);
        dec.finish().unwrap();
    }

    #[test]
    fn truncation_and_oversize_are_typed() {
        let frame = encode_frame(b"truncate me", 64).unwrap();
        let mut dec = FrameDecoder::new(64);
        dec.push(&frame[..frame.len() - 3]);
        assert_eq!(dec.next_frame().unwrap(), None);
        assert!(matches!(dec.finish(), Err(WireError::Truncated { .. })));

        let mut dec = FrameDecoder::new(8);
        dec.push(&encode_frame(b"tiny", 64).unwrap()[..4]);
        assert_eq!(dec.next_frame().unwrap(), None); // only the prefix: 4 <= 8
        let mut dec = FrameDecoder::new(2);
        dec.push(&encode_frame(b"tiny", 64).unwrap());
        assert!(matches!(
            dec.next_frame(),
            Err(WireError::Oversized { len: 4, max: 2 })
        ));
        assert!(encode_frame(b"tiny", 2).is_err());
    }

    #[test]
    fn envelope_kind_and_version_are_checked() {
        let frame = seal_frame(REQUEST_KIND, "{\"x\":1}", 1024).unwrap();
        let payload = open_frame(&frame[LEN_PREFIX_BYTES..], REQUEST_KIND).unwrap();
        assert_eq!(payload, "{\"x\":1}");
        assert!(matches!(
            open_frame(&frame[LEN_PREFIX_BYTES..], RESPONSE_KIND),
            Err(WireError::ForeignKind { .. })
        ));
        let stale = format!("{{\"artifact\":\"{REQUEST_KIND}\",\"version\":99,\"payload\":{{}}}}");
        assert!(matches!(
            open_frame(stale.as_bytes(), REQUEST_KIND),
            Err(WireError::StaleVersion { found: 99, .. })
        ));
        assert!(matches!(
            open_frame(&[0xFF, 0xFE], REQUEST_KIND),
            Err(WireError::Envelope(_))
        ));
    }

    #[test]
    fn request_message_roundtrip_and_validation() {
        let input = synth_input(Shape::new(1, 8, 8), 3);
        let mut req = ServeRequest::from_input(42, "interactive", &input);
        req.deadline_ms = Some(125);
        let frame = req.encode(DEFAULT_MAX_FRAME_BYTES).unwrap();
        let back = ServeRequest::decode(&frame[LEN_PREFIX_BYTES..]).unwrap();
        assert_eq!(back, req);
        assert_eq!(
            back.input().unwrap().iter().collect::<Vec<_>>(),
            input.iter().collect::<Vec<_>>()
        );

        let mut bad = req.clone();
        bad.width = 0;
        assert!(matches!(bad.input(), Err(WireError::Payload(_))));
        let mut bad = req.clone();
        bad.data_bits.pop();
        assert!(matches!(bad.input(), Err(WireError::Payload(_))));
        let mut bad = req;
        bad.height = usize::MAX;
        bad.width = usize::MAX;
        assert!(matches!(bad.input(), Err(WireError::Payload(_))));
    }

    #[test]
    fn deadline_pricing_takes_the_tighter_bound() {
        let policy = Some(Duration::from_millis(100));
        assert_eq!(
            effective_deadline(policy, Some(40)),
            Some(Duration::from_millis(40))
        );
        assert_eq!(
            effective_deadline(policy, Some(400)),
            Some(Duration::from_millis(100))
        );
        assert_eq!(effective_deadline(policy, None), policy);
        assert_eq!(
            effective_deadline(None, Some(7)),
            Some(Duration::from_millis(7))
        );
        assert_eq!(effective_deadline(None, None), None);
    }

    #[test]
    fn quick_soak_reconciles_exactly() {
        let cfg = ServeSoakConfig::quick(11);
        let (report, telemetry) = run_serve_soak_with_registry(&cfg).unwrap();
        report.reconcile().unwrap_or_else(|e| panic!("{e}"));
        let lg = &report.loadgen.totals;
        assert!(lg.ok > 0, "no ok responses");
        assert!(lg.shed > 0, "shed tier never exercised");
        assert!(lg.expired > 0, "expiry tier never exercised");
        assert!(
            lg.wire_error_responses > 0,
            "malformed frames never exercised"
        );
        assert!(lg.bit_checked > 0, "no bit-identity spot checks ran");
        assert_eq!(lg.bit_mismatched, 0);
        // Wire counters made it into telemetry.
        assert!(telemetry.counter_total(NET_FRAMES_METRIC) >= lg.offered);
        assert!(telemetry.counter_total(NET_CONNECTIONS_METRIC) >= cfg.connections as u64);
    }
}
