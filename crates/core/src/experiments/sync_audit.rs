//! Eq. 8 / Eq. 9 synchronization audit: for every layer transition, does
//! the prediction unit finish counting before the convolution unit needs
//! the bits, and what lane multiple δ (Eq. 9) would the transition
//! require?

use crate::experiments::ExpConfig;
use crate::{synth_input, Engine, EngineConfig, FastBcnnSim, HwConfig, SkipMode};
use fbcnn_nn::models::ModelKind;
use fbcnn_tensor::stats::ceil_div;
use serde::{Deserialize, Serialize};

/// One layer transition's synchronization data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransitionAudit {
    /// The executing layer.
    pub current: String,
    /// The layer whose prediction bits are being counted.
    pub next: String,
    /// The Eq. 9 lane factor δ this transition requires at the measured
    /// skip rate: `δ = M'·R'·C'·K'² / (K²·⌈N/Tn⌉·Tn·R·C·(1−s))`.
    pub delta_required: f64,
    /// Whether the per-transition Eq. 8 condition holds with the
    /// provisioned `4·Tn` lanes.
    pub eq8_holds: bool,
}

/// The audit of one model on one design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyncAuditResult {
    /// The model's Bayesian name.
    pub model: String,
    /// Design point.
    pub design: String,
    /// Measured overall skip rate used in the Eq. 8 right-hand side.
    pub skip_rate: f64,
    /// Per-transition rows.
    pub transitions: Vec<TransitionAudit>,
    /// Fraction of transitions satisfying Eq. 8 per-transition; the
    /// cumulative pipeline model absorbs the rest (see
    /// `FastBcnnSim::run`).
    pub eq8_pass_rate: f64,
}

/// Audits one model on FB-`tm`.
pub fn run_model(kind: ModelKind, tm: usize, cfg: &ExpConfig) -> SyncAuditResult {
    let engine = Engine::new(EngineConfig {
        model: kind,
        scale: cfg.scale,
        drop_rate: cfg.drop_rate,
        samples: cfg.t,
        confidence: cfg.confidence,
        seed: cfg.seed,
        ..EngineConfig::for_model(kind)
    });
    let input = synth_input(engine.network().input_shape(), cfg.seed ^ 0x10AD);
    let w = engine.workload(&input);
    let skip_rate = w.total_skip_stats().skip_rate();
    let hw = HwConfig::fast_bcnn(tm);
    let sim = FastBcnnSim::new(hw, SkipMode::Both);

    let mut transitions = Vec::new();
    for pair in w.layers.windows(2) {
        let (current, next) = (&pair[0], &pair[1]);
        if !next.upstream_dropout {
            continue;
        }
        let conv_per_channel = (current.k * current.k) as f64
            * ceil_div(current.n, hw.tn()) as f64
            * current.out_shape.plane() as f64
            * (1.0 - skip_rate);
        let count_work = (next.k * next.k * next.m) as f64 * next.out_shape.plane() as f64;
        // Lanes needed so counting one channel's bits fits the channel's
        // convolution time: lanes = count_work / conv_per_channel, and
        // δ = lanes / Tn.
        let delta_required = count_work / conv_per_channel / hw.tn() as f64;
        transitions.push(TransitionAudit {
            current: current.label.clone(),
            next: next.label.clone(),
            delta_required,
            eq8_holds: sim.sync_ok(current, next, skip_rate),
        });
    }
    let pass = transitions.iter().filter(|t| t.eq8_holds).count();
    let eq8_pass_rate = if transitions.is_empty() {
        1.0
    } else {
        pass as f64 / transitions.len() as f64
    };
    SyncAuditResult {
        model: kind.bayesian_name().to_string(),
        design: hw.name(),
        skip_rate,
        transitions,
        eq8_pass_rate,
    }
}

/// Audits all three models on FB-64.
pub fn run(cfg: &ExpConfig) -> Vec<SyncAuditResult> {
    ModelKind::ALL
        .iter()
        .map(|&k| run_model(k, 64, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audit_reports_plausible_deltas() {
        let r = run_model(ModelKind::LeNet5, 64, &ExpConfig::quick());
        assert!(!r.transitions.is_empty());
        for t in &r.transitions {
            assert!(t.delta_required > 0.0 && t.delta_required.is_finite());
        }
        assert!((0.0..=1.0).contains(&r.eq8_pass_rate));
    }

    #[test]
    fn eq8_flag_matches_delta_threshold() {
        // Eq. 8 holds exactly when the provisioned δ = 4 covers the
        // requirement (up to the ceil in the lane count).
        let r = run_model(ModelKind::Vgg16, 64, &ExpConfig::quick());
        for t in &r.transitions {
            if t.delta_required < 3.5 {
                assert!(
                    t.eq8_holds,
                    "{} -> {}: δ {}",
                    t.current, t.next, t.delta_required
                );
            }
            if t.delta_required > 4.8 {
                assert!(
                    !t.eq8_holds,
                    "{} -> {}: δ {}",
                    t.current, t.next, t.delta_required
                );
            }
        }
    }
}
