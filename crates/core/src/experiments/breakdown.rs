//! Per-layer cycle breakdown — the paper's layer-level discussion in
//! §VI-B1: B-LeNet-5's first layer enjoys the biggest boost (~8.2×, from
//! the shortcut), B-VGG16's advantage diminishes into the deeper /
//! heavier layers, and B-GoogLeNet's three inception groups accelerate
//! almost evenly.

use crate::experiments::ExpConfig;
use crate::{synth_input, BaselineSim, Engine, EngineConfig, FastBcnnSim, HwConfig, SkipMode};
use fbcnn_nn::models::ModelKind;
use serde::{Deserialize, Serialize};

/// One layer's baseline-vs-Fast-BCNN cycle accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerBreakdown {
    /// Layer label.
    pub layer: String,
    /// Baseline cycles attributed to the layer (all samples).
    pub baseline_cycles: u64,
    /// Fast-BCNN cycles attributed to the layer.
    pub fast_cycles: u64,
    /// The layer's speedup.
    pub speedup: f64,
    /// Share of the baseline's total conv cycles this layer represents.
    pub baseline_share: f64,
    /// Prediction-unit stall cycles charged to this layer.
    pub stall_cycles: u64,
}

/// The per-layer breakdown of one model on one design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BreakdownResult {
    /// The model's Bayesian name.
    pub model: String,
    /// Design point name.
    pub design: String,
    /// Layer rows in execution order.
    pub layers: Vec<LayerBreakdown>,
}

/// Computes the per-layer breakdown for one model on FB-`tm`.
pub fn run_model(kind: ModelKind, tm: usize, cfg: &ExpConfig) -> BreakdownResult {
    let engine = Engine::new(EngineConfig {
        model: kind,
        scale: cfg.scale,
        drop_rate: cfg.drop_rate,
        samples: cfg.t,
        confidence: cfg.confidence,
        seed: cfg.seed,
        ..EngineConfig::for_model(kind)
    });
    let input = synth_input(engine.network().input_shape(), cfg.seed ^ 0x10AD);
    let w = engine.workload(&input);
    let base = BaselineSim::new(HwConfig::baseline()).run(&w);
    let fast = FastBcnnSim::new(HwConfig::fast_bcnn(tm), SkipMode::Both).run(&w);
    let total_base: u64 = base.layers.iter().map(|l| l.cycles).sum();
    let layers = base
        .layers
        .iter()
        .zip(&fast.layers)
        .map(|(b, f)| LayerBreakdown {
            layer: b.label.clone(),
            baseline_cycles: b.cycles,
            fast_cycles: f.cycles,
            speedup: b.cycles as f64 / f.cycles.max(1) as f64,
            baseline_share: b.cycles as f64 / total_base as f64,
            stall_cycles: f.stall_cycles,
        })
        .collect();
    BreakdownResult {
        model: kind.bayesian_name().to_string(),
        design: HwConfig::fast_bcnn(tm).name(),
        layers,
    }
}

/// Runs the breakdown for all three models on FB-64.
pub fn run(cfg: &ExpConfig) -> Vec<BreakdownResult> {
    ModelKind::ALL
        .iter()
        .map(|&k| run_model(k, 64, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_first_layer_gets_the_biggest_boost() {
        let r = run_model(ModelKind::LeNet5, 64, &ExpConfig::quick());
        assert_eq!(r.layers.len(), 3);
        let conv1 = &r.layers[0];
        // The shortcut makes layer 1 the headline winner (paper: ~8.2x).
        assert!(
            conv1.speedup >= r.layers[1].speedup,
            "conv1 {}x vs conv2 {}x",
            conv1.speedup,
            r.layers[1].speedup
        );
        assert!(conv1.speedup > 2.0, "conv1 speedup {}", conv1.speedup);
        // LeNet's first layer dominates the baseline cycle budget.
        assert!(
            conv1.baseline_share > 0.5,
            "conv1 share {}",
            conv1.baseline_share
        );
    }

    #[test]
    fn shares_sum_to_one() {
        let r = run_model(ModelKind::LeNet5, 64, &ExpConfig::quick());
        let sum: f64 = r.layers.iter().map(|l| l.baseline_share).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
