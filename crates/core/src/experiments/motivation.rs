//! §III motivation — the cost of a complete BCNN inference (T = 50
//! samples) relative to a single CNN inference on skip-oblivious
//! hardware.

use crate::experiments::ExpConfig;
use crate::{synth_input, BaselineSim, Engine, EngineConfig, HwConfig};
use fbcnn_nn::models::ModelKind;
use serde::{Deserialize, Serialize};

/// The BCNN-vs-CNN cost on a skip-oblivious accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotivationResult {
    /// The model's Bayesian name.
    pub model: String,
    /// MC-dropout samples `T`.
    pub t: usize,
    /// Cycles of one deterministic CNN inference.
    pub cnn_cycles: u64,
    /// Cycles of the complete BCNN inference (T stochastic passes).
    pub bcnn_cycles: u64,
    /// The slowdown factor (the paper observes ~50.6× on a CNN
    /// accelerator and ~51× on a P100 at T = 50).
    pub slowdown: f64,
    /// The energy ratio.
    pub energy_ratio: f64,
}

/// Measures the BCNN-vs-CNN cost for one model on the baseline
/// accelerator.
pub fn run_model(kind: ModelKind, cfg: &ExpConfig) -> MotivationResult {
    let engine = Engine::new(EngineConfig {
        model: kind,
        scale: cfg.scale,
        drop_rate: cfg.drop_rate,
        samples: cfg.t,
        seed: cfg.seed,
        ..EngineConfig::for_model(kind)
    });
    let input = synth_input(engine.network().input_shape(), cfg.seed ^ 0x10AD);
    let w = engine.workload(&input);
    let sim = BaselineSim::new(HwConfig::baseline());
    let bcnn = sim.run(&w);
    let cnn_cycles = bcnn.total_cycles / cfg.t as u64;
    MotivationResult {
        model: kind.bayesian_name().to_string(),
        t: cfg.t,
        cnn_cycles,
        bcnn_cycles: bcnn.total_cycles,
        slowdown: bcnn.total_cycles as f64 / cnn_cycles as f64,
        energy_ratio: cfg.t as f64, // energy scales with identical passes
    }
}

/// Runs the motivation measurement for all three models.
pub fn run(cfg: &ExpConfig) -> Vec<MotivationResult> {
    ModelKind::ALL.iter().map(|&k| run_model(k, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdown_equals_sample_count() {
        let mut cfg = ExpConfig::quick();
        cfg.t = 5;
        let r = run_model(ModelKind::LeNet5, &cfg);
        assert!((r.slowdown - 5.0).abs() < 1e-9);
        assert_eq!(r.bcnn_cycles, 5 * r.cnn_cycles);
    }
}
