//! Fig. 12 — sensitivity to the confidence level `p_cf` (a) and to the
//! drop rate `p` (b).

use crate::experiments::{design_space, ExpConfig};
use crate::{synth_input, BaselineSim, Engine, EngineConfig, FastBcnnSim, HwConfig, SkipMode};
use fbcnn_nn::models::ModelKind;
use serde::{Deserialize, Serialize};

/// One point of the Fig. 12(a) confidence sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfidencePoint {
    /// The confidence level `p_cf`.
    pub confidence: f64,
    /// Accuracy loss (class disagreement vs exact MC-dropout).
    pub accuracy_loss: f64,
    /// Mean absolute probability shift.
    pub mean_prob_shift: f64,
    /// Cycle reduction of FB-64 vs the baseline.
    pub cycle_reduction: f64,
    /// Overall skip rate.
    pub skip_rate: f64,
}

/// One point of the Fig. 12(b) drop-rate sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DropRatePoint {
    /// The model's Bayesian name.
    pub model: String,
    /// The drop rate `p`.
    pub drop_rate: f64,
    /// FB-64 speedup over the baseline.
    pub speedup: f64,
}

/// Runs the Fig. 12(a) sweep (B-VGG16 in the paper) on FB-64.
pub fn confidence_sweep(
    kind: ModelKind,
    confidences: &[f64],
    cfg: &ExpConfig,
) -> Vec<ConfidencePoint> {
    confidences
        .iter()
        .map(|&pcf| {
            let engine = Engine::new(EngineConfig {
                model: kind,
                scale: cfg.scale,
                drop_rate: cfg.drop_rate,
                samples: cfg.t,
                confidence: pcf,
                seed: cfg.seed,
                ..EngineConfig::for_model(kind)
            });
            let input = synth_input(engine.network().input_shape(), cfg.seed ^ 0x10AD);
            let w = engine.workload(&input);
            let base = BaselineSim::new(HwConfig::baseline()).run(&w);
            let fb = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both).run(&w);
            let (accuracy_loss, mean_prob_shift) = design_space::accuracy_loss(&engine, cfg);
            ConfidencePoint {
                confidence: pcf,
                accuracy_loss,
                mean_prob_shift,
                cycle_reduction: fb.cycle_reduction_vs(&base),
                skip_rate: w.total_skip_stats().skip_rate(),
            }
        })
        .collect()
}

/// Runs the Fig. 12(b) sweep: FB-64 speedup at each drop rate per model.
pub fn drop_rate_sweep(rates: &[f64], cfg: &ExpConfig) -> Vec<DropRatePoint> {
    let mut out = Vec::new();
    for &kind in &ModelKind::ALL {
        for &p in rates {
            let engine = Engine::new(EngineConfig {
                model: kind,
                scale: cfg.scale,
                drop_rate: p,
                samples: cfg.t,
                confidence: cfg.confidence,
                seed: cfg.seed,
                ..EngineConfig::for_model(kind)
            });
            let input = synth_input(engine.network().input_shape(), cfg.seed ^ 0x10AD);
            let w = engine.workload(&input);
            let base = BaselineSim::new(HwConfig::baseline()).run(&w);
            let fb = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both).run(&w);
            out.push(DropRatePoint {
                model: kind.bayesian_name().to_string(),
                drop_rate: p,
                speedup: fb.speedup_over(&base),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stricter_confidence_reduces_skipping() {
        let points = confidence_sweep(ModelKind::LeNet5, &[0.60, 0.90], &ExpConfig::quick());
        assert_eq!(points.len(), 2);
        assert!(
            points[0].skip_rate >= points[1].skip_rate - 1e-9,
            "loose {} vs strict {}",
            points[0].skip_rate,
            points[1].skip_rate
        );
        assert!(points[0].cycle_reduction >= points[1].cycle_reduction - 0.02);
    }

    #[test]
    fn higher_drop_rate_speeds_up() {
        let cfg = ExpConfig::quick();
        let pts: Vec<DropRatePoint> = drop_rate_sweep(&[0.2, 0.5], &cfg)
            .into_iter()
            .filter(|p| p.model == "B-LeNet-5")
            .collect();
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].speedup >= pts[0].speedup - 0.05,
            "p=0.5 ({:.2}x) should not be slower than p=0.2 ({:.2}x)",
            pts[1].speedup,
            pts[0].speedup
        );
        assert!(pts.iter().all(|p| p.speedup > 1.0));
    }
}
