//! Design-choice ablations beyond the paper's FB-d / FB-u split:
//!
//! * **counting-lane provisioning** — Eq. 9 sizes the prediction unit at
//!   `δ·Tn` lanes with δ = 4 in Table I while the analysis says the
//!   demand is 4–8; sweeping δ shows where under-provisioning stalls the
//!   pipeline and where extra lanes stop paying;
//! * **calibration tolerance** — the substitution knob documented in
//!   DESIGN.md §3b: how the admitted flip tolerance trades skip rate
//!   against prediction exactness.

use crate::experiments::ExpConfig;
use crate::{
    synth_input, BaselineSim, BayesianNetwork, Engine, EngineConfig, FastBcnnSim, HwConfig,
    SkipMode, ThresholdOptimizer, Workload,
};
use fbcnn_nn::models::ModelKind;
use serde::{Deserialize, Serialize};

/// One lane-provisioning point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LanePoint {
    /// Lane factor δ (lanes = δ·Tn).
    pub delta: usize,
    /// Counting lanes per PE.
    pub lanes: usize,
    /// Cycle reduction vs the baseline.
    pub cycle_reduction: f64,
    /// Total prediction-stall cycles.
    pub stall_cycles: u64,
    /// Prediction-unit share of energy.
    pub prediction_energy_share: f64,
}

/// The δ sweep for one model on FB-`tm`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneAblation {
    /// The model's Bayesian name.
    pub model: String,
    /// PE count.
    pub tm: usize,
    /// Sweep points.
    pub points: Vec<LanePoint>,
}

/// Sweeps the counting-lane factor δ for one model.
pub fn lane_sweep(kind: ModelKind, tm: usize, deltas: &[usize], cfg: &ExpConfig) -> LaneAblation {
    let engine = Engine::new(EngineConfig {
        model: kind,
        scale: cfg.scale,
        drop_rate: cfg.drop_rate,
        samples: cfg.t,
        confidence: cfg.confidence,
        seed: cfg.seed,
        ..EngineConfig::for_model(kind)
    });
    let input = synth_input(engine.network().input_shape(), cfg.seed ^ 0x10AD);
    let w = engine.workload(&input);
    let base = BaselineSim::new(HwConfig::baseline()).run(&w);
    let points = deltas
        .iter()
        .map(|&delta| {
            let hw = HwConfig::fast_bcnn(tm).with_lane_factor(delta);
            let r = FastBcnnSim::new(hw, SkipMode::Both).run(&w);
            LanePoint {
                delta,
                lanes: hw.counting_lanes(),
                cycle_reduction: r.cycle_reduction_vs(&base),
                stall_cycles: r.total_stall(),
                prediction_energy_share: r.energy.prediction_share(),
            }
        })
        .collect();
    LaneAblation {
        model: kind.bayesian_name().to_string(),
        tm,
        points,
    }
}

/// One calibration-tolerance point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TolerancePoint {
    /// The relative tolerance used in Algorithm 1's ground truth.
    pub tolerance: f32,
    /// Overall skip rate achieved.
    pub skip_rate: f64,
    /// FB-64 cycle reduction vs baseline.
    pub cycle_reduction: f64,
}

/// Sweeps the calibration tolerance for one model.
pub fn tolerance_sweep(
    kind: ModelKind,
    tolerances: &[f32],
    cfg: &ExpConfig,
) -> Vec<TolerancePoint> {
    let net = kind.build_scaled(cfg.seed, cfg.scale);
    let bnet = BayesianNetwork::new(net, cfg.drop_rate);
    let input = synth_input(bnet.network().input_shape(), cfg.seed ^ 0x10AD);
    tolerances
        .iter()
        .map(|&tol| {
            let thresholds = ThresholdOptimizer {
                confidence: cfg.confidence,
                affected_tolerance: tol,
                ..ThresholdOptimizer::default()
            }
            .optimize(&bnet, &input, cfg.seed ^ 0x7E57);
            let w = Workload::build(&bnet, &input, &thresholds, cfg.t, cfg.seed);
            let base = BaselineSim::new(HwConfig::baseline()).run(&w);
            let fb = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both).run(&w);
            TolerancePoint {
                tolerance: tol,
                skip_rate: w.total_skip_stats().skip_rate(),
                cycle_reduction: fb.cycle_reduction_vs(&base),
            }
        })
        .collect()
}

/// The int8-quantization ablation: does the skipping machinery survive
/// fixed-point weights? (The paper stays in fp32; this is its natural
/// future-work experiment.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantAblation {
    /// The model's Bayesian name.
    pub model: String,
    /// Fraction of weight-polarity indicator bits unchanged by
    /// quantization (the prediction unit's input).
    pub polarity_stability: f64,
    /// Skip rate with the original fp32 weights.
    pub skip_rate_fp32: f64,
    /// Skip rate with int8-quantized weights (thresholds recalibrated).
    pub skip_rate_int8: f64,
    /// FB-64 cycle reduction with fp32 weights.
    pub cycle_reduction_fp32: f64,
    /// FB-64 cycle reduction with int8 weights.
    pub cycle_reduction_int8: f64,
}

/// Runs the quantization ablation for one model.
pub fn quantization(kind: ModelKind, cfg: &ExpConfig) -> QuantAblation {
    let original = kind.build_scaled(cfg.seed, cfg.scale);
    let quantized = fbcnn_nn::quant::quantize_network(&original);
    let polarity_stability = fbcnn_nn::quant::polarity_stability(&original, &quantized);

    let measure = |net: fbcnn_nn::Network| {
        let bnet = BayesianNetwork::new(net, cfg.drop_rate);
        let input = synth_input(bnet.network().input_shape(), cfg.seed ^ 0x10AD);
        let thresholds = ThresholdOptimizer {
            confidence: cfg.confidence,
            ..ThresholdOptimizer::default()
        }
        .optimize(&bnet, &input, cfg.seed ^ 0x7E57);
        let w = Workload::build(&bnet, &input, &thresholds, cfg.t, cfg.seed);
        let base = BaselineSim::new(HwConfig::baseline()).run(&w);
        let fb = FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::Both).run(&w);
        (
            w.total_skip_stats().skip_rate(),
            fb.cycle_reduction_vs(&base),
        )
    };
    let (skip_rate_fp32, cycle_reduction_fp32) = measure(original);
    let (skip_rate_int8, cycle_reduction_int8) = measure(quantized);
    QuantAblation {
        model: kind.bayesian_name().to_string(),
        polarity_stability,
        skip_rate_fp32,
        skip_rate_int8,
        cycle_reduction_fp32,
        cycle_reduction_int8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_preserves_the_skipping_opportunity() {
        let q = quantization(ModelKind::LeNet5, &ExpConfig::quick());
        assert!(q.polarity_stability > 0.99);
        assert!(
            (q.skip_rate_int8 - q.skip_rate_fp32).abs() < 0.1,
            "skip rate moved too much: {} vs {}",
            q.skip_rate_fp32,
            q.skip_rate_int8
        );
        assert!(q.cycle_reduction_int8 > 0.0);
    }

    #[test]
    fn more_lanes_never_hurt() {
        let r = lane_sweep(ModelKind::LeNet5, 64, &[1, 4, 8], &ExpConfig::quick());
        assert_eq!(r.points.len(), 3);
        for pair in r.points.windows(2) {
            assert!(
                pair[1].cycle_reduction >= pair[0].cycle_reduction - 1e-9,
                "extra lanes reduced performance: {:?}",
                pair
            );
            assert!(pair[1].stall_cycles <= pair[0].stall_cycles);
        }
    }

    #[test]
    fn tolerance_grows_skipping() {
        let pts = tolerance_sweep(ModelKind::LeNet5, &[0.0, 0.5], &ExpConfig::quick());
        assert!(pts[1].skip_rate >= pts[0].skip_rate - 1e-9);
    }
}
