//! Fig. 11 — Fast-BCNN-64 against Cnvlutin, the ideal case and the FB-d /
//! FB-u ablations.

use crate::experiments::ExpConfig;
use crate::{
    synth_input, BaselineSim, CnvlutinSim, Engine, EngineConfig, FastBcnnSim, HwConfig, IdealSim,
    SkipMode,
};
use fbcnn_nn::models::ModelKind;
use serde::{Deserialize, Serialize};

/// One design's normalized results in the Fig. 11 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonPoint {
    /// Design name.
    pub design: String,
    /// Cycles normalized to the baseline.
    pub normalized_cycles: f64,
    /// Energy normalized to the baseline.
    pub normalized_energy: f64,
    /// Cycle reduction vs baseline.
    pub cycle_reduction: f64,
    /// Energy reduction vs baseline.
    pub energy_reduction: f64,
}

/// The Fig. 11 panel for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonResult {
    /// The model's Bayesian name.
    pub model: String,
    /// baseline, cnvlutin, FB-64-d, FB-64-u, FB-64, ideal — in that order.
    pub points: Vec<ComparisonPoint>,
    /// FB-64's speedup over Cnvlutin (the paper reports 1.9× average).
    pub fb_vs_cnvlutin_speedup: f64,
    /// FB-64's energy reduction relative to Cnvlutin (paper: 34 %).
    pub fb_vs_cnvlutin_energy_reduction: f64,
    /// The performance gap between FB-64 and the ideal case (paper:
    /// 11.3 % average).
    pub gap_to_ideal: f64,
}

/// Runs the Fig. 11 comparison for one network.
pub fn run_model(kind: ModelKind, cfg: &ExpConfig) -> ComparisonResult {
    let engine = Engine::new(EngineConfig {
        model: kind,
        scale: cfg.scale,
        drop_rate: cfg.drop_rate,
        samples: cfg.t,
        confidence: cfg.confidence,
        seed: cfg.seed,
        ..EngineConfig::for_model(kind)
    });
    let input = synth_input(engine.network().input_shape(), cfg.seed ^ 0x10AD);
    let w = engine.workload(&input);

    let base = BaselineSim::new(HwConfig::baseline()).run(&w);
    let fb64 = HwConfig::fast_bcnn(64);
    let runs = [
        base.clone(),
        CnvlutinSim::new().run(&w),
        FastBcnnSim::new(fb64, SkipMode::DroppedOnly).run(&w),
        FastBcnnSim::new(fb64, SkipMode::UnaffectedOnly).run(&w),
        FastBcnnSim::new(fb64, SkipMode::Both).run(&w),
        IdealSim::new(fb64).run(&w),
    ];

    let points: Vec<ComparisonPoint> = runs
        .iter()
        .map(|r| ComparisonPoint {
            design: r.name.clone(),
            normalized_cycles: r.normalized_cycles() / base.normalized_cycles(),
            normalized_energy: r.energy.total() / base.energy.total(),
            cycle_reduction: r.cycle_reduction_vs(&base),
            energy_reduction: r.energy_reduction_vs(&base),
        })
        .collect();

    let cnv = &runs[1];
    let fb = &runs[4];
    let ideal = &runs[5];
    ComparisonResult {
        model: kind.bayesian_name().to_string(),
        points,
        fb_vs_cnvlutin_speedup: fb.speedup_over(cnv),
        fb_vs_cnvlutin_energy_reduction: fb.energy_reduction_vs(cnv),
        gap_to_ideal: 1.0 - ideal.normalized_cycles() / fb.normalized_cycles(),
    }
}

/// Runs the Fig. 11 comparison for all three networks.
pub fn run(cfg: &ExpConfig) -> Vec<ComparisonResult> {
    ModelKind::ALL.iter().map(|&k| run_model(k, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orderings_match_the_paper() {
        let r = run_model(ModelKind::LeNet5, &ExpConfig::quick());
        assert_eq!(r.points.len(), 6);
        let by_name = |n: &str| {
            r.points
                .iter()
                .find(|p| p.design == n)
                .unwrap_or_else(|| panic!("missing design {n}"))
        };
        let base = by_name("baseline");
        let cnv = by_name("cnvlutin");
        let fb = by_name("FB-64");
        let ideal = by_name("ideal");
        assert!((base.normalized_cycles - 1.0).abs() < 1e-9);
        // Who wins: ideal <= FB-64 <= cnvlutin <= baseline.
        assert!(ideal.normalized_cycles <= fb.normalized_cycles + 1e-9);
        assert!(fb.normalized_cycles < cnv.normalized_cycles);
        assert!(cnv.normalized_cycles <= base.normalized_cycles + 1e-9);
        assert!(r.fb_vs_cnvlutin_speedup > 1.0);
        assert!((0.0..1.0).contains(&r.gap_to_ideal));
    }

    #[test]
    fn single_mode_reductions_exceed_combined() {
        // Fig. 11's sub-additivity observation: reduction(FB-d) +
        // reduction(FB-u) >= reduction(FB) because of overlap.
        let r = run_model(ModelKind::LeNet5, &ExpConfig::quick());
        let red = |n: &str| {
            r.points
                .iter()
                .find(|p| p.design == n)
                .unwrap()
                .cycle_reduction
        };
        assert!(red("FB-64-d") + red("FB-64-u") >= red("FB-64") - 0.02);
    }
}
