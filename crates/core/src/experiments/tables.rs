//! Tables I–III.

use crate::{Brng, HwConfig, SoftwareBernoulli};
use fbcnn_accel::resources::{self, ResourceReport, VIRTEX7_VC709};
use fbcnn_bayes::measured_drop_rate;
use serde::{Deserialize, Serialize};

/// Table I: one hardware design row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Design name.
    pub design: String,
    /// Total multipliers.
    pub total_macs: usize,
    /// Number of PEs.
    pub tm: usize,
    /// Multipliers per PE.
    pub tn: usize,
    /// Counting lanes per PE.
    pub counting_lanes: usize,
}

/// Regenerates Table I.
pub fn table1() -> Vec<Table1Row> {
    let mut rows = vec![Table1Row {
        design: "Baseline".into(),
        total_macs: HwConfig::baseline().total_macs(),
        tm: HwConfig::baseline().tm(),
        tn: HwConfig::baseline().tn(),
        counting_lanes: 0,
    }];
    for cfg in HwConfig::design_space() {
        rows.push(Table1Row {
            design: format!("Fast-BCNN{}", cfg.tm()),
            total_macs: cfg.total_macs(),
            tm: cfg.tm(),
            tn: cfg.tn(),
            counting_lanes: cfg.counting_lanes(),
        });
    }
    rows
}

/// Table II: resource usage plus device utilization for FB-64.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Absolute usage per module group.
    pub report: ResourceReport,
    /// Utilization fractions `(lut, ff, bram)` for the three groups.
    pub conv_utilization: (f64, f64, f64),
    /// Prediction-unit utilization fractions.
    pub prediction_utilization: (f64, f64, f64),
    /// Central-predictor utilization fractions.
    pub central_utilization: (f64, f64, f64),
}

/// Regenerates Table II (FB-64 on the VC709).
pub fn table2() -> Table2 {
    let report = resources::estimate(&HwConfig::fast_bcnn(64));
    Table2 {
        conv_utilization: report.convolution_units.utilization(&VIRTEX7_VC709),
        prediction_utilization: report.prediction_units.utilization(&VIRTEX7_VC709),
        central_utilization: report.central_predictor.utilization(&VIRTEX7_VC709),
        report,
    }
}

/// Table III: one measured drop-rate row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Nominal drop rate `p`.
    pub nominal: f64,
    /// LFSR BRNG rate over 2000 cycles.
    pub lfsr_2000: f64,
    /// LFSR BRNG rate over 4000 cycles.
    pub lfsr_4000: f64,
    /// Software generator rate over 2000 samples.
    pub software_2000: f64,
    /// Software generator rate over 4000 samples.
    pub software_4000: f64,
}

/// Regenerates Table III: empirical drop rates at p ∈ {0.5, 0.2, 0.1}.
pub fn table3(seed: u64) -> Vec<Table3Row> {
    [0.5, 0.2, 0.1]
        .iter()
        .map(|&p| {
            let measure_lfsr = |n: usize| {
                let mut brng = Brng::new(p, seed);
                measured_drop_rate(|| brng.next_bit(), n)
            };
            let measure_sw = |n: usize| {
                let mut sw = SoftwareBernoulli::new(p, seed);
                measured_drop_rate(|| sw.next_bit(), n)
            };
            Table3Row {
                nominal: p,
                lfsr_2000: measure_lfsr(2000),
                lfsr_4000: measure_lfsr(4000),
                software_2000: measure_sw(2000),
                software_4000: measure_sw(4000),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let rows = table1();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.total_macs == 256));
        assert_eq!(rows[1].counting_lanes, 128);
        assert_eq!(rows[4].counting_lanes, 16);
    }

    #[test]
    fn table2_prediction_overhead_below_one_percent() {
        let t = table2();
        assert!(t.prediction_utilization.0 < 0.01);
        assert!(t.prediction_utilization.1 < 0.01);
        assert!(t.conv_utilization.0 > 0.5);
    }

    #[test]
    fn table3_rates_are_accurate() {
        for row in table3(42) {
            for measured in [
                row.lfsr_2000,
                row.lfsr_4000,
                row.software_2000,
                row.software_4000,
            ] {
                assert!(
                    (measured - row.nominal).abs() < 0.03,
                    "measured {measured} vs nominal {}",
                    row.nominal
                );
            }
        }
    }
}
