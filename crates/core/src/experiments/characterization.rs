//! Fig. 3 / Fig. 4 — characterization of zero, unaffected and affected
//! neurons per BCNN layer.

use crate::experiments::ExpConfig;
use crate::{synth_input, BayesianNetwork};
use fbcnn_nn::models::ModelKind;
use serde::{Deserialize, Serialize};

/// Per-layer characterization row (one bar group of Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCharacterization {
    /// Layer label (e.g. `"conv2_1"`, `"a3C1"`).
    pub layer: String,
    /// Fraction of neurons that are zero in the dropout-free inference.
    pub zero_ratio: f64,
    /// Fraction of neurons that are unaffected (zero without dropout and
    /// still zero — before their own mask — under dropout), averaged over
    /// `T` samples.
    pub unaffected_ratio: f64,
    /// Fraction of neurons that are affected (zero without dropout but
    /// non-zero under dropout), averaged over `T` samples.
    pub affected_ratio: f64,
    /// Of the zero neurons, the fraction that stayed unaffected — the
    /// paper's ">90 % of zero neurons belong to unaffected neurons".
    pub unaffected_share_of_zeros: f64,
    /// The same share when flips below 25 % of the layer's mean positive
    /// activation count as unaffected — the calibration tolerance's view
    /// (our synthetic weights leave more zeros marginal than trained
    /// checkpoints do; see `ThresholdOptimizer::affected_tolerance`).
    pub unaffected_share_tolerant: f64,
}

/// Whole-model characterization (one panel of Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelCharacterization {
    /// The model's Bayesian name.
    pub model: String,
    /// Per-layer rows in execution order.
    pub layers: Vec<LayerCharacterization>,
    /// Neuron-weighted mean unaffected ratio across layers.
    pub mean_unaffected_ratio: f64,
    /// Neuron-weighted mean share of zero neurons that stay unaffected.
    pub mean_unaffected_share_of_zeros: f64,
}

/// Runs the characterization for one model.
pub fn characterize_model(kind: ModelKind, cfg: &ExpConfig) -> ModelCharacterization {
    let net = kind.build_scaled(cfg.seed, cfg.scale);
    let bnet = BayesianNetwork::new(net, cfg.drop_rate);
    let input = synth_input(bnet.network().input_shape(), cfg.seed ^ 0xF19);
    let pre = bnet.forward_deterministic(&input);
    let convs = bnet.network().conv_nodes();
    let zero_masks: Vec<_> = convs
        .iter()
        .map(|&id| pre.activations[id.0].zero_mask())
        .collect();

    let mut unaffected = vec![0u64; convs.len()];
    let mut affected = vec![0u64; convs.len()];
    let mut affected_tolerant = vec![0u64; convs.len()];
    for t in 0..cfg.t {
        let masks = bnet.generate_masks(cfg.seed, t);
        let (_, pre_mask_acts) = bnet.forward_sample_recording(&input, &masks);
        for (li, &node) in convs.iter().enumerate() {
            let Some(truth) = pre_mask_acts[node.0].as_ref() else {
                // Conv nodes always record pre-mask values; a miss means
                // the recording contract changed — skip rather than abort.
                continue;
            };
            let mut pos_sum = 0.0f64;
            let mut pos_n = 0u64;
            for &v in truth.iter() {
                if v > 0.0 {
                    pos_sum += v as f64;
                    pos_n += 1;
                }
            }
            let tol = if pos_n > 0 {
                0.25 * (pos_sum / pos_n as f64) as f32
            } else {
                0.0
            };
            for i in zero_masks[li].iter_set() {
                let v = truth.at(i);
                if v == 0.0 {
                    unaffected[li] += 1;
                } else {
                    affected[li] += 1;
                    if v > tol {
                        affected_tolerant[li] += 1;
                    }
                }
            }
        }
    }

    let mut layers = Vec::with_capacity(convs.len());
    let mut weighted_unaffected = 0.0;
    let mut weighted_share = 0.0;
    let mut total_neurons = 0.0;
    for (li, &node) in convs.iter().enumerate() {
        let neurons = bnet.network().shape(node).len() as f64;
        let zeros = zero_masks[li].count_ones() as f64;
        let t = cfg.t as f64;
        let unaffected_ratio = unaffected[li] as f64 / (neurons * t);
        let affected_ratio = affected[li] as f64 / (neurons * t);
        let share = if zeros > 0.0 {
            unaffected[li] as f64 / (zeros * t)
        } else {
            1.0
        };
        let share_tolerant = if zeros > 0.0 {
            1.0 - affected_tolerant[li] as f64 / (zeros * t)
        } else {
            1.0
        };
        weighted_unaffected += unaffected_ratio * neurons;
        weighted_share += share * neurons;
        total_neurons += neurons;
        layers.push(LayerCharacterization {
            layer: bnet.network().node(node).label().to_string(),
            zero_ratio: zeros / neurons,
            unaffected_ratio,
            affected_ratio,
            unaffected_share_of_zeros: share,
            unaffected_share_tolerant: share_tolerant,
        });
    }

    ModelCharacterization {
        model: kind.bayesian_name().to_string(),
        layers,
        mean_unaffected_ratio: weighted_unaffected / total_neurons,
        mean_unaffected_share_of_zeros: weighted_share / total_neurons,
    }
}

/// Runs the characterization for all three models (the full Fig. 4).
pub fn run(cfg: &ExpConfig) -> Vec<ModelCharacterization> {
    ModelKind::ALL
        .iter()
        .map(|&k| characterize_model(k, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_consistent() {
        let c = characterize_model(ModelKind::LeNet5, &ExpConfig::quick());
        assert_eq!(c.layers.len(), 3);
        for layer in &c.layers {
            // unaffected + affected = zero ratio (every pre-zero neuron is
            // one or the other in each sample).
            assert!(
                (layer.unaffected_ratio + layer.affected_ratio - layer.zero_ratio).abs() < 1e-9,
                "inconsistent ratios in {}",
                layer.layer
            );
            assert!((0.0..=1.0).contains(&layer.unaffected_share_of_zeros));
        }
    }

    #[test]
    fn most_zero_neurons_are_unaffected() {
        // The paper's headline: >90 % of zero neurons stay zero. Accept a
        // slightly looser bound for the synthetic-weight substitution.
        let c = characterize_model(ModelKind::LeNet5, &ExpConfig::quick());
        assert!(
            c.mean_unaffected_share_of_zeros > 0.75,
            "share {}",
            c.mean_unaffected_share_of_zeros
        );
    }

    #[test]
    fn unaffected_ratio_is_substantial() {
        let c = characterize_model(ModelKind::LeNet5, &ExpConfig::quick());
        assert!(
            c.mean_unaffected_ratio > 0.3,
            "unaffected ratio {}",
            c.mean_unaffected_ratio
        );
    }
}
