//! Fig. 10 — performance, energy and accuracy across the FB-8…FB-64
//! design space, per network.

use crate::experiments::ExpConfig;
use crate::{synth_input, BaselineSim, Engine, EngineConfig, FastBcnnSim, HwConfig, SkipMode};
use fbcnn_nn::models::ModelKind;
use fbcnn_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// One design point's results (one bar of Fig. 10 a–c).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Design name (`"FB-8"` … `"FB-64"`).
    pub design: String,
    /// Cycles normalized to the baseline (lower is better).
    pub normalized_cycles: f64,
    /// Energy normalized to the baseline.
    pub normalized_energy: f64,
    /// Speedup over the baseline.
    pub speedup: f64,
    /// Cycle reduction vs the baseline.
    pub cycle_reduction: f64,
    /// Energy reduction vs the baseline.
    pub energy_reduction: f64,
    /// Prediction-unit share of this design's energy.
    pub prediction_energy_share: f64,
    /// Central-predictor share of this design's energy.
    pub central_energy_share: f64,
}

/// Fig. 10 panel for one network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpaceResult {
    /// The model's Bayesian name.
    pub model: String,
    /// Results per design point.
    pub points: Vec<DesignPoint>,
    /// Accuracy loss of the skipping inference (class-disagreement rate
    /// between exact and skipping MC-dropout over a batch of inputs).
    /// Design-point independent: prediction depends only on thresholds.
    pub accuracy_loss: f64,
    /// Mean absolute probability shift of the final averaged prediction.
    pub mean_prob_shift: f64,
    /// Overall skip rate of the workload.
    pub skip_rate: f64,
}

/// Measures accuracy loss: *material* class disagreement between exact
/// and skipping MC-dropout under common random masks, over a batch of
/// synthetic inputs.
///
/// A disagreement counts only when the exact run genuinely preferred its
/// class: on near-uniform outputs (synthetic-weight VGG/GoogLeNet produce
/// ties at the 1e-6 level), an argmax flip between statistically equal
/// classes is measurement noise, not lost accuracy. The trained-model
/// experiment (`experiments::accuracy`) provides the real classification
/// metric.
pub fn accuracy_loss(engine: &Engine, cfg: &ExpConfig) -> (f64, f64) {
    let mut disagreements = 0usize;
    let mut prob_shift = 0.0f64;
    for i in 0..cfg.accuracy_inputs {
        let input = synth_input(
            engine.network().input_shape(),
            cfg.seed ^ (0xACC0 + i as u64),
        );
        let exact = exact_prediction(engine, &input, cfg.accuracy_samples);
        let fast = fast_prediction(engine, &input, cfg.accuracy_samples);
        let margin = exact.mean[exact.class] - exact.mean[fast.class];
        if exact.class != fast.class && margin > 1e-3 {
            disagreements += 1;
        }
        prob_shift += exact
            .mean
            .iter()
            .zip(&fast.mean)
            .map(|(a, b)| (a - b).abs() as f64)
            .sum::<f64>()
            / exact.mean.len() as f64;
    }
    (
        disagreements as f64 / cfg.accuracy_inputs as f64,
        prob_shift / cfg.accuracy_inputs as f64,
    )
}

fn exact_prediction(engine: &Engine, input: &Tensor, t: usize) -> crate::Prediction {
    crate::McDropout::new(t, engine.config().seed).run_with_threads(
        engine.bayesian_network(),
        input,
        engine.config().threads,
    )
}

fn fast_prediction(engine: &Engine, input: &Tensor, t: usize) -> crate::Prediction {
    let pe = crate::PredictiveInference::new(
        engine.bayesian_network(),
        input,
        engine.thresholds().clone(),
    );
    let (probs, _) = pe.run_mc(engine.config().seed, t);
    crate::McDropout::summarize(probs)
}

/// Runs the Fig. 10 sweep for one network.
pub fn run_model(kind: ModelKind, cfg: &ExpConfig) -> DesignSpaceResult {
    let engine = Engine::new(EngineConfig {
        model: kind,
        scale: cfg.scale,
        drop_rate: cfg.drop_rate,
        samples: cfg.t,
        confidence: cfg.confidence,
        seed: cfg.seed,
        threads: cfg.threads,
        ..EngineConfig::for_model(kind)
    });
    let input = synth_input(engine.network().input_shape(), cfg.seed ^ 0x10AD);
    let workload = engine.workload(&input);
    let base = BaselineSim::new(HwConfig::baseline()).run(&workload);

    let points = HwConfig::design_space()
        .iter()
        .map(|&hw| {
            let r = FastBcnnSim::new(hw, SkipMode::Both).run(&workload);
            DesignPoint {
                design: hw.name(),
                normalized_cycles: r.normalized_cycles() / base.normalized_cycles(),
                normalized_energy: r.energy.total() / base.energy.total(),
                speedup: r.speedup_over(&base),
                cycle_reduction: r.cycle_reduction_vs(&base),
                energy_reduction: r.energy_reduction_vs(&base),
                prediction_energy_share: r.energy.prediction_share(),
                central_energy_share: r.energy.central_share(),
            }
        })
        .collect();

    let (accuracy_loss, mean_prob_shift) = accuracy_loss(&engine, cfg);
    DesignSpaceResult {
        model: kind.bayesian_name().to_string(),
        points,
        accuracy_loss,
        mean_prob_shift,
        skip_rate: workload.total_skip_stats().skip_rate(),
    }
}

/// Runs the full Fig. 10 sweep over all three networks.
pub fn run(cfg: &ExpConfig) -> Vec<DesignSpaceResult> {
    ModelKind::ALL.iter().map(|&k| run_model(k, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenet_sweep_has_expected_shape() {
        let r = run_model(ModelKind::LeNet5, &ExpConfig::quick());
        assert_eq!(r.points.len(), 4);
        for p in &r.points {
            assert!(
                p.speedup > 1.0,
                "{} did not beat baseline ({:.2}x)",
                p.design,
                p.speedup
            );
            assert!((0.0..1.0).contains(&p.cycle_reduction));
            assert!(p.normalized_cycles < 1.0);
        }
        assert!((0.0..=1.0).contains(&r.accuracy_loss));
        assert!(r.skip_rate > 0.2);
    }

    #[test]
    fn accuracy_loss_is_small_at_default_confidence() {
        let r = run_model(ModelKind::LeNet5, &ExpConfig::quick());
        // The paper restricts loss to ~0.3-1.4%; at quick scale allow more
        // slack, but most classes must agree.
        assert!(r.accuracy_loss <= 0.5, "accuracy loss {}", r.accuracy_loss);
    }
}
