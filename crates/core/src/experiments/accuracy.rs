//! Trained-model accuracy — the SynthDigits substitution for the paper's
//! MNIST accuracy numbers.
//!
//! LeNet-5 is *actually trained* from scratch (see `fbcnn_nn::train`) so
//! the accuracy-loss measurement has a real classification metric behind
//! it: the exact BCNN and the skipping BCNN classify a held-out test set
//! and their accuracies are compared.

use crate::{Engine, EngineConfig, McDropout, PredictiveInference};
use fbcnn_nn::data::SynthDigits;
use fbcnn_nn::models::{ModelKind, ModelScale};
use fbcnn_nn::train::{self, TrainConfig};
use fbcnn_nn::Network;
use serde::{Deserialize, Serialize};

/// Accuracy of the exact vs skipping BCNN on a trained LeNet-5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedAccuracyResult {
    /// Confidence level used for threshold calibration.
    pub confidence: f64,
    /// Deterministic (single-pass) test accuracy of the trained model.
    pub deterministic_accuracy: f64,
    /// Test accuracy of exact MC-dropout (T samples averaged).
    pub exact_bcnn_accuracy: f64,
    /// Test accuracy of the skipping MC-dropout.
    pub skipping_bcnn_accuracy: f64,
    /// The accuracy loss attributable to skipping.
    pub accuracy_loss: f64,
    /// Number of test images.
    pub test_size: usize,
}

/// Sizing for the trained-accuracy experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainedAccuracyConfig {
    /// Training images.
    pub train_size: usize,
    /// Held-out test images.
    pub test_size: usize,
    /// Training epochs.
    pub epochs: usize,
    /// MC samples per test image.
    pub samples: usize,
    /// Dropout rate during inference.
    pub drop_rate: f64,
    /// Seed.
    pub seed: u64,
    /// Worker threads for the exact MC-dropout passes (1 = sequential).
    pub threads: usize,
}

impl Default for TrainedAccuracyConfig {
    fn default() -> Self {
        Self {
            train_size: 400,
            test_size: 100,
            epochs: 6,
            samples: 12,
            drop_rate: 0.3,
            seed: 0x7EA1,
            threads: 1,
        }
    }
}

/// Trains LeNet-5 on SynthDigits and returns the trained network.
pub fn train_lenet(cfg: &TrainedAccuracyConfig) -> Network {
    let mut net = ModelKind::LeNet5.build(cfg.seed);
    // Training from the calibrated (sparsity-shaped) init is harder than
    // from a neutral one; reinitialize neutrally.
    fbcnn_nn::init::he_uniform(&mut net, cfg.seed);
    let data = SynthDigits::new(cfg.seed).batch(0, cfg.train_size);
    train::train(
        &mut net,
        &data,
        &TrainConfig {
            epochs: cfg.epochs,
            ..TrainConfig::default()
        },
    );
    net
}

/// Runs the trained-accuracy experiment at one confidence level.
pub fn run_with_network(
    net: Network,
    confidence: f64,
    cfg: &TrainedAccuracyConfig,
) -> TrainedAccuracyResult {
    let test = SynthDigits::new(cfg.seed ^ 0xDEAD).batch(0, cfg.test_size);
    let deterministic_accuracy = train::accuracy(&net, &test) as f64;

    let engine = Engine::with_network(
        net,
        EngineConfig {
            model: ModelKind::LeNet5,
            scale: ModelScale::FULL,
            drop_rate: cfg.drop_rate,
            samples: cfg.samples,
            confidence,
            calibration_samples: 6,
            seed: cfg.seed,
            threads: cfg.threads,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        },
    );

    let mut exact_correct = 0usize;
    let mut skip_correct = 0usize;
    for s in &test {
        let exact = McDropout::new(cfg.samples, cfg.seed).run_with_threads(
            engine.bayesian_network(),
            &s.image,
            cfg.threads,
        );
        if exact.class == s.label {
            exact_correct += 1;
        }
        let pe = PredictiveInference::new(
            engine.bayesian_network(),
            &s.image,
            engine.thresholds().clone(),
        );
        let (probs, _) = pe.run_mc(cfg.seed, cfg.samples);
        if McDropout::summarize(probs).class == s.label {
            skip_correct += 1;
        }
    }

    let exact_acc = exact_correct as f64 / cfg.test_size as f64;
    let skip_acc = skip_correct as f64 / cfg.test_size as f64;
    TrainedAccuracyResult {
        confidence,
        deterministic_accuracy,
        exact_bcnn_accuracy: exact_acc,
        skipping_bcnn_accuracy: skip_acc,
        accuracy_loss: exact_acc - skip_acc,
        test_size: cfg.test_size,
    }
}

/// Trains once and evaluates at several confidence levels.
pub fn run(confidences: &[f64], cfg: &TrainedAccuracyConfig) -> Vec<TrainedAccuracyResult> {
    let net = train_lenet(cfg);
    confidences
        .iter()
        .map(|&pcf| run_with_network(net.clone(), pcf, cfg))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trained_lenet_learns_and_skipping_tracks_it() {
        let cfg = TrainedAccuracyConfig {
            train_size: 300,
            test_size: 40,
            epochs: 5,
            samples: 6,
            ..Default::default()
        };
        let results = run(&[0.68], &cfg);
        let r = &results[0];
        assert!(
            r.deterministic_accuracy > 0.6,
            "trained accuracy {} too low",
            r.deterministic_accuracy
        );
        assert!(
            r.exact_bcnn_accuracy > 0.6,
            "exact BCNN accuracy {}",
            r.exact_bcnn_accuracy
        );
        assert!(
            r.accuracy_loss.abs() < 0.15,
            "skipping lost too much accuracy: {}",
            r.accuracy_loss
        );
    }
}
