//! Experiment drivers — one per table/figure of the paper's evaluation.
//!
//! Every driver returns a serializable result record; the `fbcnn-bench`
//! crate's binaries print them as text tables and dump JSON next to
//! `EXPERIMENTS.md`. The mapping to the paper:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`characterization`] | Fig. 3 / Fig. 4 (zero / unaffected / affected neurons) |
//! | [`design_space`] | Fig. 10 (cycles, energy, accuracy across FB-8…FB-64) |
//! | [`comparison`] | Fig. 11 (FB-64 vs Cnvlutin vs ideal vs FB-d / FB-u) |
//! | [`sensitivity`] | Fig. 12(a) confidence sweep, Fig. 12(b) drop-rate sweep |
//! | [`tables`] | Table I (design space), Table II (resources), Table III (BRNG) |
//! | [`sync_audit`] | Eq. 8/9 counting-lane synchronization analysis |
//! | [`breakdown`] | §VI-B1 per-layer cycle breakdown (first-layer boost) |
//! | [`motivation`] | §III BCNN-vs-CNN slowdown arithmetic |
//! | [`accuracy`] | trained-LeNet accuracy deltas (SynthDigits substitution) |
//! | [`ablation`] | counting-lane (Eq. 9 δ) and calibration-tolerance ablations |

pub mod ablation;
pub mod accuracy;
pub mod breakdown;
pub mod characterization;
pub mod comparison;
pub mod design_space;
pub mod motivation;
pub mod sensitivity;
pub mod sync_audit;
pub mod tables;

use fbcnn_nn::models::ModelScale;

/// Shared experiment sizing knobs.
///
/// The defaults reproduce the paper's protocol (T = 50, drop rate 0.3,
/// `p_cf` = 68 %) at full model scale; [`ExpConfig::quick`] shrinks
/// everything for tests, and the harness binaries accept `--quick`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpConfig {
    /// MC-dropout samples `T`.
    pub t: usize,
    /// Model scaling for the two large networks.
    pub scale: ModelScale,
    /// Drop rate `p`.
    pub drop_rate: f64,
    /// Confidence level `p_cf`.
    pub confidence: f64,
    /// Inputs used for accuracy-style measurements.
    pub accuracy_inputs: usize,
    /// Samples per input for accuracy-style measurements.
    pub accuracy_samples: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads for exact MC-dropout passes (1 = sequential;
    /// results are identical either way, see
    /// `fbcnn_bayes::McDropout::run_parallel`).
    pub threads: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            t: 50,
            scale: ModelScale::FULL,
            drop_rate: 0.3,
            confidence: 0.68,
            accuracy_inputs: 4,
            accuracy_samples: 8,
            seed: 0xFB_C0DE,
            threads: 1,
        }
    }
}

impl ExpConfig {
    /// A small configuration for unit/integration tests.
    pub fn quick() -> Self {
        Self {
            t: 4,
            scale: ModelScale::TINY,
            accuracy_inputs: 2,
            accuracy_samples: 4,
            ..Self::default()
        }
    }
}
