//! Seeded SLO soak: drive the versioned registry through calm → fault
//! burst → recovery under a [`WindowedRegistry`] and a [`SloPolicy`],
//! and reconcile the windowed accounting **exactly** against the
//! registry's own fold and the chaos campaign's report.
//!
//! The soak is the executable acceptance criterion of the SLO monitor:
//!
//! 1. **Calm** windows of healthy registry traffic must evaluate
//!    [`HealthStatus::Ok`].
//! 2. A **burst** window deploys a crashy candidate (its canary traffic
//!    panics every sample) so the canary breaker trips, rolls the
//!    rollout back, and fires the armed flight-recorder postmortem;
//!    optionally a [`ChaosConfig::quick`] campaign runs in the same
//!    window under the `"default"` deadline class. The window must
//!    evaluate [`HealthStatus::Critical`].
//! 3. **Recovery** windows of healthy traffic walk the verdict back
//!    through [`HealthStatus::Warning`] (the slow-span error budget is
//!    still burned) to a final [`HealthStatus::Ok`].
//!
//! Time is a [`ManualClock`], so window boundaries — and therefore the
//! whole health walk — are a deterministic function of the seed.
//!
//! [`ChaosConfig::quick`]: crate::chaos::ChaosConfig::quick

use crate::chaos::{run_chaos_into, ChaosConfig, SilencedChaosPanics};
use crate::engine::EngineConfig;
use crate::io;
use crate::{
    ArtifactError, BatchConfig, BatchRequest, Engine, FlightRecorder, ModelArtifact, ModelRegistry,
    NoJitter, RegistryConfig, RegistryOutcome, ResilienceConfig,
};
use fbcnn_nn::models::ModelKind;
use fbcnn_telemetry::{
    HealthStatus, LatencyObjective, ManualClock, Registry, SloPolicy, WindowedRegistry,
    QUANTILE_WIDTH_RATIO, REQUEST_LATENCY_METRIC, REQUEST_OUTCOME_METRIC, STANDARD_QUANTILES,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Deadline class the soak's registry traffic is served under.
pub const SOAK_CLASS: &str = "soak";

/// Deadline class the embedded chaos campaign runs under (the
/// resilience layer's default).
pub const CHAOS_CLASS: &str = "default";

/// Knobs of an SLO soak.
#[derive(Debug, Clone)]
pub struct SloSoakConfig {
    /// Master seed; traffic, routing and faults are a function of it.
    pub seed: u64,
    /// MC sample count `T` of the engines under test.
    pub samples: usize,
    /// Healthy windows before the burst.
    pub calm_windows: usize,
    /// Healthy windows after the burst. Must exceed the policy's slow
    /// span so the final verdict's budget excludes the burst.
    pub recovery_windows: usize,
    /// Registry requests driven per calm/recovery window.
    pub requests_per_window: usize,
    /// Minimum registry requests in the burst window (extended until at
    /// least six canary ids are included, so the canary breaker is
    /// guaranteed to trip).
    pub burst_requests: usize,
    /// Nominal window width on the manual clock, nanoseconds.
    pub window_width_ns: u64,
    /// Windows the registry retains; must cover the whole soak.
    pub window_capacity: usize,
    /// Also run a [`ChaosConfig::quick`] campaign inside the burst
    /// window (class `"default"`).
    pub with_chaos: bool,
    /// Where the auto-emitted postmortem dump lands; `None` picks a
    /// seed-keyed file in the system temp directory.
    pub postmortem_path: Option<PathBuf>,
}

impl SloSoakConfig {
    /// The CI smoke: small windows, chaos included, ~2s of work.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            samples: 4,
            calm_windows: 2,
            recovery_windows: 9,
            requests_per_window: 6,
            burst_requests: 16,
            window_width_ns: 1_000_000_000,
            window_capacity: 32,
            with_chaos: true,
            postmortem_path: None,
        }
    }

    /// The full soak: more traffic per window, same deterministic walk.
    pub fn full(seed: u64) -> Self {
        Self {
            calm_windows: 3,
            recovery_windows: 10,
            requests_per_window: 10,
            burst_requests: 24,
            window_capacity: 48,
            ..Self::quick(seed)
        }
    }

    /// The deadline classes this soak owns and is judged by.
    pub fn classes(&self) -> Vec<String> {
        let mut classes = vec![SOAK_CLASS.to_string()];
        if self.with_chaos {
            classes.push(CHAOS_CLASS.to_string());
        }
        classes
    }

    /// The policy the soak is judged by. The latency objective's
    /// threshold sits above the histogram's top bucket bound on
    /// purpose: wall-clock noise must never flake the health walk, so
    /// only the (deterministic) burn-rate rules can page. Burn judging
    /// is pinned to the soak's own classes so a recorder shared with
    /// foreign traffic (parallel test threads) cannot tilt the walk.
    pub fn policy(&self) -> SloPolicy {
        SloPolicy {
            objectives: vec![LatencyObjective {
                class: SOAK_CLASS.to_string(),
                quantile: 0.99,
                threshold_ns: 4e9,
            }],
            error_budget: 0.02,
            classes: Some(self.classes()),
            ..SloPolicy::default()
        }
    }
}

/// The health verdict of one window, in soak order.
#[derive(Debug, Clone)]
pub struct WindowVerdict {
    /// Window index on the manual clock.
    pub window: u64,
    /// `"calm"`, `"burst"` or `"recovery"`.
    pub phase: String,
    /// The evaluated status.
    pub status: HealthStatus,
    /// Rendered violations behind the status.
    pub violations: Vec<String>,
    /// Registry requests driven in this window.
    pub requests: usize,
}

/// Per-class request totals as the windowed registry saw them.
#[derive(Debug, Clone)]
pub struct ClassTotals {
    /// Deadline class label.
    pub class: String,
    /// `request_outcomes{class,result="ok"}` summed over the soak span.
    pub ok: u64,
    /// `request_outcomes{class,result="failed"}` summed likewise.
    pub failed: u64,
}

/// One quantile acceptance check: the windowed bucket-edge estimate
/// against the exact sorted quantile of the same latency population.
#[derive(Debug, Clone)]
pub struct QuantileCheck {
    /// Quantile name (`"p50"` … `"p999"`).
    pub name: String,
    /// The quantile in `(0, 1]`.
    pub q: f64,
    /// The windowed histogram estimate, nanoseconds.
    pub estimate_ns: f64,
    /// The exact same-rank value from the sorted latencies.
    pub exact_ns: u64,
    /// Whether the estimate honors the documented bucket error bound
    /// (`exact ≤ estimate ≤ exact × QUANTILE_WIDTH_RATIO`, clamped at
    /// the histogram edges).
    pub within_bound: bool,
}

/// Totals of the embedded chaos campaign.
#[derive(Debug, Clone, Copy)]
pub struct ChaosTotals {
    /// Requests the campaign offered.
    pub requests: u64,
    /// Requests that produced a prediction.
    pub ok: u64,
    /// Requests that failed with a typed error.
    pub failed: u64,
}

/// The outcome of one [`run_slo_soak`].
#[derive(Debug)]
pub struct SloSoakReport {
    /// The soak seed.
    pub seed: u64,
    /// Manual-clock window width, nanoseconds.
    pub window_width_ns: u64,
    /// Windows the soak spanned (calm + burst + recovery).
    pub windows: usize,
    /// Windows evicted from the ring — must be 0 for exact accounting.
    pub evicted_windows: u64,
    /// Error budget of the policy the walk was judged by.
    pub error_budget: f64,
    /// Fast alerting span, windows.
    pub fast_windows: usize,
    /// Slow alerting span, windows.
    pub slow_windows: usize,
    /// Registry requests driven (calm + burst + recovery).
    pub registry_requests: u64,
    /// Registry requests that produced a prediction.
    pub registry_ok: u64,
    /// Registry requests that failed.
    pub registry_failed: u64,
    /// The windowed per-class totals over the whole soak span.
    pub windowed: Vec<ClassTotals>,
    /// The same classes read from the *total* (unwindowed) registry.
    pub totals: Vec<ClassTotals>,
    /// Chaos campaign totals, when the burst included one.
    pub chaos: Option<ChaosTotals>,
    /// Quantile acceptance checks for the soak class.
    pub quantiles: Vec<QuantileCheck>,
    /// The per-window health walk.
    pub verdicts: Vec<WindowVerdict>,
    /// The auto-emitted postmortem dump.
    pub postmortem_path: Option<PathBuf>,
    /// The dump's recorded trigger (`"canary_spike"` normally).
    pub postmortem_trigger: String,
    /// Failed request ids the dump replays, in recording order.
    pub postmortem_failed_ids: Vec<u64>,
    /// Failed registry request ids at dump time — what the dump *must*
    /// replay.
    pub expected_failed_ids: Vec<u64>,
    /// Records in the dump's live ring.
    pub postmortem_records: u64,
    /// Degraded records ([`crate::FlightLog::degraded`]) in the dump.
    pub postmortem_degraded: u64,
    /// Mid-run invariant failures — must be empty.
    pub reconcile_errors: Vec<String>,
    /// Wall-clock of the soak, nanoseconds.
    pub elapsed_ns: u64,
}

impl SloSoakReport {
    /// Worst status any window evaluated to.
    pub fn peak_status(&self) -> HealthStatus {
        self.verdicts
            .iter()
            .map(|v| v.status)
            .max()
            .unwrap_or(HealthStatus::Ok)
    }

    /// The last window's status.
    pub fn final_status(&self) -> HealthStatus {
        self.verdicts
            .last()
            .map(|v| v.status)
            .unwrap_or(HealthStatus::Ok)
    }

    /// The windowed totals for `class`, zeros when the class was never
    /// observed.
    pub fn windowed_class(&self, class: &str) -> (u64, u64) {
        self.windowed
            .iter()
            .find(|c| c.class == class)
            .map(|c| (c.ok, c.failed))
            .unwrap_or((0, 0))
    }

    /// Cross-checks every exact-accounting claim of the soak.
    ///
    /// # Errors
    ///
    /// Returns the first failed invariant as a message.
    pub fn reconcile(&self) -> Result<(), String> {
        if let Some(e) = self.reconcile_errors.first() {
            return Err(format!("soak invariant failed: {e}"));
        }
        if self.evicted_windows != 0 {
            return Err(format!(
                "{} windows evicted; the soak span must be fully retained",
                self.evicted_windows
            ));
        }
        // Windowed soak-class totals == the registry's own outcome fold.
        let (ok, failed) = self.windowed_class(SOAK_CLASS);
        if ok != self.registry_ok || failed != self.registry_failed {
            return Err(format!(
                "windowed soak class saw {ok} ok / {failed} failed, registry fold says {} / {}",
                self.registry_ok, self.registry_failed
            ));
        }
        if self.registry_ok + self.registry_failed != self.registry_requests {
            return Err(format!(
                "registry ok {} + failed {} != offered {}",
                self.registry_ok, self.registry_failed, self.registry_requests
            ));
        }
        // Windowed chaos-class totals == the chaos report's accounting.
        if let Some(chaos) = &self.chaos {
            let (ok, failed) = self.windowed_class(CHAOS_CLASS);
            if ok != chaos.ok || failed != chaos.failed {
                return Err(format!(
                    "windowed chaos class saw {ok} ok / {failed} failed, ChaosReport says {} / {}",
                    chaos.ok, chaos.failed
                ));
            }
            if chaos.ok + chaos.failed != chaos.requests {
                return Err(format!(
                    "chaos ok {} + failed {} != offered {}",
                    chaos.ok, chaos.failed, chaos.requests
                ));
            }
        }
        // The windowed view and the total registry must agree cell by
        // cell (nothing was evicted, so the ring *is* the total).
        for w in &self.windowed {
            let t = self
                .totals
                .iter()
                .find(|t| t.class == w.class)
                .ok_or_else(|| format!("class {} missing from the total registry", w.class))?;
            if w.ok != t.ok || w.failed != t.failed {
                return Err(format!(
                    "class {}: windowed {}/{} != total registry {}/{}",
                    w.class, w.ok, w.failed, t.ok, t.failed
                ));
            }
        }
        if self.quantiles.is_empty() {
            return Err("no quantile checks were produced".to_string());
        }
        for qc in &self.quantiles {
            if !qc.within_bound {
                return Err(format!(
                    "{} estimate {:.0}ns is outside the x{} bucket bound of exact {}ns",
                    qc.name, qc.estimate_ns, QUANTILE_WIDTH_RATIO, qc.exact_ns
                ));
            }
        }
        // The health walk: calm Ok, the burst pages, the budget decays
        // through Warning, and the soak ends healthy.
        if self.peak_status() != HealthStatus::Critical {
            return Err("the fault burst never drove health to Critical".to_string());
        }
        if self.final_status() != HealthStatus::Ok {
            return Err(format!(
                "the soak ended {} instead of recovering to Ok",
                self.final_status().name()
            ));
        }
        let last_critical = self
            .verdicts
            .iter()
            .rposition(|v| v.status == HealthStatus::Critical)
            .unwrap_or(0);
        if !self.verdicts[last_critical..]
            .iter()
            .any(|v| v.status == HealthStatus::Warning)
        {
            return Err("no Warning window between Critical and recovery".to_string());
        }
        // The postmortem dump replays exactly the failed requests the
        // registry had served when the canary breaker tripped.
        if self.postmortem_path.is_none() {
            return Err("no postmortem dump was emitted".to_string());
        }
        if self.postmortem_failed_ids != self.expected_failed_ids {
            return Err(format!(
                "postmortem replays failed ids {:?}, the soak recorded {:?}",
                self.postmortem_failed_ids, self.expected_failed_ids
            ));
        }
        Ok(())
    }
}

/// Sum of `request_outcomes{class, result}` over the last `span`
/// windows.
fn windowed_class_counts(windowed: &WindowedRegistry, span: usize, class: &str) -> (u64, u64) {
    let ok = windowed.windowed_counter(
        span,
        REQUEST_OUTCOME_METRIC,
        &[("class", class), ("result", "ok")],
    );
    let failed = windowed.windowed_counter(
        span,
        REQUEST_OUTCOME_METRIC,
        &[("class", class), ("result", "failed")],
    );
    (ok, failed)
}

/// The same sums read from an unwindowed registry's counter cells.
fn total_class_counts(total: &Registry, class: &str) -> (u64, u64) {
    let mut ok = 0;
    let mut failed = 0;
    for c in total.counters() {
        if c.name != REQUEST_OUTCOME_METRIC {
            continue;
        }
        let matches = |result: &str| {
            let mut want = vec![
                ("class".to_string(), class.to_string()),
                ("result".to_string(), result.to_string()),
            ];
            want.sort();
            c.labels == want
        };
        if matches("ok") {
            ok += c.value;
        } else if matches("failed") {
            failed += c.value;
        }
    }
    (ok, failed)
}

/// Exact quantile of a sorted population, with the same rank rule as
/// [`fbcnn_telemetry::histogram_quantile`].
fn exact_quantile(sorted: &[u64], q: f64) -> Option<u64> {
    if sorted.is_empty() || !(0.0..=1.0).contains(&q) {
        return None;
    }
    let total = sorted.len() as f64;
    let rank = (q * total).ceil().clamp(1.0, total) as usize;
    sorted.get(rank - 1).copied()
}

/// Whether a bucket-edge `estimate` honors the documented error bound
/// against the `exact` same-rank value, given the histogram's edge
/// bounds.
fn estimate_within_bound(estimate: f64, exact: u64, min_bound: f64, max_bound: f64) -> bool {
    let exact = exact as f64;
    if exact > max_bound {
        // Overflow rank: the estimate clamps to the top finite bound.
        (estimate - max_bound).abs() < f64::EPSILON
    } else {
        estimate >= exact && estimate <= (exact * QUANTILE_WIDTH_RATIO).max(min_bound)
    }
}

/// Runs the seeded SLO soak; see the module docs for the phase walk.
///
/// The soak installs its [`WindowedRegistry`] as the global telemetry
/// recorder for the duration (the embedded chaos campaign detects the
/// shared sink and records straight through it).
///
/// # Errors
///
/// Only artifact/registry construction can fail; every soak-level
/// invariant lands in [`SloSoakReport::reconcile_errors`] instead.
pub fn run_slo_soak(cfg: &SloSoakConfig) -> Result<SloSoakReport, ArtifactError> {
    run_slo_soak_with_registry(cfg).map(|(report, _)| report)
}

/// [`run_slo_soak`], also handing back the windowed registry the soak
/// recorded into — harness binaries export trace/metrics artifacts from
/// its total view after the run.
///
/// # Errors
///
/// See [`run_slo_soak`].
pub fn run_slo_soak_with_registry(
    cfg: &SloSoakConfig,
) -> Result<(SloSoakReport, Arc<WindowedRegistry>), ArtifactError> {
    let start = Instant::now();
    let clock = Arc::new(ManualClock::new());
    let width = cfg.window_width_ns.max(1);
    let windowed = Arc::new(WindowedRegistry::new(
        width,
        cfg.window_capacity.max(4),
        Arc::clone(&clock) as Arc<dyn fbcnn_telemetry::Clock>,
    ));
    let _guard =
        fbcnn_telemetry::install(Arc::clone(&windowed) as Arc<dyn fbcnn_telemetry::Recorder>);
    let _silencer = SilencedChaosPanics::install();
    let policy = cfg.policy();
    let mut reconcile_errors = Vec::new();

    // --- the registry under observation -----------------------------
    let engine_cfg = EngineConfig {
        samples: cfg.samples.max(2),
        calibration_samples: 3,
        seed: cfg.seed,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    };
    let pristine = Engine::new(engine_cfg);
    let input_shape = pristine.network().input_shape();

    let flight = Arc::new(FlightRecorder::default());
    let postmortem_path = cfg.postmortem_path.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "fbcnn_slo_postmortem_{}_{}.json",
            cfg.seed,
            std::process::id()
        ))
    });
    flight.arm_postmortem(&postmortem_path);

    // The burst's fault: while armed, the candidate's canary traffic
    // panics on every sample of every attempt, so each canary request
    // fails hard and the version breaker trips at exactly
    // `canary_min_requests` observations — a deterministic failure
    // count.
    let armed = Arc::new(AtomicBool::new(false));
    let routing_seed = cfg.seed ^ 0x510_CAFE;
    let canary_percent = 50;
    let registry_cfg = RegistryConfig {
        shards: 2,
        routing_seed,
        canary_percent,
        canary_min_requests: 4,
        canary_trip_threshold: 0.5,
        batch: BatchConfig {
            threads: 1,
            cache_capacity: 8,
            ..BatchConfig::default()
        },
        resilience: ResilienceConfig {
            deadline_class: SOAK_CLASS.to_string(),
            ..ResilienceConfig::default()
        },
        sample_hook: {
            let armed = Arc::clone(&armed);
            Some(Arc::new(move |id: u64, _attempt: u32, _sample: usize| {
                if armed.load(Ordering::Relaxed)
                    && crate::registry::is_canary(routing_seed, canary_percent, id)
                {
                    panic!("chaos: slo candidate crashes on canary traffic");
                }
            }))
        },
        jitter: Some(Arc::new(NoJitter)),
        flight: Some(Arc::clone(&flight)),
        supervise: None,
    };
    let registry =
        ModelRegistry::new(ModelArtifact::from_engine(&pristine, 1, "v1"), registry_cfg)?;

    let mut verdicts = Vec::new();
    let mut outcomes: Vec<RegistryOutcome> = Vec::new();
    let mut failed_ids = Vec::new();
    let mut expected_failed_ids: Option<Vec<u64>> = None;
    let mut window = 0u64;

    let drive = |registry: &ModelRegistry,
                 ids: &[u64],
                 outcomes: &mut Vec<RegistryOutcome>,
                 failed_ids: &mut Vec<u64>,
                 expected: &mut Option<Vec<u64>>| {
        for &id in ids {
            let input = crate::synth_input(input_shape, cfg.seed ^ id.wrapping_mul(41));
            let o = registry.handle(&BatchRequest::new(id, input));
            if o.outcome.outcome.result.is_err() {
                failed_ids.push(id);
            }
            if o.rolled_back {
                // The fault dies with the version that carried it, and
                // the postmortem freezes exactly the failures seen so
                // far (including this request's own record).
                armed.store(false, Ordering::Relaxed);
                *expected = Some(failed_ids.clone());
            }
            outcomes.push(o);
        }
    };

    // --- calm --------------------------------------------------------
    for _ in 0..cfg.calm_windows.max(1) {
        clock.set(window * width);
        let ids: Vec<u64> = (0..cfg.requests_per_window.max(1))
            .map(|i| window * 10_000 + i as u64)
            .collect();
        drive(
            &registry,
            &ids,
            &mut outcomes,
            &mut failed_ids,
            &mut expected_failed_ids,
        );
        let report = policy.evaluate(&windowed);
        verdicts.push(WindowVerdict {
            window,
            phase: "calm".to_string(),
            status: report.status,
            violations: report.violations.iter().map(|v| v.render()).collect(),
            requests: ids.len(),
        });
        window += 1;
    }

    // --- burst -------------------------------------------------------
    clock.set(window * width);
    registry.deploy(ModelArtifact::from_engine(&pristine, 2, "v2-crashy"))?;
    armed.store(true, Ordering::Relaxed);
    // Pick burst ids until enough canaries are in the mix to guarantee
    // the trip (the breaker needs `canary_min_requests` observations).
    let mut burst_ids = Vec::new();
    let mut canaries = 0usize;
    let mut id = 500_000u64;
    while burst_ids.len() < cfg.burst_requests.max(8) || canaries < 6 {
        if registry.is_canary_id(id) {
            canaries += 1;
        }
        burst_ids.push(id);
        id += 1;
    }
    drive(
        &registry,
        &burst_ids,
        &mut outcomes,
        &mut failed_ids,
        &mut expected_failed_ids,
    );
    armed.store(false, Ordering::Relaxed);
    if expected_failed_ids.is_none() {
        reconcile_errors.push("the crashy canary never rolled the rollout back".to_string());
    }

    let chaos = if cfg.with_chaos {
        let chaos_report = run_chaos_into(&ChaosConfig::quick(cfg.seed), windowed.total());
        if let Err(e) = chaos_report.reconcile() {
            reconcile_errors.push(format!("chaos report failed to reconcile: {e}"));
        }
        Some(ChaosTotals {
            requests: chaos_report.requests_total as u64,
            ok: chaos_report.ok_total as u64,
            failed: chaos_report.failed_total as u64,
        })
    } else {
        None
    };

    let report = policy.evaluate(&windowed);
    // A Critical verdict with the dump still armed (no canary rollback
    // fired it) is the SLO monitor's own postmortem moment.
    if report.status == HealthStatus::Critical {
        match flight.trigger_postmortem("slo_critical") {
            Some(Ok(_)) => {
                fbcnn_telemetry::counter_add("postmortem_dumps", &[("trigger", "slo_critical")], 1);
            }
            Some(Err(e)) => {
                fbcnn_telemetry::counter_add(
                    "postmortem_errors",
                    &[("trigger", "slo_critical")],
                    1,
                );
                reconcile_errors.push(format!("slo_critical postmortem failed: {e}"));
            }
            None => {}
        }
    }
    verdicts.push(WindowVerdict {
        window,
        phase: "burst".to_string(),
        status: report.status,
        violations: report.violations.iter().map(|v| v.render()).collect(),
        requests: burst_ids.len(),
    });
    window += 1;

    // --- recovery ----------------------------------------------------
    for _ in 0..cfg.recovery_windows.max(1) {
        clock.set(window * width);
        let ids: Vec<u64> = (0..cfg.requests_per_window.max(1))
            .map(|i| window * 10_000 + i as u64)
            .collect();
        drive(
            &registry,
            &ids,
            &mut outcomes,
            &mut failed_ids,
            &mut expected_failed_ids,
        );
        let report = policy.evaluate(&windowed);
        verdicts.push(WindowVerdict {
            window,
            phase: "recovery".to_string(),
            status: report.status,
            violations: report.violations.iter().map(|v| v.render()).collect(),
            requests: ids.len(),
        });
        window += 1;
    }

    // --- exact accounting -------------------------------------------
    let windows = window as usize;
    let span = windows;
    let registry_ok = outcomes
        .iter()
        .filter(|o| o.outcome.outcome.result.is_ok())
        .count() as u64;
    let registry_failed = outcomes.len() as u64 - registry_ok;
    // The registry's own per-version fold must agree with the outcomes.
    let fold: u64 = registry
        .version_counters()
        .values()
        .map(|c| c.requests)
        .sum();
    if fold != outcomes.len() as u64 {
        reconcile_errors.push(format!(
            "version counters fold to {fold} requests, the soak drove {}",
            outcomes.len()
        ));
    }

    let total = windowed.total();
    let windowed_totals: Vec<ClassTotals> = cfg
        .classes()
        .into_iter()
        .map(|class| {
            let (ok, failed) = windowed_class_counts(&windowed, span, &class);
            ClassTotals { class, ok, failed }
        })
        .collect();
    let total_totals: Vec<ClassTotals> = cfg
        .classes()
        .into_iter()
        .map(|class| {
            let (ok, failed) = total_class_counts(total, &class);
            ClassTotals { class, ok, failed }
        })
        .collect();

    // --- quantile acceptance ----------------------------------------
    let mut latencies: Vec<u64> = outcomes
        .iter()
        .filter(|o| o.outcome.attempts > 0)
        .map(|o| o.outcome.elapsed_ns)
        .collect();
    latencies.sort_unstable();
    let mut quantiles = Vec::new();
    if let Some(h) =
        windowed.windowed_histogram(span, REQUEST_LATENCY_METRIC, &[("class", SOAK_CLASS)])
    {
        if h.count != latencies.len() as u64 {
            reconcile_errors.push(format!(
                "latency histogram holds {} values, the soak measured {}",
                h.count,
                latencies.len()
            ));
        }
        let min_bound = h.bounds.first().copied().unwrap_or(0.0);
        let max_bound = h.bounds.last().copied().unwrap_or(f64::MAX);
        for &(name, q) in STANDARD_QUANTILES {
            let estimate =
                fbcnn_telemetry::histogram_quantile(&h.bounds, &h.counts, q).unwrap_or(f64::NAN);
            let exact = exact_quantile(&latencies, q).unwrap_or(0);
            quantiles.push(QuantileCheck {
                name: name.to_string(),
                q,
                estimate_ns: estimate,
                exact_ns: exact,
                within_bound: estimate.is_finite()
                    && estimate_within_bound(estimate, exact, min_bound, max_bound),
            });
        }
    } else {
        reconcile_errors.push("no windowed latency histogram for the soak class".to_string());
    }

    // --- the postmortem dump ----------------------------------------
    let (postmortem_trigger, postmortem_failed_ids, postmortem_records, postmortem_degraded) =
        match io::read_flight_log(&postmortem_path) {
            Ok(log) => {
                let failed: Vec<u64> = log.failed().iter().map(|r| r.id).collect();
                let degraded = log.degraded().len() as u64;
                (
                    log.trigger.clone(),
                    failed,
                    log.records.len() as u64,
                    degraded,
                )
            }
            Err(e) => {
                reconcile_errors.push(format!("postmortem dump unreadable: {e}"));
                (String::new(), Vec::new(), 0, 0)
            }
        };

    let report = SloSoakReport {
        seed: cfg.seed,
        window_width_ns: width,
        windows,
        evicted_windows: windowed.evicted_windows(),
        error_budget: policy.error_budget,
        fast_windows: policy.fast_windows,
        slow_windows: policy.slow_windows,
        registry_requests: outcomes.len() as u64,
        registry_ok,
        registry_failed,
        windowed: windowed_totals,
        totals: total_totals,
        chaos,
        quantiles,
        verdicts,
        postmortem_path: Some(postmortem_path),
        postmortem_trigger,
        postmortem_failed_ids,
        expected_failed_ids: expected_failed_ids.unwrap_or_default(),
        postmortem_records,
        postmortem_degraded,
        reconcile_errors,
        elapsed_ns: start.elapsed().as_nanos() as u64,
    };
    Ok((report, windowed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantile_matches_rank_rule() {
        let sorted = [10, 20, 30, 40];
        assert_eq!(exact_quantile(&sorted, 0.5), Some(20));
        assert_eq!(exact_quantile(&sorted, 0.75), Some(30));
        assert_eq!(exact_quantile(&sorted, 0.99), Some(40));
        assert_eq!(exact_quantile(&sorted, 0.0), Some(10));
        assert_eq!(exact_quantile(&[], 0.5), None);
    }

    #[test]
    fn estimate_bound_handles_edges() {
        assert!(estimate_within_bound(256.0, 100, 1.0, 1024.0));
        assert!(!estimate_within_bound(1024.0, 100, 1.0, 4096.0));
        // Overflow rank clamps to the top bound.
        assert!(estimate_within_bound(1024.0, 5000, 1.0, 1024.0));
        // Tiny exact values clamp to the smallest bucket edge.
        assert!(estimate_within_bound(1.0, 0, 1.0, 1024.0));
    }

    #[test]
    fn quick_soak_walks_and_reconciles() {
        // No embedded chaos here: lib tests share the process (and the
        // globally installed recorder), and foreign traffic under the
        // `"default"` class would break the chaos campaign's exact
        // reconciliation. The bench binary runs the chaos-inclusive
        // soak in a process of its own.
        let cfg = SloSoakConfig {
            with_chaos: false,
            ..SloSoakConfig::quick(0x510)
        };
        let report = run_slo_soak(&cfg).unwrap();
        if let Err(e) = report.reconcile() {
            panic!("soak failed to reconcile: {e}\nwalk: {:?}", report.verdicts);
        }
        assert_eq!(report.postmortem_trigger, "canary_spike");
        assert!(report.registry_failed >= 4);
        if let Some(p) = &report.postmortem_path {
            let _ = std::fs::remove_file(p);
        }
    }
}
