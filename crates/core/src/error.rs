//! Typed errors for engine construction and inference.
//!
//! The robustness contract (`ROADMAP` — graceful degradation) is that a
//! fault anywhere in the skipping pipeline surfaces as one of these
//! values, never as a process abort: construction problems become
//! [`EngineError`], inference problems become [`InferenceError`], and
//! recoverable anomalies are absorbed by
//! [`crate::Engine::predict_robust`] and reported in its
//! [`crate::RobustReport`].

use fbcnn_bayes::BayesError;
use fbcnn_nn::{NnError, NumericFault};
use fbcnn_predictor::{PredictorError, ThresholdError};
use std::fmt;

/// Why an [`crate::Engine`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The calibration dataset (Algorithm 1's `D`) is empty.
    EmptyDataset,
    /// A configuration field is outside its legal range.
    InvalidConfig {
        /// Which constraint failed and how.
        reason: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyDataset => write!(f, "calibration dataset is empty"),
            EngineError::InvalidConfig { reason } => {
                write!(f, "invalid engine config: {reason}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Why an inference run failed outright.
///
/// [`crate::Engine::predict_robust`] returns one of these only when no
/// healthy prediction could be produced at all; recoverable trouble is
/// instead degraded around and reported in [`crate::RobustReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum InferenceError {
    /// The input tensor does not fit the network.
    Input(NnError),
    /// The threshold set is structurally inconsistent with the network
    /// (truncated, misaddressed or oversized — the shape a poisoned
    /// artifact takes).
    Thresholds(ThresholdError),
    /// An activation failed its numeric health check and the guard policy
    /// forbids repair or fallback.
    Numeric(NumericFault),
    /// The Bayesian layer rejected the run (bad masks, graph violation,
    /// or summary over malformed rows).
    Bayes(BayesError),
    /// Every sample — fast and fallback alike — was lost.
    AllSamplesFailed {
        /// Samples requested.
        requested: usize,
    },
    /// The request's deadline (or cancellation) fired before even one
    /// sample completed. A deadline that fires *after* at least one
    /// sample instead returns `Ok` with the partial-T mean, flagged
    /// [`crate::DegradedMode::PartialSamples`] — expiry is only an error
    /// when there is nothing valid to return.
    Expired {
        /// Samples that completed before expiry (always 0 in the error
        /// form; carried for symmetry with the report).
        samples_completed: usize,
    },
    /// Admission control shed the request: the batch exceeded the bounded
    /// queue's capacity and the shed policy rejected this request rather
    /// than degrade it.
    Overloaded {
        /// Requests submitted in the offered batch.
        queue_depth: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The worker serving this request hung past the watchdog timeout on
    /// every attempt; the work unit was requeued `requeues` times before
    /// the batch gave up on it.
    WorkerHung {
        /// Times the watchdog requeued the unit before abandoning it.
        requeues: u32,
    },
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceError::Input(e) => write!(f, "bad input: {e}"),
            InferenceError::Thresholds(e) => write!(f, "bad thresholds: {e}"),
            InferenceError::Numeric(e) => write!(f, "numeric fault: {e}"),
            InferenceError::Bayes(e) => write!(f, "bayesian layer error: {e}"),
            InferenceError::AllSamplesFailed { requested } => {
                write!(f, "all {requested} samples failed")
            }
            InferenceError::Expired { samples_completed } => write!(
                f,
                "deadline expired with {samples_completed} samples completed"
            ),
            InferenceError::Overloaded {
                queue_depth,
                capacity,
            } => write!(
                f,
                "request shed: batch depth {queue_depth} exceeds queue capacity {capacity}"
            ),
            InferenceError::WorkerHung { requeues } => {
                write!(f, "worker hung; unit requeued {requeues} times, abandoned")
            }
        }
    }
}

impl std::error::Error for InferenceError {}

impl From<NnError> for InferenceError {
    fn from(e: NnError) -> Self {
        InferenceError::Input(e)
    }
}

impl From<ThresholdError> for InferenceError {
    fn from(e: ThresholdError) -> Self {
        InferenceError::Thresholds(e)
    }
}

impl From<NumericFault> for InferenceError {
    fn from(e: NumericFault) -> Self {
        InferenceError::Numeric(e)
    }
}

impl From<PredictorError> for InferenceError {
    fn from(e: PredictorError) -> Self {
        match e {
            PredictorError::Input(e) => InferenceError::Input(e),
            PredictorError::Thresholds(e) => InferenceError::Thresholds(e),
        }
    }
}

impl From<BayesError> for InferenceError {
    fn from(e: BayesError) -> Self {
        match e {
            // Flatten the shared variants so callers match one place.
            BayesError::Graph(e) => InferenceError::Input(e),
            BayesError::Numeric(e) => InferenceError::Numeric(e),
            BayesError::AllSamplesFailed { requested } => {
                InferenceError::AllSamplesFailed { requested }
            }
            BayesError::Expired => InferenceError::Expired {
                samples_completed: 0,
            },
            other => InferenceError::Bayes(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<Box<dyn std::error::Error>> = vec![
            Box::new(EngineError::EmptyDataset),
            Box::new(EngineError::InvalidConfig {
                reason: "samples = 0".into(),
            }),
            Box::new(InferenceError::Input(NnError::EmptyGraph)),
            Box::new(InferenceError::Thresholds(ThresholdError::NotAConvNode {
                node: 0,
            })),
            Box::new(InferenceError::Numeric(NumericFault::NotFinite {
                node: 1,
                index: 2,
            })),
            Box::new(InferenceError::Bayes(BayesError::NoSamples)),
            Box::new(InferenceError::AllSamplesFailed { requested: 4 }),
            Box::new(InferenceError::Expired {
                samples_completed: 0,
            }),
            Box::new(InferenceError::Overloaded {
                queue_depth: 12,
                capacity: 8,
            }),
            Box::new(InferenceError::WorkerHung { requeues: 2 }),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn bayes_conversions_flatten_shared_variants() {
        let e: InferenceError = BayesError::Graph(NnError::EmptyGraph).into();
        assert_eq!(e, InferenceError::Input(NnError::EmptyGraph));
        let e: InferenceError = BayesError::AllSamplesFailed { requested: 9 }.into();
        assert_eq!(e, InferenceError::AllSamplesFailed { requested: 9 });
        let e: InferenceError = BayesError::NoSamples.into();
        assert_eq!(e, InferenceError::Bayes(BayesError::NoSamples));
        let e: InferenceError = BayesError::Expired.into();
        assert_eq!(
            e,
            InferenceError::Expired {
                samples_completed: 0
            }
        );
    }
}
