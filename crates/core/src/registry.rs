//! Sharded model registry with drain-free hot-swap and canary-gated
//! rollout.
//!
//! A [`ModelRegistry`] holds N independent [`ResilientBatchEngine`]
//! replicas (shard-per-core; requests route to shards by a seeded hash of
//! their id), all serving the same [`ModelArtifact`] version. Deploying a
//! new version stages one candidate engine per shard and serves it to a
//! deterministic canary fraction of traffic while the stable version
//! keeps serving everything else. The canary verdict is fed by the same
//! signals the robust engine already produces: a request whose result is
//! a typed error, or whose run degraded to
//! [`DegradedMode::FullFallback`] (the engine's canary sample caught the
//! new version's thresholds lying), counts against the candidate. When
//! the bad fraction crosses the version-breaker threshold, the rollout is
//! rolled back on **all** shards at once; when the operator promotes
//! instead, each shard's slot swaps its `Arc` atomically — in-flight
//! requests finish on the engine they started with, new requests see the
//! new version, and nothing ever drains or aborts.
//!
//! Request accounting is exact: every request increments the
//! `version_requests{version}` telemetry counter and the registry's own
//! per-version [`VersionCounters`], and
//! [`RegistryReport::reconcile`] proves the two folds agree with the
//! per-request outcomes. See `docs/REGISTRY.md` for the state machine.

use crate::artifact::{ArtifactError, ModelArtifact};
use crate::batch::{BatchConfig, BatchEngine, BatchRequest};
use crate::engine::{DegradedMode, Engine};
use crate::error::EngineError;
use crate::resilience::{
    error_reason_name, BreakerState, CircuitBreaker, Jitter, RequestSampleHook, ResilienceConfig,
    ResilientBatchEngine, ResilientOutcome,
};
use crate::supervise::{
    mix64, shard_route, OutcomeSignal, RouteDecision, SuperviseConfig, Supervisor,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Knobs of a [`ModelRegistry`].
#[derive(Clone)]
pub struct RegistryConfig {
    /// Number of engine replicas (shard-per-core; ≥ 1).
    pub shards: usize,
    /// Seed of the id → shard route and the canary split. Two registries
    /// with the same seed route identically.
    pub routing_seed: u64,
    /// Percent of traffic (per request id, deterministic) served by an
    /// in-flight rollout's candidate version, in `1..=100`.
    pub canary_percent: u32,
    /// Canary requests observed before the version breaker may bind.
    pub canary_min_requests: u64,
    /// Bad-canary fraction (failures + full-fallback trips over observed)
    /// at which the rollout auto-rolls back, in `(0, 1]`.
    pub canary_trip_threshold: f64,
    /// Per-shard batch-engine knobs.
    pub batch: BatchConfig,
    /// Per-shard resilience knobs (each shard gets its own breaker,
    /// which survives version swaps on that shard).
    pub resilience: ResilienceConfig,
    /// Optional per-(request, attempt, sample) hook threaded into every
    /// shard engine — the chaos harness's fault-injection point.
    pub sample_hook: Option<RequestSampleHook>,
    /// Optional jitter override for retry backoff (tests pin
    /// [`crate::NoJitter`]).
    pub jitter: Option<Arc<dyn Jitter>>,
    /// Optional flight recorder. The registry records one *enriched*
    /// [`crate::FlightRecord`] per handled request (version, shard,
    /// canary and rollback routing filled in); shard engines stay
    /// recorder-free so nothing records twice. A canary-spike rollback
    /// fires the recorder's armed postmortem dump.
    pub flight: Option<Arc<crate::FlightRecorder>>,
    /// Optional shard health supervision (see [`crate::supervise`]).
    /// `None` — the default — keeps today's behavior: every shard stays
    /// in the routing ring forever. `Some` attaches a [`Supervisor`]
    /// that quarantines sick shards, fails their traffic over, and
    /// rebuilds them from the retained artifact.
    pub supervise: Option<SuperviseConfig>,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            shards: 2,
            routing_seed: 0x5EED_0F5A,
            canary_percent: 20,
            canary_min_requests: 8,
            canary_trip_threshold: 0.5,
            batch: BatchConfig::default(),
            resilience: ResilienceConfig::default(),
            sample_hook: None,
            jitter: None,
            flight: None,
            supervise: None,
        }
    }
}

impl fmt::Debug for RegistryConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegistryConfig")
            .field("shards", &self.shards)
            .field("routing_seed", &self.routing_seed)
            .field("canary_percent", &self.canary_percent)
            .field("canary_min_requests", &self.canary_min_requests)
            .field("canary_trip_threshold", &self.canary_trip_threshold)
            .field("batch", &self.batch)
            .field("resilience", &self.resilience)
            .field("sample_hook", &self.sample_hook.is_some())
            .field("jitter", &self.jitter.is_some())
            .field("flight", &self.flight.is_some())
            .field("supervise", &self.supervise)
            .finish()
    }
}

impl RegistryConfig {
    /// Checks every field against its legal range.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), EngineError> {
        let fail = |reason: String| Err(EngineError::InvalidConfig { reason });
        if self.shards == 0 {
            return fail("registry shards must be > 0".into());
        }
        if !(1..=100).contains(&self.canary_percent) {
            return fail(format!(
                "canary_percent {} out of 1..=100",
                self.canary_percent
            ));
        }
        if self.canary_min_requests == 0 {
            return fail("canary_min_requests must be > 0".into());
        }
        if !(self.canary_trip_threshold > 0.0 && self.canary_trip_threshold <= 1.0) {
            return fail(format!(
                "canary_trip_threshold {} out of (0, 1]",
                self.canary_trip_threshold
            ));
        }
        if let Some(supervise) = &self.supervise {
            supervise.validate()?;
        }
        Ok(())
    }
}

/// Exact per-version request accounting, kept by the registry alongside
/// the `version_requests{version}` telemetry counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VersionCounters {
    /// Requests routed to this version.
    pub requests: u64,
    /// Requests that produced a prediction.
    pub ok: u64,
    /// Requests that ended in a typed error.
    pub failed: u64,
    /// Requests served as canaries of an in-flight rollout.
    pub canary: u64,
}

/// A snapshot of an in-flight rollout's canary verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloutStatus {
    /// Candidate model version.
    pub version: u64,
    /// Candidate artifact label.
    pub label: String,
    /// Canary requests observed so far.
    pub observed: u64,
    /// Canary requests that ended in a typed error.
    pub failures: u64,
    /// Canary requests whose run degraded to full fallback (the engine's
    /// canary sample caught divergent thresholds).
    pub canary_trips: u64,
}

/// One request's outcome through the registry.
#[derive(Debug)]
pub struct RegistryOutcome {
    /// Shard the request was served by (equals the primary route unless
    /// supervision failed it over).
    pub shard: usize,
    /// The mod-hash primary shard of the request id.
    pub primary_shard: usize,
    /// Whether supervision served the request away from a sick primary.
    pub failed_over: bool,
    /// Whether the request probed a Rebuilding primary.
    pub probe: bool,
    /// Model version that served the request.
    pub version: u64,
    /// Whether the request was a canary of an in-flight rollout.
    pub canary: bool,
    /// Whether this request's canary verdict tripped the version breaker
    /// (the rollout rolled back on all shards as a result).
    pub rolled_back: bool,
    /// The resilience-layer outcome.
    pub outcome: ResilientOutcome,
}

/// The outcome of one [`ModelRegistry::run_batch`] call.
#[derive(Debug)]
pub struct RegistryReport {
    /// Per-request outcomes, in offered order.
    pub outcomes: Vec<RegistryOutcome>,
    /// Per-version accounting delta over exactly this batch.
    pub version_delta: BTreeMap<u64, VersionCounters>,
    /// Wall-clock of the whole call, nanoseconds.
    pub elapsed_ns: u64,
}

impl RegistryReport {
    /// Checks that the registry's per-version counters moved by exactly
    /// the fold of this batch's outcomes — the version half of the
    /// "counters reconcile exactly" criterion.
    ///
    /// # Errors
    ///
    /// Returns the first mismatching version/quantity as a message.
    pub fn reconcile(&self) -> Result<(), String> {
        let mut fold: BTreeMap<u64, VersionCounters> = BTreeMap::new();
        for o in &self.outcomes {
            let c = fold.entry(o.version).or_default();
            c.requests += 1;
            if o.outcome.outcome.result.is_ok() {
                c.ok += 1;
            } else {
                c.failed += 1;
            }
            if o.canary {
                c.canary += 1;
            }
        }
        if fold != self.version_delta {
            return Err(format!(
                "version counters moved by {:?}, outcomes fold to {:?}",
                self.version_delta, fold
            ));
        }
        Ok(())
    }
}

/// One model version bound to one shard's serving stack.
struct VersionedEngine {
    version: u64,
    label: String,
    engine: ResilientBatchEngine,
}

struct Shard {
    slot: RwLock<Arc<VersionedEngine>>,
    /// The shard's breaker outlives version swaps (a shard's failure
    /// history indicts the shard, not the version) but NOT rebuilds: a
    /// rebuilt shard gets a fresh breaker, which is the only cure for a
    /// jammed one.
    breaker: RwLock<Arc<CircuitBreaker>>,
}

impl Shard {
    fn breaker(&self) -> Arc<CircuitBreaker> {
        Arc::clone(&self.breaker.read().unwrap_or_else(PoisonError::into_inner))
    }
}

struct Rollout {
    version: u64,
    label: String,
    /// The candidate artifact, retained so a promote can pin it as the
    /// registry's rebuild source of truth.
    artifact: ModelArtifact,
    candidates: Vec<Arc<VersionedEngine>>,
    observed: u64,
    failures: u64,
    canary_trips: u64,
}

/// The sharded serving registry; see the module docs.
pub struct ModelRegistry {
    cfg: RegistryConfig,
    shards: Vec<Shard>,
    /// The validated artifact the active version booted from — the
    /// pinned source of truth for shard rebuilds (and future retrain
    /// pipelines). Updated on promote, never on deploy.
    artifact: Mutex<ModelArtifact>,
    supervisor: Option<Arc<Supervisor>>,
    rollout: Mutex<Option<Rollout>>,
    accounting: Mutex<BTreeMap<u64, VersionCounters>>,
    deploys: AtomicU64,
    promotions: AtomicU64,
    rollbacks: AtomicU64,
}

impl fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("shards", &self.shards.len())
            .field("active_version", &self.active_version())
            .field("rollout", &self.rollout_status())
            .finish()
    }
}

const CANARY_SALT: u64 = 0xCA_4A_12;

/// The deterministic canary predicate, shared by the registry and the
/// chaos harness (which needs it *before* a registry exists, to key
/// fault hooks off the same id split).
pub(crate) fn is_canary(routing_seed: u64, percent: u32, id: u64) -> bool {
    mix64(id ^ routing_seed ^ CANARY_SALT) % 100 < u64::from(percent)
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ModelRegistry {
    /// Boots a registry with `artifact` active on every shard.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Config`] for an invalid registry configuration,
    /// plus everything [`ModelArtifact::validate`] reports.
    pub fn new(artifact: ModelArtifact, cfg: RegistryConfig) -> Result<Self, ArtifactError> {
        cfg.validate().map_err(ArtifactError::Config)?;
        artifact.validate()?;
        let version = artifact.model_version;
        let label = artifact.label.clone();
        let retained = artifact.clone();
        let engine = artifact.into_engine()?;
        let shards: Vec<Shard> = (0..cfg.shards)
            .map(|_| {
                let breaker = Arc::new(CircuitBreaker::new(cfg.resilience.breaker));
                let ve = build_versioned(&cfg, version, &label, engine.clone(), &breaker);
                Shard {
                    slot: RwLock::new(ve),
                    breaker: RwLock::new(breaker),
                }
            })
            .collect();
        let supervisor = match &cfg.supervise {
            Some(sup_cfg) => Some(Arc::new(
                Supervisor::new(shards.len(), cfg.routing_seed, sup_cfg.clone())
                    .map_err(ArtifactError::Config)?,
            )),
            None => None,
        };
        Ok(Self {
            cfg,
            shards,
            artifact: Mutex::new(retained),
            supervisor,
            rollout: Mutex::new(None),
            accounting: Mutex::new(BTreeMap::new()),
            deploys: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
        })
    }

    /// The validated artifact the active version booted from — the
    /// pinned rebuild source. Follows promotes: after a rollout is
    /// promoted, this is the promoted candidate's artifact.
    pub fn retained_artifact(&self) -> ModelArtifact {
        lock(&self.artifact).clone()
    }

    /// The attached shard health supervisor, when supervision is on.
    pub fn supervisor(&self) -> Option<&Arc<Supervisor>> {
        self.supervisor.as_ref()
    }

    /// The registry configuration.
    pub fn config(&self) -> &RegistryConfig {
        &self.cfg
    }

    /// The model version currently active on the stable slots.
    pub fn active_version(&self) -> u64 {
        self.shards.first().map_or(0, |s| {
            s.slot
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .version
        })
    }

    /// The artifact label of the active version.
    pub fn active_label(&self) -> String {
        self.shards.first().map_or_else(String::new, |s| {
            s.slot
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .label
                .clone()
        })
    }

    /// The shard a request id primarily routes to (supervision failover
    /// may serve it elsewhere; see [`ModelRegistry::handle_classed`]).
    pub fn shard_of(&self, id: u64) -> usize {
        shard_route(self.cfg.routing_seed, self.shards.len(), id)
    }

    /// Whether a request id falls in the deterministic canary fraction
    /// (independent of whether a rollout is in flight).
    pub fn is_canary_id(&self, id: u64) -> bool {
        is_canary(self.cfg.routing_seed, self.cfg.canary_percent, id)
    }

    /// Stages `artifact` as an in-flight rollout: one candidate engine
    /// per shard (sharing that shard's breaker), serving the canary
    /// fraction until [`ModelRegistry::promote`] or an automatic
    /// rollback. A deploy over an existing rollout supersedes it (the
    /// old candidate counts as rolled back, reason `superseded`).
    ///
    /// # Errors
    ///
    /// Everything [`ModelArtifact::validate`] reports, plus
    /// [`ArtifactError::StaleVersion`] when the artifact's version is not
    /// newer than the active one.
    pub fn deploy(&self, artifact: ModelArtifact) -> Result<(), ArtifactError> {
        artifact.validate()?;
        let active = self.active_version();
        if artifact.model_version <= active {
            return Err(ArtifactError::StaleVersion {
                offered: artifact.model_version,
                active,
            });
        }
        let version = artifact.model_version;
        let label = artifact.label.clone();
        let retained = artifact.clone();
        let engine = artifact.into_engine()?;
        let candidates = self
            .shards
            .iter()
            .map(|s| build_versioned(&self.cfg, version, &label, engine.clone(), &s.breaker()))
            .collect();
        let mut slot = lock(&self.rollout);
        if let Some(old) = slot.take() {
            self.note_rollback(old.version, "superseded");
        }
        *slot = Some(Rollout {
            version,
            label,
            artifact: retained,
            candidates,
            observed: 0,
            failures: 0,
            canary_trips: 0,
        });
        drop(slot);
        self.deploys.fetch_add(1, Ordering::Relaxed);
        fbcnn_telemetry::counter_add("swap_deploys", &[], 1);
        Ok(())
    }

    /// Promotes the in-flight rollout: every shard's slot swaps its
    /// `Arc` to the candidate engine (in-flight requests finish on the
    /// engine they started with). Returns the promoted version, or
    /// `None` when no rollout is in flight.
    pub fn promote(&self) -> Option<u64> {
        let rollout = lock(&self.rollout).take()?;
        for (shard, candidate) in self.shards.iter().zip(rollout.candidates) {
            let mut slot = shard.slot.write().unwrap_or_else(PoisonError::into_inner);
            *slot = candidate;
        }
        *lock(&self.artifact) = rollout.artifact;
        self.promotions.fetch_add(1, Ordering::Relaxed);
        let version = rollout.version.to_string();
        fbcnn_telemetry::counter_add("swap_promotions", &[("version", &version)], 1);
        Some(rollout.version)
    }

    /// Manually aborts the in-flight rollout (all shards back to the
    /// stable version for the full traffic). Returns the abandoned
    /// version, or `None` when no rollout is in flight.
    pub fn rollback(&self) -> Option<u64> {
        let rollout = lock(&self.rollout).take()?;
        self.note_rollback(rollout.version, "manual");
        Some(rollout.version)
    }

    /// The in-flight rollout's canary verdict, if any.
    pub fn rollout_status(&self) -> Option<RolloutStatus> {
        lock(&self.rollout).as_ref().map(|r| RolloutStatus {
            version: r.version,
            label: r.label.clone(),
            observed: r.observed,
            failures: r.failures,
            canary_trips: r.canary_trips,
        })
    }

    /// A snapshot of the per-version request accounting.
    pub fn version_counters(&self) -> BTreeMap<u64, VersionCounters> {
        lock(&self.accounting).clone()
    }

    /// Deploys staged since boot.
    pub fn deploys(&self) -> u64 {
        self.deploys.load(Ordering::Relaxed)
    }

    /// Rollouts promoted since boot.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Rollouts rolled back since boot (automatic, manual and
    /// superseded).
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks.load(Ordering::Relaxed)
    }

    /// Serves one request: route to its shard, pick the canary or stable
    /// engine, run under the resilience layer, account exactly, and feed
    /// the canary verdict (which may trip the version breaker and roll
    /// the rollout back on all shards before this call returns).
    pub fn handle(&self, req: &BatchRequest) -> RegistryOutcome {
        self.handle_classed(req, None)
    }

    /// [`ModelRegistry::handle`] under a per-request
    /// [`crate::RequestClass`] — the network serving tier's priced SLO
    /// class. The class's deadline/budget override the resilience config
    /// for this request, and its name becomes the request's telemetry
    /// and flight-record `class` label. `None` behaves exactly like
    /// [`ModelRegistry::handle`].
    pub fn handle_classed(
        &self,
        req: &BatchRequest,
        class: Option<&crate::RequestClass>,
    ) -> RegistryOutcome {
        let decision = match &self.supervisor {
            Some(sup) => sup.route(req.id),
            None => {
                let primary = self.shard_of(req.id);
                RouteDecision {
                    primary,
                    serve: primary,
                    failed_over: false,
                    probe: false,
                }
            }
        };
        let shard_idx = decision.serve;
        let canary_engine = if self.is_canary_id(req.id) {
            lock(&self.rollout)
                .as_ref()
                .map(|r| Arc::clone(&r.candidates[shard_idx]))
        } else {
            None
        };
        let canary = canary_engine.is_some();
        let engine = match canary_engine {
            Some(e) => e,
            None => Arc::clone(
                &self.shards[shard_idx]
                    .slot
                    .read()
                    .unwrap_or_else(PoisonError::into_inner),
            ),
        };
        let outcome = engine.engine.run_request_classed(req, class);
        let ok = outcome.outcome.result.is_ok();
        if let Some(sup) = &self.supervisor {
            let abandoned = matches!(
                &outcome.outcome.result,
                Err(e) if error_reason_name(e) == "worker_hung"
            );
            sup.observe(
                shard_idx,
                OutcomeSignal {
                    ok,
                    expired: outcome.expired,
                    abandoned,
                    probe: decision.probe,
                },
            );
        }
        {
            let mut acc = lock(&self.accounting);
            let c = acc.entry(engine.version).or_default();
            c.requests += 1;
            if ok {
                c.ok += 1;
            } else {
                c.failed += 1;
            }
            if canary {
                c.canary += 1;
            }
        }
        let version_label = engine.version.to_string();
        fbcnn_telemetry::counter_add("version_requests", &[("version", &version_label)], 1);
        let mut rolled_back = false;
        if canary {
            // Only hard signals count against the candidate: a typed
            // error, a full-fallback run (the engine's own canary sample
            // caught the version's thresholds diverging), or a run where
            // *no* sample survived the fast path (the skip-rate ceiling
            // rejecting saturated thresholds sample after sample). A run
            // the breaker forced onto the exact path is excluded — that
            // full fallback indicts the shard's history, not this
            // version. Partial fallback / partial samples are ordinary
            // transient degradation and must not fail a healthy version.
            let failed = !ok;
            let tripped = match &outcome.outcome.result {
                Ok((_, report)) => {
                    !outcome.forced_exact
                        && (report.mode == DegradedMode::FullFallback
                            || (report.fallback_samples > 0
                                && report.fallback_samples
                                    == report.used_samples + report.lost_samples))
                }
                Err(_) => false,
            };
            rolled_back = self.observe_canary(engine.version, failed, tripped);
        }
        if let Some(flight) = &self.cfg.flight {
            let mut record = crate::FlightRecord::from_outcome(
                &outcome,
                class
                    .map(|c| c.name.as_str())
                    .unwrap_or(self.cfg.resilience.deadline_class.as_str()),
            );
            record.version = engine.version;
            record.shard = shard_idx as u64;
            record.canary = canary;
            record.rolled_back = rolled_back;
            record.primary_shard = decision.primary as u64;
            record.failed_over = decision.failed_over;
            record.rebuild_probe = decision.probe;
            flight.record(record);
            // An automatic rollback is exactly the moment operators want
            // the flight log frozen: fire the armed postmortem dump (if
            // any) *after* recording the triggering request, so the dump
            // replays up to and including the verdict that tripped it.
            if rolled_back {
                match flight.trigger_postmortem("canary_spike") {
                    Some(Ok(_)) => {
                        fbcnn_telemetry::counter_add(
                            "postmortem_dumps",
                            &[("trigger", "canary_spike")],
                            1,
                        );
                    }
                    Some(Err(_)) => {
                        fbcnn_telemetry::counter_add(
                            "postmortem_errors",
                            &[("trigger", "canary_spike")],
                            1,
                        );
                    }
                    None => {}
                }
            }
        }
        RegistryOutcome {
            shard: shard_idx,
            primary_shard: decision.primary,
            failed_over: decision.failed_over,
            probe: decision.probe,
            version: engine.version,
            canary,
            rolled_back,
            outcome,
        }
    }

    /// Serves a batch through [`ModelRegistry::handle`] and returns the
    /// outcomes together with the exact per-version accounting delta.
    pub fn run_batch(&self, requests: &[BatchRequest]) -> RegistryReport {
        let start = Instant::now();
        let before = self.version_counters();
        let outcomes: Vec<RegistryOutcome> = requests.iter().map(|r| self.handle(r)).collect();
        let mut version_delta = self.version_counters();
        for (version, counters) in version_delta.iter_mut() {
            if let Some(prev) = before.get(version) {
                counters.requests -= prev.requests;
                counters.ok -= prev.ok;
                counters.failed -= prev.failed;
                counters.canary -= prev.canary;
            }
        }
        version_delta.retain(|_, c| c.requests > 0);
        RegistryReport {
            outcomes,
            version_delta,
            elapsed_ns: start.elapsed().as_nanos() as u64,
        }
    }

    /// Feeds one canary observation; returns whether it tripped the
    /// version breaker (and therefore rolled the rollout back).
    fn observe_canary(&self, version: u64, failed: bool, tripped: bool) -> bool {
        let mut slot = lock(&self.rollout);
        let Some(rollout) = slot.as_mut() else {
            return false; // rollout already resolved by a racing request
        };
        if rollout.version != version {
            return false; // observation for a superseded candidate
        }
        rollout.observed += 1;
        if failed {
            rollout.failures += 1;
        }
        if tripped {
            rollout.canary_trips += 1;
        }
        let bad = rollout.failures + rollout.canary_trips;
        let spike = rollout.observed >= self.cfg.canary_min_requests
            && bad as f64 / rollout.observed as f64 >= self.cfg.canary_trip_threshold;
        if !spike {
            return false;
        }
        if let Some(rolled) = slot.take() {
            drop(slot);
            self.note_rollback(rolled.version, "canary_spike");
        }
        true
    }

    fn note_rollback(&self, version: u64, reason: &str) {
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
        let version = version.to_string();
        fbcnn_telemetry::counter_add(
            "rollback_total",
            &[("reason", reason), ("version", &version)],
            1,
        );
    }

    /// Jams `shard`'s circuit breaker persistently open — the chaos
    /// layer's breaker fault. Only a shard rebuild (which installs a
    /// fresh breaker) cures it.
    pub fn jam_shard_breaker(&self, shard: usize) {
        self.shards[shard].breaker().jam_open();
    }

    /// Whether `shard`'s breaker is currently open or jammed — the
    /// breaker-dwell signal [`Supervisor::tick`] folds.
    pub fn shard_breaker_open(&self, shard: usize) -> bool {
        let breaker = self.shards[shard].breaker();
        breaker.is_jammed() || breaker.state() == BreakerState::Open
    }

    /// Rebuilds `shard` from the retained artifact: re-validate through
    /// the full artifact ladder (a rebuild can never re-admit a poisoned
    /// engine), boot a fresh engine AND a fresh breaker, and swap both
    /// in atomically. In-flight requests finish on the engine they
    /// started with.
    ///
    /// # Errors
    ///
    /// Everything [`ModelArtifact::validate`] /
    /// [`ModelArtifact::into_engine`] report; the sick shard keeps its
    /// old slot on error.
    pub fn rebuild_shard(&self, shard: usize) -> Result<(), ArtifactError> {
        let artifact = self.retained_artifact();
        artifact.validate()?;
        let version = artifact.model_version;
        let label = artifact.label.clone();
        let engine = artifact.into_engine()?;
        let breaker = Arc::new(CircuitBreaker::new(self.cfg.resilience.breaker));
        let ve = build_versioned(&self.cfg, version, &label, engine, &breaker);
        {
            let mut slot = self.shards[shard]
                .slot
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            *slot = ve;
        }
        {
            let mut b = self.shards[shard]
                .breaker
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            *b = breaker;
        }
        Ok(())
    }

    /// One supervision step: fold per-shard breaker state into the
    /// supervisor's dwell signal, close aged windows, then rebuild every
    /// shard the supervisor reports Quarantined and open its probe gate.
    /// Returns the shards rebuilt this tick. No-op without supervision.
    pub fn supervise_tick(&self) -> Vec<usize> {
        let Some(sup) = &self.supervisor else {
            return Vec::new();
        };
        let breaker_open: Vec<bool> = (0..self.shards.len())
            .map(|s| self.shard_breaker_open(s))
            .collect();
        let mut rebuilt = Vec::new();
        for shard in sup.tick(&breaker_open) {
            sup.note_rebuild_attempt();
            if self.rebuild_shard(shard).is_ok() {
                sup.begin_probation(shard);
                rebuilt.push(shard);
            }
        }
        rebuilt
    }

    /// Spawns the background supervisor thread, ticking every `poll`.
    /// Returns `None` when supervision is off. The handle stops and
    /// joins the thread on drop.
    pub fn spawn_supervisor(self: &Arc<Self>, poll: Duration) -> Option<SupervisorHandle> {
        self.supervisor.as_ref()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry = Arc::clone(self);
        let stop = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                registry.supervise_tick();
                std::thread::sleep(poll);
            }
        });
        Some(SupervisorHandle {
            shutdown,
            thread: Some(thread),
        })
    }
}

/// Join handle of the background supervision thread
/// ([`ModelRegistry::spawn_supervisor`]); stops and joins on drop.
pub struct SupervisorHandle {
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl SupervisorHandle {
    /// Stops the supervisor thread and waits for it to exit.
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for SupervisorHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

fn build_versioned(
    cfg: &RegistryConfig,
    version: u64,
    label: &str,
    engine: Engine,
    breaker: &Arc<CircuitBreaker>,
) -> Arc<VersionedEngine> {
    let batch = BatchEngine::new(engine, cfg.batch);
    let mut resilient =
        ResilientBatchEngine::with_breaker(batch, cfg.resilience.clone(), Arc::clone(breaker));
    if let Some(hook) = &cfg.sample_hook {
        resilient = resilient.with_request_sample_hook(Arc::clone(hook));
    }
    if let Some(jitter) = &cfg.jitter {
        resilient = resilient.with_jitter(Arc::clone(jitter));
    }
    Arc::new(VersionedEngine {
        version,
        label: label.to_string(),
        engine: resilient,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::synth_input;
    use fbcnn_nn::models::ModelKind;

    fn tiny_engine(seed: u64) -> Engine {
        Engine::new(EngineConfig {
            samples: 3,
            calibration_samples: 2,
            seed,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        })
    }

    fn tiny_registry_cfg() -> RegistryConfig {
        RegistryConfig {
            shards: 2,
            canary_percent: 50,
            canary_min_requests: 4,
            batch: BatchConfig {
                threads: 1,
                cache_capacity: 4,
                ..BatchConfig::default()
            },
            ..RegistryConfig::default()
        }
    }

    fn requests(engine: &Engine, n: u64) -> Vec<BatchRequest> {
        let shape = engine.network().input_shape();
        (0..n)
            .map(|i| BatchRequest::new(i, synth_input(shape, 7 + (i % 3))))
            .collect()
    }

    #[test]
    fn routing_is_deterministic_and_in_bounds() {
        let engine = tiny_engine(3);
        let artifact = ModelArtifact::from_engine(&engine, 1, "base");
        let registry = ModelRegistry::new(artifact, tiny_registry_cfg()).unwrap();
        for id in 0..200 {
            let s = registry.shard_of(id);
            assert!(s < 2);
            assert_eq!(s, registry.shard_of(id));
            assert_eq!(registry.is_canary_id(id), registry.is_canary_id(id));
        }
        // The canary split is a fraction, not all-or-nothing.
        let canaries = (0..200).filter(|&id| registry.is_canary_id(id)).count();
        assert!((20..180).contains(&canaries), "split {canaries}/200");
    }

    #[test]
    fn healthy_deploy_promotes_and_swaps_all_shards() {
        let engine = tiny_engine(3);
        let artifact = ModelArtifact::from_engine(&engine, 1, "v1");
        let registry = ModelRegistry::new(artifact, tiny_registry_cfg()).unwrap();
        assert_eq!(registry.active_version(), 1);

        registry
            .deploy(ModelArtifact::from_engine(&engine, 2, "v2"))
            .unwrap();
        let report = registry.run_batch(&requests(&engine, 24));
        report.reconcile().unwrap();
        // Both versions served traffic during the rollout.
        assert!(report.version_delta.contains_key(&1));
        assert!(report.version_delta.contains_key(&2));
        assert!(
            report
                .outcomes
                .iter()
                .all(|o| o.outcome.outcome.result.is_ok()),
            "healthy rollout must not fail requests"
        );
        assert!(registry.rollout_status().is_some(), "no spike, no rollback");

        assert_eq!(registry.promote(), Some(2));
        assert_eq!(registry.active_version(), 2);
        let after = registry.run_batch(&requests(&engine, 8));
        after.reconcile().unwrap();
        assert_eq!(after.version_delta.keys().copied().collect::<Vec<_>>(), [2]);
    }

    #[test]
    fn poisoned_canary_rolls_back_automatically() {
        let _quiet = crate::chaos::SilencedChaosPanics::install();
        let engine = tiny_engine(3);
        let artifact = ModelArtifact::from_engine(&engine, 1, "v1");

        // A deploy that passes every load-time screen but crashes on the
        // traffic it serves. While the rollout is in flight only the
        // candidate serves canary ids, so arming the hook on exactly
        // those ids models a version-correlated production fault.
        let armed = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut cfg = tiny_registry_cfg();
        let (seed, percent) = (cfg.routing_seed, cfg.canary_percent);
        let hook_armed = Arc::clone(&armed);
        cfg.sample_hook = Some(Arc::new(move |id, _attempt, _sample| {
            if hook_armed.load(Ordering::Relaxed) && is_canary(seed, percent, id) {
                panic!("chaos: candidate crashes on every sample it serves");
            }
        }));
        let registry = ModelRegistry::new(artifact, cfg).unwrap();

        registry
            .deploy(ModelArtifact::from_engine(&engine, 2, "v2-crashy"))
            .unwrap();
        armed.store(true, Ordering::Relaxed);

        let shape = engine.network().input_shape();
        let mut outcomes = Vec::new();
        for id in 0..64u64 {
            let o = registry.handle(&BatchRequest::new(id, synth_input(shape, 7 + id % 3)));
            let rolled = o.rolled_back;
            outcomes.push(o);
            if rolled {
                armed.store(false, Ordering::Relaxed);
                break;
            }
        }
        assert!(
            outcomes.iter().any(|o| o.rolled_back),
            "canary spike must trip the version breaker"
        );
        assert!(registry.rollout_status().is_none(), "rollout still alive");
        assert_eq!(registry.rollbacks(), 1);
        assert_eq!(registry.active_version(), 1);
        assert_eq!(registry.promote(), None);
        // Every failure was a canary on the candidate; stable traffic
        // never lost a request.
        assert!(outcomes
            .iter()
            .filter(|o| o.outcome.outcome.result.is_err())
            .all(|o| o.canary && o.version == 2));
        assert!(outcomes.iter().filter(|o| o.version == 1).all(|o| o
            .outcome
            .outcome
            .result
            .is_ok()));

        // After the rollback the registry serves everything, including
        // former canary ids, healthily on the stable version.
        let after = registry.run_batch(&requests(&engine, 8));
        after.reconcile().unwrap();
        assert_eq!(after.version_delta.keys().copied().collect::<Vec<_>>(), [1]);
        assert!(after
            .outcomes
            .iter()
            .all(|o| o.outcome.outcome.result.is_ok()));
    }

    #[test]
    fn stale_and_damaged_deploys_are_refused() {
        let engine = tiny_engine(3);
        let artifact = ModelArtifact::from_engine(&engine, 3, "v3");
        let registry = ModelRegistry::new(artifact.clone(), tiny_registry_cfg()).unwrap();
        match registry.deploy(ModelArtifact::from_engine(&engine, 3, "same")) {
            Err(ArtifactError::StaleVersion {
                offered: 3,
                active: 3,
            }) => {}
            other => panic!("expected stale version, got {other:?}"),
        }
        let mut damaged = ModelArtifact::from_engine(&engine, 4, "bad");
        damaged.digest ^= 1;
        assert!(matches!(
            registry.deploy(damaged),
            Err(ArtifactError::Digest { .. })
        ));
        assert_eq!(registry.deploys(), 0);
    }

    #[test]
    fn supervised_registry_quarantines_rebuilds_and_readmits() {
        use crate::faults::FaultInjector;
        use crate::supervise::{lock_gate, ShardHealth, SupervisorGate};
        let _quiet = crate::chaos::SilencedChaosPanics::install();
        let engine = tiny_engine(3);
        let artifact = ModelArtifact::from_engine(&engine, 1, "v1");

        let clock = Arc::new(fbcnn_telemetry::ManualClock::new());
        let mut cfg = tiny_registry_cfg();
        cfg.supervise = Some(SuperviseConfig {
            clock: Arc::clone(&clock) as Arc<dyn fbcnn_telemetry::Clock>,
            window_ns: 100,
            min_observations: 4,
            suspect_strikes: 2,
            probe_requests: 3,
            probe_max_failures: 0,
            ..SuperviseConfig::default()
        });
        let target = 0usize;
        let armed = Arc::new(AtomicBool::new(false));
        let gate: SupervisorGate = Arc::new(Mutex::new(None));
        cfg.sample_hook = Some(FaultInjector::shard_panic_hook(
            cfg.routing_seed,
            cfg.shards,
            target,
            Arc::clone(&armed),
            Arc::clone(&gate),
        ));
        let registry = ModelRegistry::new(artifact, cfg).unwrap();
        let sup = Arc::clone(registry.supervisor().expect("supervision on"));
        *lock_gate(&gate) = Some(Arc::clone(&sup));

        let shape = engine.network().input_shape();
        let on_target: Vec<u64> = (0..400)
            .filter(|&id| registry.shard_of(id) == target)
            .take(12)
            .collect();
        assert!(on_target.len() >= 10, "need traffic on the poisoned shard");

        // Two bad windows of poisoned traffic → Quarantined.
        armed.store(true, Ordering::Relaxed);
        for window in 0..2 {
            for &id in &on_target[..5] {
                let o = registry.handle(&BatchRequest::new(id, synth_input(shape, 7)));
                assert!(o.outcome.outcome.result.is_err(), "poison must bite");
                assert!(!o.failed_over, "shard still in the ring");
            }
            clock.advance(101);
            let _ = registry.handle(&BatchRequest::new(
                on_target[5 + window],
                synth_input(shape, 7),
            ));
        }
        assert_eq!(sup.health(target), ShardHealth::Quarantined);

        // Quarantined: traffic for shard 0 fails over to shard 1 and
        // succeeds even though the poison is still armed (the gate sees
        // the shard out of the ring).
        let o = registry.handle(&BatchRequest::new(on_target[0], synth_input(shape, 7)));
        assert!(o.failed_over);
        assert_eq!(o.primary_shard, target);
        assert_ne!(o.shard, target);
        assert!(o.outcome.outcome.result.is_ok());

        // One tick rebuilds the shard from the retained artifact and
        // opens probation.
        assert_eq!(registry.supervise_tick(), vec![target]);
        assert_eq!(sup.health(target), ShardHealth::Rebuilding);

        // Exactly probe_requests probes run (clean: the rebuilt shard is
        // not "live" to the gate until re-admission) and re-admit it.
        let mut probes = 0;
        for &id in on_target.iter().cycle() {
            let o = registry.handle(&BatchRequest::new(id, synth_input(shape, 7)));
            if o.probe {
                probes += 1;
                assert!(o.outcome.outcome.result.is_ok());
            }
            if probes == 3 {
                break;
            }
        }
        assert_eq!(sup.health(target), ShardHealth::Healthy);
        armed.store(false, Ordering::Relaxed);

        // Healed: primary routing is restored bit-for-bit and the shard
        // serves its own traffic again.
        let o = registry.handle(&BatchRequest::new(on_target[1], synth_input(shape, 7)));
        assert_eq!(o.shard, target);
        assert!(!o.failed_over);
        assert!(o.outcome.outcome.result.is_ok());

        let snap = sup.snapshot();
        assert!(snap.full_walk(target));
        snap.reconcile_failovers().unwrap();
        assert_eq!(snap.rebuild_attempts, 1);
        assert_eq!(snap.rebuild_successes, 1);
    }

    #[test]
    fn hot_swap_mid_traffic_loses_nothing() {
        let engine = tiny_engine(3);
        let artifact = ModelArtifact::from_engine(&engine, 1, "v1");
        let registry = Arc::new(ModelRegistry::new(artifact, tiny_registry_cfg()).unwrap());
        registry
            .deploy(ModelArtifact::from_engine(&engine, 2, "v2"))
            .unwrap();

        let shape = engine.network().input_shape();
        let served: Vec<_> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..3u64)
                .map(|w| {
                    let registry = Arc::clone(&registry);
                    let input = synth_input(shape, 7 + w);
                    scope.spawn(move || {
                        (0..12u64)
                            .map(|i| {
                                registry.handle(&BatchRequest::new(w * 100 + i, input.clone()))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            // Promote while the workers are mid-traffic.
            registry.promote();
            workers
                .into_iter()
                .flat_map(|w| w.join().expect("worker panicked"))
                .collect()
        });
        assert_eq!(served.len(), 36);
        assert!(served.iter().all(|o| o.outcome.outcome.result.is_ok()));
        // Accounting is exact even across the concurrent swap.
        let counters = registry.version_counters();
        let total: u64 = counters.values().map(|c| c.requests).sum();
        assert_eq!(total, 36);
        assert_eq!(registry.active_version(), 2);
    }
}
