//! Per-request flight recorder: a bounded ring of [`FlightRecord`]s —
//! every runtime decision the serving stack made about one request —
//! with exemplar retention and a postmortem dump.
//!
//! The ring answers "what happened to the last N requests"; exemplar
//! retention answers the two questions operators actually ask after the
//! fact — "show me the failures" and "show me the worst one" — by
//! pinning every failed record (up to a generous cap) and the
//! worst-latency record past ring eviction. A [`FlightLog`] snapshot
//! serializes through the versioned `core::io` envelope and is emitted
//! automatically when serving health degrades to Critical or a canary
//! rollback fires.
//!
//! The recorder is strictly opt-in: engines hold an
//! `Option<Arc<FlightRecorder>>`, and the hot path pays nothing when it
//! is `None`.

use crate::io::{self, IoError};
use crate::resilience::{error_reason_name, ResilientOutcome};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Default ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// Default cap on failed exemplars retained past ring eviction. Beyond
/// it the *oldest* retained failure is dropped (and counted in
/// [`FlightLog::dropped_failed`]) — a bound this generous only binds in
/// a sustained total outage.
pub const DEFAULT_FAILED_CAPACITY: usize = 65_536;

/// Everything the serving stack decided about one request, flattened
/// for serialization. Registry-served requests carry version/shard
/// routing fields; standalone engines leave them zero/false.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightRecord {
    /// Request id.
    pub id: u64,
    /// The per-request RNG seed the engine resolved.
    pub seed: u64,
    /// Deadline class of the serving engine's resilience config.
    pub class: String,
    /// Model version that served the request (0 outside a registry).
    pub version: u64,
    /// Shard the request routed to (0 outside a registry).
    pub shard: u64,
    /// Whether a canary engine served it.
    pub canary: bool,
    /// Whether this request's canary verdict triggered a rollback.
    pub rolled_back: bool,
    /// The mod-hash primary shard of the id (equals `shard` unless
    /// supervision failed the request over; 0 outside a registry).
    pub primary_shard: u64,
    /// Whether supervision served the request off its sick primary.
    pub failed_over: bool,
    /// Whether the request probed a Rebuilding shard's re-admission
    /// gate.
    pub rebuild_probe: bool,
    /// End-to-end latency of the attempt chain, nanoseconds (0 for
    /// requests that never executed: shed or abandoned).
    pub latency_ns: u64,
    /// Queue wait inside the batch engine, nanoseconds.
    pub queue_wait_ns: u64,
    /// Total deterministic retry backoff slept, nanoseconds.
    pub backoff_ns: u64,
    /// Execution attempts (0 for shed/abandoned requests).
    pub attempts: u32,
    /// Watchdog requeues.
    pub requeues: u32,
    /// Breaker forced the exact path on some attempt.
    pub forced_exact: bool,
    /// Some attempt was a half-open probe.
    pub probe: bool,
    /// Admission control shed the request.
    pub shed: bool,
    /// A retryable failure survived every allowed attempt.
    pub retry_exhausted: bool,
    /// Deadline/budget expiry hit the request.
    pub expired: bool,
    /// Degraded sample cap, when admission applied one.
    pub degraded_to: Option<u64>,
    /// The batch engine served the prepared input from cache.
    pub cache_hit: bool,
    /// Whether the request produced a prediction.
    pub ok: bool,
    /// Typed failure reason (`"ok"` for successes) — the
    /// [`error_reason_name`] vocabulary.
    pub reason: String,
    /// Degraded-mode name of the robust report (`"none"` on failure).
    pub mode: String,
    /// MC samples requested / actually used / served by exact fallback
    /// / lost to isolation.
    pub requested_samples: u64,
    /// See `requested_samples`.
    pub used_samples: u64,
    /// See `requested_samples`.
    pub fallback_samples: u64,
    /// See `requested_samples`.
    pub lost_samples: u64,
    /// Neurons considered by the skip machinery across used samples.
    pub skip_total: u64,
    /// Neurons skipped.
    pub skip_skipped: u64,
}

impl FlightRecord {
    /// Flattens a resilience outcome into a base record (no registry
    /// routing fields — [`crate::ModelRegistry`] enriches those).
    pub fn from_outcome(outcome: &ResilientOutcome, class: &str) -> Self {
        let o = &outcome.outcome;
        let (ok, reason) = match &o.result {
            Ok(_) => (true, "ok".to_string()),
            Err(e) => (false, error_reason_name(e).to_string()),
        };
        let report = o.result.as_ref().ok().map(|(_, r)| r);
        Self {
            id: o.id,
            seed: o.seed,
            class: class.to_string(),
            version: 0,
            shard: 0,
            canary: false,
            rolled_back: false,
            primary_shard: 0,
            failed_over: false,
            rebuild_probe: false,
            latency_ns: outcome.elapsed_ns,
            queue_wait_ns: o.queue_wait_ns,
            backoff_ns: outcome.backoff_total.as_nanos().min(u128::from(u64::MAX)) as u64,
            attempts: outcome.attempts,
            requeues: outcome.requeues,
            forced_exact: outcome.forced_exact,
            probe: outcome.probe,
            shed: outcome.shed,
            retry_exhausted: outcome.retry_exhausted,
            expired: outcome.expired,
            degraded_to: outcome.degraded_to.map(|d| d as u64),
            cache_hit: o.cache_hit,
            ok,
            reason,
            mode: report.map_or("none", |r| r.mode.name()).to_string(),
            requested_samples: report.map_or(0, |r| r.requested_samples as u64),
            used_samples: report.map_or(0, |r| r.used_samples as u64),
            fallback_samples: report.map_or(0, |r| r.fallback_samples as u64),
            lost_samples: report.map_or(0, |r| r.lost_samples as u64),
            skip_total: report.map_or(0, |r| r.skip.total as u64),
            skip_skipped: report.map_or(0, |r| r.skip.skipped as u64),
        }
    }
}

/// A serializable snapshot of the recorder: the live ring plus the
/// pinned exemplars, wrapped by [`io::save_flight_log`] in the
/// versioned artifact envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightLog {
    /// Why the dump was emitted (`"manual"`, `"slo_critical"`,
    /// `"canary_spike"`, …).
    pub trigger: String,
    /// Records ever offered to the recorder.
    pub recorded: u64,
    /// Successful records evicted from the ring (the only kind that is
    /// ever lost).
    pub evicted_ok: u64,
    /// Failed exemplars dropped because the failure queue was full.
    pub dropped_failed: u64,
    /// Ring capacity at snapshot time.
    pub capacity: u64,
    /// The live ring, oldest first.
    pub records: Vec<FlightRecord>,
    /// Failed records evicted from the ring but pinned, oldest first.
    pub failed_exemplars: Vec<FlightRecord>,
    /// The worst-latency record seen so far (kept even after its ring
    /// slot was evicted).
    pub worst_latency: Option<FlightRecord>,
}

impl FlightLog {
    /// Every failed record in the log — pinned exemplars first, then
    /// ring-resident failures — in recording order.
    pub fn failed(&self) -> Vec<&FlightRecord> {
        self.failed_exemplars
            .iter()
            .chain(self.records.iter().filter(|r| !r.ok))
            .collect()
    }

    /// Every record whose serving was degraded in any way (failed,
    /// degraded mode, shed, expired, forced exact, retried, requeued).
    pub fn degraded(&self) -> Vec<&FlightRecord> {
        self.failed_exemplars
            .iter()
            .chain(self.records.iter())
            .filter(|r| {
                !r.ok
                    || r.mode != "healthy"
                    || r.shed
                    || r.expired
                    || r.forced_exact
                    || r.retry_exhausted
                    || r.attempts > 1
                    || r.requeues > 0
            })
            .collect()
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    ring: VecDeque<FlightRecord>,
    failed: VecDeque<FlightRecord>,
    worst: Option<FlightRecord>,
    recorded: u64,
    evicted_ok: u64,
    dropped_failed: u64,
    armed: Option<PathBuf>,
}

/// The bounded flight-record ring. One mutex, short critical sections —
/// cheap enough to sit on the serving path, and entirely absent from it
/// when no recorder is attached.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    failed_capacity: usize,
    inner: Mutex<RecorderInner>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder whose ring holds `capacity` records (min 1) and whose
    /// failure queue holds [`DEFAULT_FAILED_CAPACITY`] exemplars.
    pub fn new(capacity: usize) -> Self {
        Self::with_failed_capacity(capacity, DEFAULT_FAILED_CAPACITY)
    }

    /// Full control over both bounds (each min 1).
    pub fn with_failed_capacity(capacity: usize, failed_capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            failed_capacity: failed_capacity.max(1),
            inner: Mutex::new(RecorderInner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RecorderInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one record, evicting per the exemplar-retention rules:
    /// an evicted failure moves to the failure queue, the worst-latency
    /// record is cloned into its pin slot, and only successful evictees
    /// are actually forgotten.
    pub fn record(&self, record: FlightRecord) {
        let mut inner = self.lock();
        inner.recorded += 1;
        let is_worst = inner
            .worst
            .as_ref()
            .is_none_or(|w| record.latency_ns > w.latency_ns);
        if is_worst {
            inner.worst = Some(record.clone());
        }
        inner.ring.push_back(record);
        while inner.ring.len() > self.capacity {
            let Some(evicted) = inner.ring.pop_front() else {
                break;
            };
            if evicted.ok {
                inner.evicted_ok += 1;
            } else {
                inner.failed.push_back(evicted);
                while inner.failed.len() > self.failed_capacity {
                    inner.failed.pop_front();
                    inner.dropped_failed += 1;
                }
            }
        }
    }

    /// Records ever offered.
    pub fn recorded(&self) -> u64 {
        self.lock().recorded
    }

    /// Snapshots the recorder into a serializable log.
    pub fn snapshot(&self, trigger: &str) -> FlightLog {
        let inner = self.lock();
        FlightLog {
            trigger: trigger.to_string(),
            recorded: inner.recorded,
            evicted_ok: inner.evicted_ok,
            dropped_failed: inner.dropped_failed,
            capacity: self.capacity as u64,
            records: inner.ring.iter().cloned().collect(),
            failed_exemplars: inner.failed.iter().cloned().collect(),
            worst_latency: inner.worst.clone(),
        }
    }

    /// Arms the one-shot postmortem dump: the next
    /// [`FlightRecorder::trigger_postmortem`] writes a [`FlightLog`] to
    /// `path`. Re-arming replaces the pending path.
    pub fn arm_postmortem(&self, path: impl AsRef<Path>) {
        self.lock().armed = Some(path.as_ref().to_path_buf());
    }

    /// The armed postmortem path, if a dump is still pending.
    pub fn armed_postmortem(&self) -> Option<PathBuf> {
        self.lock().armed.clone()
    }

    /// Fires the armed postmortem dump (disarming it), writing the
    /// current snapshot with `trigger` as the recorded reason. Returns
    /// `None` when nothing was armed (including: already fired).
    ///
    /// # Errors
    ///
    /// The inner result is the envelope write outcome.
    pub fn trigger_postmortem(&self, trigger: &str) -> Option<Result<PathBuf, IoError>> {
        let path = self.lock().armed.take()?;
        let log = self.snapshot(trigger);
        Some(io::save_flight_log(&path, &log).map(|()| path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, ok: bool, latency_ns: u64) -> FlightRecord {
        FlightRecord {
            id,
            seed: id ^ 7,
            class: "default".into(),
            version: 0,
            shard: 0,
            canary: false,
            rolled_back: false,
            primary_shard: 0,
            failed_over: false,
            rebuild_probe: false,
            latency_ns,
            queue_wait_ns: 0,
            backoff_ns: 0,
            attempts: 1,
            requeues: 0,
            forced_exact: false,
            probe: false,
            shed: false,
            retry_exhausted: false,
            expired: false,
            degraded_to: None,
            cache_hit: false,
            ok,
            reason: if ok { "ok".into() } else { "numeric".into() },
            mode: if ok { "healthy".into() } else { "none".into() },
            requested_samples: 4,
            used_samples: 4,
            fallback_samples: 0,
            lost_samples: 0,
            skip_total: 100,
            skip_skipped: 60,
        }
    }

    #[test]
    fn ring_keeps_the_newest_and_pins_failures() {
        let rec = FlightRecorder::new(2);
        rec.record(record(1, false, 10));
        rec.record(record(2, true, 20));
        rec.record(record(3, true, 30));
        rec.record(record(4, true, 5));
        let log = rec.snapshot("manual");
        assert_eq!(
            log.records.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![3, 4]
        );
        // The evicted failure is pinned; the evicted success is not.
        assert_eq!(
            log.failed_exemplars
                .iter()
                .map(|r| r.id)
                .collect::<Vec<_>>(),
            vec![1]
        );
        assert_eq!(log.evicted_ok, 1);
        assert_eq!(log.recorded, 4);
        // Worst latency survives eviction too.
        assert_eq!(log.worst_latency.as_ref().map(|r| r.id), Some(3));
        assert_eq!(log.failed().iter().map(|r| r.id).collect::<Vec<_>>(), [1]);
    }

    #[test]
    fn failed_queue_is_bounded() {
        let rec = FlightRecorder::with_failed_capacity(1, 2);
        for id in 0..5 {
            rec.record(record(id, false, id));
        }
        let log = rec.snapshot("manual");
        assert_eq!(log.records.len(), 1);
        assert_eq!(log.failed_exemplars.len(), 2);
        assert_eq!(log.dropped_failed, 2);
    }

    #[test]
    fn postmortem_fires_once_per_arm() {
        let path = std::env::temp_dir().join(format!("fbcnn_flight_{}.json", std::process::id()));
        let rec = FlightRecorder::new(4);
        rec.record(record(1, false, 10));
        assert!(rec.trigger_postmortem("slo_critical").is_none());
        rec.arm_postmortem(&path);
        let written = rec.trigger_postmortem("slo_critical").unwrap().unwrap();
        assert_eq!(written, path);
        // Disarmed: the second trigger is a no-op.
        assert!(rec.trigger_postmortem("slo_critical").is_none());
        let log = io::read_flight_log(&path).unwrap();
        assert_eq!(log.trigger, "slo_critical");
        assert_eq!(log.records.len(), 1);
        assert!(!log.records[0].ok);
        let _ = std::fs::remove_file(path);
    }
}
