//! Versioned model artifacts: the complete serving state of an
//! [`Engine`] — network topology + weights, calibrated skip thresholds,
//! weight-polarity indicator maps and the engine configuration — in one
//! `core::io` envelope, fit to ship between machines and deploy into a
//! [`crate::ModelRegistry`].
//!
//! The format is defensive by construction, because a bad artifact must
//! never poison inference:
//!
//! * the envelope layer ([`crate::io`]) rejects truncated, corrupted,
//!   stale and mislabeled files with typed [`IoError`]s;
//! * a content digest over the payload's value tree catches corruption
//!   that still parses as valid JSON (a bit flip inside a number);
//! * [`ModelArtifact::validate`] re-runs the structural screens
//!   ([`EngineConfig::validate`], `ThresholdSet::validate`), recomputes
//!   the indicator maps from the shipped weights, and numerically
//!   screens a probe forward pass with an [`ActivationGuard`].
//!
//! Every failure is a typed [`ArtifactError`]; nothing in this module
//! panics on untrusted input. Value-level threshold poisoning that is
//! structurally valid (e.g. saturated thresholds) is deliberately left
//! to the serving layer's canary check — see `docs/REGISTRY.md`.

use crate::engine::{Engine, EngineConfig};
use crate::error::EngineError;
use crate::io::{self, IoError};
use crate::synth_input;
use fbcnn_nn::{ActivationGuard, Network, NumericFault};
use fbcnn_predictor::{PolarityIndicators, ThresholdError, ThresholdSet};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Errors from exporting, loading or validating a [`ModelArtifact`].
///
/// Each variant names the screen that refused the artifact, so fault
/// campaigns can assert the *class* of rejection, not just "it failed".
#[derive(Debug)]
pub enum ArtifactError {
    /// The file layer refused the artifact: filesystem failure, payload
    /// parse failure, or a corrupt / truncated / stale / mislabeled
    /// envelope (see [`IoError`] for the precise sub-kind).
    Io(IoError),
    /// The payload parsed but its content digest does not match the one
    /// recorded at export time — bytes changed in flight.
    Digest {
        /// Digest recorded in the artifact.
        stored: u64,
        /// Digest recomputed from the loaded payload.
        computed: u64,
    },
    /// The embedded engine configuration is outside its legal ranges.
    Config(EngineError),
    /// The threshold set does not fit the shipped network (wrong node
    /// coverage or kernel counts — a shape mismatch).
    Thresholds(ThresholdError),
    /// The shipped indicator maps disagree with maps recomputed from the
    /// shipped weights — the artifact mixes weights and indicators from
    /// different models.
    IndicatorMismatch {
        /// Explanation of the first disagreement found.
        reason: String,
    },
    /// A probe forward pass through the shipped weights produced a
    /// non-finite or exploding activation.
    Numeric(NumericFault),
    /// The artifact's model version is not newer than the version it
    /// would replace (returned by the registry's deploy gate).
    StaleVersion {
        /// Version offered for deployment.
        offered: u64,
        /// Version currently active.
        active: u64,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact file rejected: {e}"),
            ArtifactError::Digest { stored, computed } => write!(
                f,
                "artifact content digest mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            ArtifactError::Config(e) => write!(f, "artifact engine config invalid: {e}"),
            ArtifactError::Thresholds(e) => {
                write!(f, "artifact thresholds do not fit the network: {e}")
            }
            ArtifactError::IndicatorMismatch { reason } => {
                write!(
                    f,
                    "artifact indicator maps inconsistent with weights: {reason}"
                )
            }
            ArtifactError::Numeric(fault) => {
                write!(f, "artifact weights fail the numeric screen: {fault}")
            }
            ArtifactError::StaleVersion { offered, active } => write!(
                f,
                "artifact model version {offered} is not newer than active version {active}"
            ),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<IoError> for ArtifactError {
    fn from(e: IoError) -> Self {
        ArtifactError::Io(e)
    }
}

/// The complete, self-validating serving state of one model version.
///
/// Construct with [`ModelArtifact::from_engine`], persist with
/// [`ModelArtifact::save`], and recover a serving engine with
/// [`ModelArtifact::load`] + [`ModelArtifact::into_engine`]. The loaded
/// engine is bit-identical to the exporter's: thresholds are shipped, not
/// recalibrated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelArtifact {
    /// Monotonic model version (the registry's rollout unit). Distinct
    /// from the envelope's format version, which tracks the *schema*.
    pub model_version: u64,
    /// Free-form human label ("lenet5-retrain-2026-08").
    pub label: String,
    /// FNV-1a digest over the value trees of `config`, `network`,
    /// `thresholds` and `indicators`, in that order.
    pub digest: u64,
    /// Engine configuration the model was calibrated under.
    pub config: EngineConfig,
    /// Network topology and weights.
    pub network: Network,
    /// Calibrated per-kernel skip thresholds (Algorithm 1 output).
    pub thresholds: ThresholdSet,
    /// Weight-polarity indicator bitmaps, precomputed from the weights.
    pub indicators: PolarityIndicators,
}

impl ModelArtifact {
    /// Snapshots `engine` as a versioned artifact. The digest is
    /// computed here; [`ModelArtifact::validate`] will hold by
    /// construction.
    pub fn from_engine(engine: &Engine, model_version: u64, label: impl Into<String>) -> Self {
        let network = engine.network().clone();
        let indicators = PolarityIndicators::from_network(&network);
        let mut artifact = Self {
            model_version,
            label: label.into(),
            digest: 0,
            config: *engine.config(),
            network,
            thresholds: engine.thresholds().clone(),
            indicators,
        };
        artifact.digest = artifact.content_digest();
        artifact
    }

    /// The FNV-1a digest of the artifact's content (everything except
    /// `model_version`, `label` and the stored digest itself), computed
    /// over the serde value trees so it is independent of JSON
    /// formatting.
    pub fn content_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        digest_value(&serde::Serialize::to_value(&self.config), &mut h);
        digest_value(&serde::Serialize::to_value(&self.network), &mut h);
        digest_value(&serde::Serialize::to_value(&self.thresholds), &mut h);
        digest_value(&serde::Serialize::to_value(&self.indicators), &mut h);
        h
    }

    /// Runs every load-time screen: digest, config ranges, threshold
    /// structure, indicator consistency, and a numeric probe pass.
    ///
    /// # Errors
    ///
    /// The first failing screen's [`ArtifactError`] variant.
    pub fn validate(&self) -> Result<(), ArtifactError> {
        let computed = self.content_digest();
        if computed != self.digest {
            return Err(ArtifactError::Digest {
                stored: self.digest,
                computed,
            });
        }
        self.config.validate().map_err(ArtifactError::Config)?;
        self.thresholds
            .validate(&self.network)
            .map_err(ArtifactError::Thresholds)?;
        let recomputed = PolarityIndicators::from_network(&self.network);
        if recomputed != self.indicators {
            return Err(ArtifactError::IndicatorMismatch {
                reason: "recomputed polarity maps differ from the shipped maps".into(),
            });
        }
        // Numeric screen: one deterministic probe input through the
        // shipped weights; NaN/Inf/exploding weights surface here instead
        // of mid-serving.
        let probe = synth_input(self.network.input_shape(), self.config.seed ^ 0xA47E);
        let guard = ActivationGuard::default();
        for (node, activation) in self.network.forward_full(&probe).iter().enumerate() {
            if let Some(fault) = guard.find_fault(node, activation) {
                return Err(ArtifactError::Numeric(fault));
            }
        }
        Ok(())
    }

    /// Writes the artifact under the `core::io` envelope (kind
    /// [`io::MODEL_KIND`]).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on filesystem or serialization failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ArtifactError> {
        io::save(path, io::MODEL_KIND, self)?;
        Ok(())
    }

    /// Loads and fully validates an artifact written by
    /// [`ModelArtifact::save`].
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] for anything the envelope/payload layer
    /// rejects, then whatever [`ModelArtifact::validate`] reports.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        let artifact = Self::load_unvalidated(path)?;
        artifact.validate()?;
        Ok(artifact)
    }

    /// Loads without running [`ModelArtifact::validate`] — for tools that
    /// inspect damaged artifacts. Serving code must use
    /// [`ModelArtifact::load`].
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on file, envelope or payload failure.
    pub fn load_unvalidated(path: impl AsRef<Path>) -> Result<Self, ArtifactError> {
        Ok(io::load(path, io::MODEL_KIND)?)
    }

    /// Builds the serving engine from the artifact, without
    /// recalibration (bit-identical to the exporter's engine).
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Config`] when the configuration or thresholds
    /// are rejected by [`Engine::from_calibrated`].
    pub fn into_engine(self) -> Result<Engine, ArtifactError> {
        Engine::from_calibrated(self.config, self.network, self.thresholds)
            .map_err(ArtifactError::Config)
    }
}

/// Folds one serde value tree into an FNV-1a state. Each variant mixes a
/// distinct tag byte so `0` and `"0"` and `[]` cannot collide.
fn digest_value(v: &serde::Value, h: &mut u64) {
    fn eat(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= u64::from(b);
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    match v {
        serde::Value::Null => eat(h, &[0]),
        serde::Value::Bool(b) => eat(h, &[1, u8::from(*b)]),
        serde::Value::Int(i) => {
            eat(h, &[2]);
            eat(h, &i.to_le_bytes());
        }
        serde::Value::UInt(u) => {
            // An integer digests the same whether it arrived signed or
            // unsigned (the JSON layer picks per magnitude).
            eat(h, &[2]);
            eat(h, &(*u as i64).to_le_bytes());
        }
        serde::Value::Float(x) => {
            eat(h, &[4]);
            eat(h, &x.to_bits().to_le_bytes());
        }
        serde::Value::Str(s) => {
            eat(h, &[5]);
            eat(h, &(s.len() as u64).to_le_bytes());
            eat(h, s.as_bytes());
        }
        serde::Value::Array(items) => {
            eat(h, &[6]);
            eat(h, &(items.len() as u64).to_le_bytes());
            for item in items {
                digest_value(item, h);
            }
        }
        serde::Value::Map(entries) => {
            eat(h, &[7]);
            eat(h, &(entries.len() as u64).to_le_bytes());
            for (key, value) in entries {
                eat(h, key.as_bytes());
                digest_value(value, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_nn::models::ModelKind;

    fn tiny_engine(seed: u64) -> Engine {
        Engine::new(EngineConfig {
            samples: 3,
            calibration_samples: 2,
            seed,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        })
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fbcnn_artifact_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn export_load_roundtrip_is_identical() {
        let engine = tiny_engine(11);
        let artifact = ModelArtifact::from_engine(&engine, 3, "unit");
        artifact.validate().unwrap();
        let path = tmp("roundtrip");
        artifact.save(&path).unwrap();
        let back = ModelArtifact::load(&path).unwrap();
        assert_eq!(artifact, back);
        let rebuilt = back.into_engine().unwrap();
        assert_eq!(rebuilt.network(), engine.network());
        assert_eq!(rebuilt.thresholds(), engine.thresholds());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn digest_detects_value_level_corruption() {
        let engine = tiny_engine(5);
        let mut artifact = ModelArtifact::from_engine(&engine, 1, "unit");
        // A "parsed fine, value changed" corruption: nudge one weight
        // after the digest was recorded.
        for (_, layer) in artifact.network.layers_mut() {
            if let fbcnn_nn::Layer::Conv(conv) = layer {
                conv.weights_mut()[0] += 0.25;
                break;
            }
        }
        match artifact.validate() {
            Err(ArtifactError::Digest { stored, computed }) => assert_ne!(stored, computed),
            other => panic!("expected digest mismatch, got {other:?}"),
        }
    }

    #[test]
    fn version_and_label_do_not_change_the_digest() {
        let engine = tiny_engine(5);
        let a = ModelArtifact::from_engine(&engine, 1, "first");
        let b = ModelArtifact::from_engine(&engine, 2, "second");
        assert_eq!(a.content_digest(), b.content_digest());
    }

    #[test]
    fn mismatched_indicators_are_rejected() {
        let engine_a = tiny_engine(5);
        let engine_b = tiny_engine(6);
        let mut artifact = ModelArtifact::from_engine(&engine_a, 1, "unit");
        artifact.indicators = PolarityIndicators::from_network(engine_b.network());
        artifact.digest = artifact.content_digest(); // digest screen passes
        assert!(matches!(
            artifact.validate(),
            Err(ArtifactError::IndicatorMismatch { .. })
        ));
    }

    #[test]
    fn nan_weights_fail_the_numeric_screen() {
        let engine = tiny_engine(5);
        let mut artifact = ModelArtifact::from_engine(&engine, 1, "unit");
        for (_, layer) in artifact.network.layers_mut() {
            if let fbcnn_nn::Layer::Conv(conv) = layer {
                conv.weights_mut()[0] = f32::NAN;
                break;
            }
        }
        // Keep the digest and indicators consistent so the *numeric*
        // screen is the one that must catch the poisoned weight.
        artifact.indicators = PolarityIndicators::from_network(&artifact.network);
        artifact.digest = artifact.content_digest();
        assert!(matches!(
            artifact.validate(),
            Err(ArtifactError::Numeric(_))
        ));
    }

    #[test]
    fn bad_config_is_rejected_typed() {
        let engine = tiny_engine(5);
        let mut artifact = ModelArtifact::from_engine(&engine, 1, "unit");
        artifact.config.samples = 0;
        artifact.digest = artifact.content_digest();
        assert!(matches!(artifact.validate(), Err(ArtifactError::Config(_))));
    }
}
