//! Seeded, deterministic fault injection for robustness testing.
//!
//! The harness perturbs a Fast-BCNN pipeline at its four attack surfaces
//! — convolution weights, activations, dropout masks and calibrated
//! thresholds — and can fabricate masks that kill individual MC workers.
//! Every choice derives from the injector's own splitmix64 stream, so a
//! fault campaign is exactly reproducible from its seed (the same
//! discipline the mask generator uses; nothing here touches global
//! randomness).
//!
//! The injector only *creates* faults. Detection and recovery live in
//! [`fbcnn_nn::ActivationGuard`], [`fbcnn_predictor::ThresholdSet::validate`]
//! and [`crate::Engine::predict_robust`]; `tests/fault_injection.rs`
//! closes the loop.

use crate::artifact::ModelArtifact;
use crate::resilience::RequestSampleHook;
use crate::supervise::{shard_route, SupervisorGate};
use fbcnn_bayes::mask::DropoutMasks;
use fbcnn_bayes::BayesianNetwork;
use fbcnn_nn::{Network, NodeId};
use fbcnn_predictor::{PolarityIndicators, ThresholdSet};
use fbcnn_tensor::{BitMask, Shape, Tensor};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Whether the gate's supervisor (if the gate is filled yet) still
/// reports `shard` in the routing ring. An unfilled gate reports live —
/// a poison armed before boot must actually bite.
fn gate_reports_live(gate: &SupervisorGate, shard: usize) -> bool {
    match crate::supervise::lock_gate(gate).as_ref() {
        Some(sup) => sup.health(shard).is_live(),
        None => true,
    }
}

/// A seeded per-sample latency schedule: some samples stall for a
/// deterministic delay, the rest run untouched. Latency faults perturb
/// *time only* — the regression suite asserts the numerics are
/// bit-identical with and without the schedule installed.
#[derive(Debug, Clone)]
pub struct LatencySchedule {
    /// `delays[s % delays.len()]` is sample `s`'s stall (possibly zero).
    delays: Vec<Duration>,
}

impl LatencySchedule {
    /// The period of the precomputed delay table.
    const PERIOD: usize = 64;

    /// Builds the schedule from precomputed injector draws: each of the
    /// 64 table slots stalls with probability `rate`, for a uniform
    /// duration in `(0, max_delay]`.
    fn from_injector(inj: &mut FaultInjector, rate: f64, max_delay: Duration) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let delays = (0..Self::PERIOD)
            .map(|_| {
                let roll = (inj.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                if roll < rate && !max_delay.is_zero() {
                    let frac = (inj.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    Duration::from_nanos(((max_delay.as_nanos() as f64) * frac).max(1.0) as u64)
                } else {
                    Duration::ZERO
                }
            })
            .collect();
        Self { delays }
    }

    /// The stall scheduled for sample index `s` (zero for most).
    pub fn delay_for(&self, sample: usize) -> Duration {
        self.delays[sample % self.delays.len()]
    }

    /// Samples with a nonzero stall in one table period.
    pub fn stalled_slots(&self) -> usize {
        self.delays.iter().filter(|d| !d.is_zero()).count()
    }

    /// Wraps the schedule as a sample hook that sleeps the scheduled
    /// stall — pluggable into `RunControl::sample_hook`.
    pub fn into_hook(self) -> Arc<dyn Fn(usize) + Send + Sync> {
        Arc::new(move |s| {
            let d = self.delay_for(s);
            if !d.is_zero() {
                std::thread::sleep(d);
            }
        })
    }
}

/// A record of one injected bit flip (for logs and assertions).
#[derive(Debug, Clone, PartialEq)]
pub struct BitFlip {
    /// Label of the layer hit (weight flips) or `"activation"`.
    pub site: String,
    /// Linear index of the perturbed value.
    pub index: usize,
    /// Which of the 32 bits was flipped.
    pub bit: u32,
    /// Value before the flip.
    pub before: f32,
    /// Value after the flip.
    pub after: f32,
}

/// How [`FaultInjector::poison_thresholds`] corrupts a threshold set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdFault {
    /// Every threshold becomes `u16::MAX`: every zero neuron is predicted
    /// unaffected and skipped. Structurally valid — slips past
    /// [`fbcnn_predictor::ThresholdSet::validate`] and must be caught
    /// behaviorally (canary / skip-rate checks).
    Saturate,
    /// Each vector loses its last entry: a kernel-count mismatch that
    /// [`fbcnn_predictor::ThresholdSet::validate`] reports as a typed
    /// error (and that would index-panic inside the skip-map builder).
    Truncate,
    /// A threshold vector is reattached to a non-conv node — the
    /// misaddressed-artifact shape of poisoning, also caught structurally.
    Misaddress,
}

/// How [`FaultInjector::corrupt_artifact_file`] damages a saved model
/// artifact on disk. Every class must surface as a typed
/// [`crate::ArtifactError`] at load time — never a panic, never a
/// silently different model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactFault {
    /// One high bit of one payload byte flips (storage rot, a bad NIC).
    /// The flip lands in the payload's back half — the weight/threshold
    /// bulk covered by the content digest — so it is caught either as a
    /// parse failure or as a digest mismatch.
    PayloadBitFlip,
    /// The file is cut at a random byte (interrupted download / partial
    /// write): the strict envelope parser or the payload decoder refuses
    /// the remainder.
    Truncate,
    /// The envelope's format version is rewritten to a future number — a
    /// file from a build this one does not understand.
    VersionSkew,
}

/// Deterministic fault source; see the module docs.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
}

impl FaultInjector {
    /// An injector whose whole fault sequence is a function of `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// splitmix64 — small, seedable, and plenty for picking fault sites.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Flips one random bit in one random convolution weight.
    ///
    /// High exponent bits produce huge or non-finite values (detected by
    /// the activation guard); mantissa bits produce silent small drift
    /// (the canary's territory). The bit index is drawn uniformly, so a
    /// campaign over many seeds covers both regimes.
    ///
    /// Returns `None` when the network has no convolution weights.
    pub fn flip_conv_weight_bit(&mut self, net: &mut Network) -> Option<BitFlip> {
        let mut convs: Vec<(String, &mut [f32])> = net
            .layers_mut()
            .filter_map(|(label, layer)| {
                layer
                    .as_conv_mut()
                    .map(|c| (label.to_string(), c.weights_mut()))
            })
            .collect();
        if convs.is_empty() {
            return None;
        }
        let (site, weights) = convs.swap_remove(self.below(convs.len()));
        let index = self.below(weights.len());
        let bit = self.next_u64() as u32 % 32;
        let before = weights[index];
        let after = f32::from_bits(before.to_bits() ^ (1 << bit));
        weights[index] = after;
        Some(BitFlip {
            site,
            index,
            bit,
            before,
            after,
        })
    }

    /// Overwrites one random convolution weight with `NaN` — the
    /// worst-case weight fault (a bit flip that lands in the quiet-NaN
    /// encoding), guaranteed non-finite for detection tests.
    pub fn poison_conv_weight_nan(&mut self, net: &mut Network) -> Option<BitFlip> {
        let mut convs: Vec<(String, &mut [f32])> = net
            .layers_mut()
            .filter_map(|(label, layer)| {
                layer
                    .as_conv_mut()
                    .map(|c| (label.to_string(), c.weights_mut()))
            })
            .collect();
        if convs.is_empty() {
            return None;
        }
        let (site, weights) = convs.swap_remove(self.below(convs.len()));
        let index = self.below(weights.len());
        let before = weights[index];
        weights[index] = f32::NAN;
        Some(BitFlip {
            site,
            index,
            bit: 22, // the quiet bit, nominally
            before,
            after: f32::NAN,
        })
    }

    /// Flips one random bit of one random element of a tensor
    /// (activation corruption between layers).
    pub fn flip_tensor_bit(&mut self, t: &mut Tensor) -> BitFlip {
        let slice = t.as_mut_slice();
        let index = self.below(slice.len());
        let bit = self.next_u64() as u32 % 32;
        let before = slice[index];
        let after = f32::from_bits(before.to_bits() ^ (1 << bit));
        slice[index] = after;
        BitFlip {
            site: "activation".into(),
            index,
            bit,
            before,
            after,
        }
    }

    /// Flips `flips` random bits across a sample's dropout masks
    /// (mask-buffer corruption). Shapes stay intact, so the result is a
    /// *valid but wrong* mask set — the fault class that cannot be caught
    /// structurally and must instead be absorbed statistically (a few
    /// flipped dropout bits are within MC-dropout's own noise).
    ///
    /// Returns the number of bits actually flipped (0 when the set is
    /// empty).
    pub fn corrupt_masks(&mut self, masks: &mut DropoutMasks, flips: usize) -> usize {
        let nodes: Vec<NodeId> = masks.iter().map(|(node, _)| node).collect();
        if nodes.is_empty() {
            return 0;
        }
        for _ in 0..flips {
            let node = nodes[self.below(nodes.len())];
            let mut mask = masks.get(node).cloned().unwrap_or_else(|| {
                // Unreachable: `node` came from the iterator above.
                BitMask::zeros(Shape::new(1, 1, 1))
            });
            let i = self.below(mask.len());
            let flipped = !mask.get(i);
            mask.set(i, flipped);
            masks.insert(node, mask);
        }
        flips
    }

    /// Corrupts a calibrated threshold set in place (see
    /// [`ThresholdFault`] for the three poisoning shapes).
    pub fn poison_thresholds(
        &mut self,
        set: &mut ThresholdSet,
        net: &Network,
        mode: ThresholdFault,
    ) {
        let nodes: Vec<NodeId> = set.nodes().collect();
        match mode {
            ThresholdFault::Saturate => {
                for node in nodes {
                    let saturated = set
                        .get(node)
                        .map(|t| vec![u16::MAX; t.len()])
                        .unwrap_or_default();
                    set.insert(node, saturated);
                }
            }
            ThresholdFault::Truncate => {
                for node in nodes {
                    let truncated = set
                        .get(node)
                        .map(|t| t[..t.len().saturating_sub(1)].to_vec())
                        .unwrap_or_default();
                    set.insert(node, truncated);
                }
            }
            ThresholdFault::Misaddress => {
                // Reattach one carried vector to a random node that is
                // not a convolution (node 0, the input, always qualifies).
                if let Some(&node) = nodes.first() {
                    let vector = set.get(node).map(<[u16]>::to_vec).unwrap_or_default();
                    let non_conv: Vec<NodeId> = (0..net.len())
                        .map(NodeId)
                        .filter(|&id| {
                            net.node(id)
                                .layer()
                                .and_then(fbcnn_nn::Layer::as_conv)
                                .is_none()
                        })
                        .collect();
                    if let Some(&target) = non_conv.get(self.below(non_conv.len().max(1))) {
                        set.insert(target, vector);
                    }
                }
            }
        }
    }

    /// Damages a saved [`ModelArtifact`] file in place (see
    /// [`ArtifactFault`] for the three byte-level classes).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures reading or rewriting the file.
    pub fn corrupt_artifact_file(
        &mut self,
        path: impl AsRef<Path>,
        fault: ArtifactFault,
    ) -> std::io::Result<()> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)?;
        let damaged = match fault {
            ArtifactFault::PayloadBitFlip => {
                let mut b = bytes;
                if !b.is_empty() {
                    // The back half of a model artifact is the
                    // weight/threshold/indicator bulk, all inside the
                    // digested payload; the front holds the (undigested)
                    // label and version fields. Only the top two bits
                    // qualify: a low-bit flip in the decimal tail of a
                    // printed float can round back to the same f32 — no
                    // damage at the model's own precision — while a flip
                    // of bit 6/7 always breaks UTF-8, the JSON grammar or
                    // a digested value.
                    let lo = b.len() / 2;
                    let i = lo + self.below(b.len() - lo);
                    b[i] ^= 1 << (6 + self.next_u64() % 2);
                }
                b
            }
            ArtifactFault::Truncate => {
                let keep = self.below(bytes.len().max(1));
                bytes[..keep].to_vec()
            }
            ArtifactFault::VersionSkew => {
                let text = String::from_utf8_lossy(&bytes).into_owned();
                // The envelope's own version field precedes the payload's
                // `model_version`, so the first match is the right one.
                let needle = format!("\"version\":{}", crate::io::FORMAT_VERSION);
                text.replacen(&needle, "\"version\":99", 1).into_bytes()
            }
        };
        std::fs::write(path, damaged)
    }

    /// Truncates the artifact's threshold vectors and reseals the digest
    /// — a buggy exporter that shipped shape-mismatched thresholds with
    /// an honest checksum. Only the structural screen
    /// (`ThresholdSet::validate`) can refuse this one.
    pub fn mismatch_artifact_thresholds(&mut self, artifact: &mut ModelArtifact) {
        let net = artifact.network.clone();
        self.poison_thresholds(&mut artifact.thresholds, &net, ThresholdFault::Truncate);
        artifact.digest = artifact.content_digest();
    }

    /// Grafts a foreign network's weights into the artifact (indicators
    /// recomputed, digest resealed) while keeping the original
    /// thresholds — the mixed-model artifact whose thresholds no longer
    /// fit the weights they ship with. `donor` must differ in topology
    /// from the artifact's own network for the mismatch to exist.
    pub fn graft_artifact_network(&mut self, artifact: &mut ModelArtifact, donor: &Network) {
        artifact.network = donor.clone();
        artifact.indicators = PolarityIndicators::from_network(donor);
        artifact.digest = artifact.content_digest();
    }

    /// Draws a seeded per-sample [`LatencySchedule`]: each slot of the
    /// 64-entry table stalls with probability `rate` for a uniform
    /// duration up to `max_delay`. Consumes injector draws, so schedules
    /// drawn from one injector differ (but replay exactly per seed).
    pub fn latency_schedule(&mut self, rate: f64, max_delay: Duration) -> LatencySchedule {
        LatencySchedule::from_injector(self, rate, max_delay)
    }

    /// A per-shard panic poison: while `armed`, every sample of every
    /// request whose *primary* route is `target` panics (a `"chaos:"`
    /// payload, silenced by [`crate::chaos::SilencedChaosPanics`]).
    ///
    /// The hook only sees request ids, so after supervision quarantines
    /// the shard the same ids keep arriving — served by a *healthy*
    /// failover shard. The `gate` makes the poison die with its shard: a
    /// hook fires only while the supervisor (once the gate is filled)
    /// still reports `target` in the routing ring. Probes of the rebuilt
    /// shard and failed-over traffic run clean.
    pub fn shard_panic_hook(
        routing_seed: u64,
        shards: usize,
        target: usize,
        armed: Arc<AtomicBool>,
        gate: SupervisorGate,
    ) -> RequestSampleHook {
        Arc::new(move |id: u64, _attempt: u32, _sample: usize| {
            if armed.load(Ordering::Relaxed)
                && shard_route(routing_seed, shards, id) == target
                && gate_reports_live(&gate, target)
            {
                panic!("chaos: shard {target} poisoned — crashes every sample");
            }
        })
    }

    /// A per-shard hang poison: like
    /// [`FaultInjector::shard_panic_hook`], but the worker stalls for
    /// `stall` instead of panicking — long enough (relative to the
    /// resilience watchdog) to trigger requeues and typed `worker_hung`
    /// abandonment.
    pub fn shard_hang_hook(
        routing_seed: u64,
        shards: usize,
        target: usize,
        armed: Arc<AtomicBool>,
        gate: SupervisorGate,
        stall: Duration,
    ) -> RequestSampleHook {
        Arc::new(move |id: u64, _attempt: u32, _sample: usize| {
            if armed.load(Ordering::Relaxed)
                && shard_route(routing_seed, shards, id) == target
                && gate_reports_live(&gate, target)
            {
                std::thread::sleep(stall);
            }
        })
    }

    /// Masks that kill the worker of any sample they are applied to: the
    /// first dropout node receives a mask of the wrong shape, which the
    /// mask-application path rejects by panicking. Used to exercise the
    /// per-sample `catch_unwind` isolation in the MC runner.
    pub fn sample_killing_masks(bnet: &BayesianNetwork) -> DropoutMasks {
        let net = bnet.network();
        let mut masks = DropoutMasks::empty(net.len());
        if let Some(&node) = bnet.dropout_nodes().first() {
            let shape = net.shape(node);
            let wrong = Shape::new(shape.channels() + 1, shape.height(), shape.width());
            masks.insert(node, BitMask::ones(wrong));
        }
        masks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_nn::models;

    fn net() -> Network {
        models::lenet5(3)
    }

    #[test]
    fn injector_is_deterministic() {
        let mut a = FaultInjector::new(9);
        let mut b = FaultInjector::new(9);
        let (mut na, mut nb) = (net(), net());
        let (fa, fb) = (
            a.flip_conv_weight_bit(&mut na).unwrap(),
            b.flip_conv_weight_bit(&mut nb).unwrap(),
        );
        // Compare bit patterns: a flip may legitimately produce NaN.
        assert_eq!(
            (fa.site, fa.index, fa.bit, fa.after.to_bits()),
            (fb.site, fb.index, fb.bit, fb.after.to_bits())
        );
        let mut ta = Tensor::full(Shape::new(1, 4, 4), 0.5);
        let mut tb = Tensor::full(Shape::new(1, 4, 4), 0.5);
        let (ga, gb) = (a.flip_tensor_bit(&mut ta), b.flip_tensor_bit(&mut tb));
        assert_eq!(
            (ga.index, ga.bit, ga.after.to_bits()),
            (gb.index, gb.bit, gb.after.to_bits())
        );
    }

    #[test]
    fn weight_flip_changes_exactly_one_bit() {
        let mut n = net();
        let flip = FaultInjector::new(4).flip_conv_weight_bit(&mut n).unwrap();
        assert_eq!(
            (flip.before.to_bits() ^ flip.after.to_bits()).count_ones(),
            1
        );
    }

    #[test]
    fn nan_poisoning_lands_a_nan() {
        let mut n = net();
        let flip = FaultInjector::new(4)
            .poison_conv_weight_nan(&mut n)
            .unwrap();
        assert!(flip.after.is_nan());
        let poisoned = n
            .layers_mut()
            .filter_map(|(_, l)| l.as_conv_mut())
            .any(|c| c.weights_mut().iter().any(|w| w.is_nan()));
        assert!(poisoned);
    }

    #[test]
    fn mask_corruption_flips_requested_bits() {
        let bnet = BayesianNetwork::new(net(), 0.3);
        let clean = bnet.generate_masks(5, 0);
        let mut dirty = clean.clone();
        let flipped = FaultInjector::new(6).corrupt_masks(&mut dirty, 7);
        assert_eq!(flipped, 7);
        let diff: usize = clean
            .iter()
            .map(|(node, mask)| {
                let d = dirty.get(node).unwrap();
                (0..mask.len()).filter(|&i| mask.get(i) != d.get(i)).count()
            })
            .sum();
        // Flips can collide on the same bit; parity of the count survives.
        assert!((1..=7).contains(&diff), "diff {diff}");
    }

    #[test]
    fn threshold_poisoning_shapes() {
        let bnet = BayesianNetwork::new(net(), 0.3);
        let input = Tensor::full(bnet.network().input_shape(), 0.4);
        let clean = fbcnn_predictor::ThresholdOptimizer::default().optimize(&bnet, &input, 2);
        let mut inj = FaultInjector::new(11);

        let mut saturated = clean.clone();
        inj.poison_thresholds(&mut saturated, bnet.network(), ThresholdFault::Saturate);
        assert_eq!(saturated.validate(bnet.network()), Ok(()));
        assert!(saturated.mean() > clean.mean());

        let mut truncated = clean.clone();
        inj.poison_thresholds(&mut truncated, bnet.network(), ThresholdFault::Truncate);
        assert!(truncated.validate(bnet.network()).is_err());

        let mut misaddressed = clean.clone();
        inj.poison_thresholds(
            &mut misaddressed,
            bnet.network(),
            ThresholdFault::Misaddress,
        );
        assert!(misaddressed.validate(bnet.network()).is_err());
    }

    #[test]
    fn latency_schedule_is_seeded_and_bounded() {
        let cap = Duration::from_millis(3);
        let a = FaultInjector::new(77).latency_schedule(0.25, cap);
        let b = FaultInjector::new(77).latency_schedule(0.25, cap);
        for s in 0..200 {
            assert_eq!(a.delay_for(s), b.delay_for(s));
            assert!(a.delay_for(s) <= cap);
        }
        assert!(a.stalled_slots() > 0, "rate 0.25 over 64 slots");
        let none = FaultInjector::new(77).latency_schedule(0.0, cap);
        assert_eq!(none.stalled_slots(), 0);
    }

    #[test]
    fn killing_masks_have_a_wrong_shape() {
        let bnet = BayesianNetwork::new(net(), 0.3);
        let masks = FaultInjector::sample_killing_masks(&bnet);
        let node = bnet.dropout_nodes()[0];
        assert_ne!(masks.get(node).unwrap().shape(), bnet.network().shape(node));
    }

    #[test]
    fn shard_poison_dies_with_its_shards_quarantine() {
        use crate::supervise::{ShardHealth, SuperviseConfig, Supervisor};
        let _quiet = crate::chaos::SilencedChaosPanics::install();
        let (seed, shards, target) = (0x5EED, 2usize, 0usize);
        let armed = Arc::new(AtomicBool::new(true));
        let gate: SupervisorGate = Arc::new(std::sync::Mutex::new(None));
        let hook = FaultInjector::shard_panic_hook(
            seed,
            shards,
            target,
            Arc::clone(&armed),
            Arc::clone(&gate),
        );
        let id_on_target = (0..)
            .find(|&id| shard_route(seed, shards, id) == target)
            .unwrap();

        // Unfilled gate: the poison bites.
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (*hook)(id_on_target, 0, 0)))
                .is_err()
        );
        // Disarmed: quiet.
        armed.store(false, Ordering::Relaxed);
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (*hook)(id_on_target, 0, 0)))
                .is_ok()
        );
        armed.store(true, Ordering::Relaxed);

        // Filled gate, shard live: bites. Shard quarantined: the same id
        // (now failing over to a healthy shard) runs clean.
        let clock = Arc::new(fbcnn_telemetry::ManualClock::new());
        let sup = Arc::new(
            Supervisor::new(
                shards,
                seed,
                SuperviseConfig {
                    clock: clock.clone() as Arc<dyn fbcnn_telemetry::Clock>,
                    window_ns: 100,
                    min_observations: 2,
                    suspect_strikes: 1,
                    ..SuperviseConfig::default()
                },
            )
            .unwrap(),
        );
        *crate::supervise::lock_gate(&gate) = Some(Arc::clone(&sup));
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (*hook)(id_on_target, 0, 0)))
                .is_err()
        );
        // Two bad windows: Healthy → Suspect → Quarantined.
        for _ in 0..2 {
            for _ in 0..4 {
                sup.observe(
                    target,
                    crate::supervise::OutcomeSignal {
                        ok: false,
                        expired: false,
                        abandoned: false,
                        probe: false,
                    },
                );
            }
            clock.advance(101);
            sup.observe(
                target,
                crate::supervise::OutcomeSignal {
                    ok: false,
                    expired: false,
                    abandoned: false,
                    probe: false,
                },
            );
        }
        assert_eq!(sup.health(target), ShardHealth::Quarantined);
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (*hook)(id_on_target, 0, 0)))
                .is_ok()
        );
    }
}
