//! Plain-text table formatting and JSON persistence for experiment
//! results.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// Formats a fixed-width text table (the style the bench harnesses print).
///
/// # Examples
///
/// ```
/// let t = fast_bcnn::report::format_table(
///     &["design", "speedup"],
///     &[vec!["FB-64".to_string(), "3.1x".to_string()]],
/// );
/// assert!(t.contains("FB-64"));
/// ```
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "| {h:<w$} ");
    }
    line.push('|');
    let _ = writeln!(out, "{line}");
    let mut sep = String::new();
    for w in &widths {
        let _ = write!(sep, "|{:-<1$}", "", w + 2);
    }
    sep.push('|');
    let _ = writeln!(out, "{sep}");
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "| {cell:<w$} ");
        }
        line.push('|');
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Serializes a result record to pretty JSON at `path`.
///
/// # Errors
///
/// Returns any I/O or serialization error.
pub fn save_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, json)
}

/// Formats a ratio as a percentage string (`0.423` → `"42.3%"`).
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a speedup (`3.14159` → `"3.14x"`).
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["a", "long-header"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn pct_and_speedup_formatting() {
        assert_eq!(pct(0.423), "42.3%");
        assert_eq!(speedup(2.675), "2.67x");
    }

    #[test]
    fn save_json_roundtrip() {
        let dir = std::env::temp_dir().join("fbcnn_report_test.json");
        save_json(&dir, &vec![1, 2, 3]).unwrap();
        let back: Vec<i32> = serde_json::from_str(&std::fs::read_to_string(&dir).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_file(dir);
    }
}
