//! Batched multi-request inference — the serving layer over [`Engine`].
//!
//! A [`BatchEngine`] accepts a queue of [`BatchRequest`]s and serves them
//! through one shared pipeline instead of `N` isolated calls:
//!
//! * the input-invariant predictor state
//!   ([`fbcnn_predictor::PredictorShared`]: thresholds, indicator maps,
//!   structural flags) is built once and `Arc`-shared by every request;
//! * per-input pre-inference products ([`PreparedInput`]) are cached by
//!   input fingerprint, so a repeated input skips the dropout-free pass
//!   and goes straight to mask generation;
//! * conv scratch buffers come from a [`Workspace`] pool, one checkout
//!   per worker for the whole batch;
//! * requests are drained work-stealing style by `threads` crossbeam
//!   workers, and the exact-path companion
//!   ([`BatchEngine::predict_exact_batch`]) interleaves the individual
//!   `(request, sample)` units across workers via
//!   [`McDropout::run_batch`].
//!
//! **Headline invariant:** serving `N` requests through
//! [`BatchEngine::run_batch`] is *bit-identical* to `N` sequential
//! [`Engine::predict_robust_seeded`] calls with the same per-request
//! seeds — the batch only amortizes work whose results are deterministic
//! in the input (pre-inference, indicator profiling) and threads the
//! identical [`Engine::robust_core`] underneath. The golden-vector and
//! determinism suites under `tests/` pin this.
//!
//! Per-request seeds default to
//! [`fbcnn_bayes::derive_request_seed`]`(engine_seed, request.id)`, which
//! guarantees two requests in one batch never replay the same LFSR
//! streams (see `fbcnn_bayes::seed`).

use crate::engine::{Engine, RobustConfig, RobustReport};
use crate::error::InferenceError;
use crate::resilience::RunControl;
use fbcnn_bayes::{derive_request_seed, McDropout, McRequest, Prediction};
use fbcnn_nn::Workspace;
use fbcnn_predictor::{PredictiveInference, PredictorShared, PreparedInput};
use fbcnn_tensor::Tensor;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One inference request in a batch.
#[derive(Debug, Clone)]
pub struct BatchRequest {
    /// Caller-chosen request id; feeds the default seed derivation, so
    /// ids should be unique within a batch (duplicate ids legally yield
    /// identical streams).
    pub id: u64,
    /// The input image.
    pub input: Tensor,
    /// Explicit mask-seed override. `None` (the default) derives the
    /// seed as `derive_request_seed(engine_seed, id)`.
    pub seed: Option<u64>,
}

impl BatchRequest {
    /// A request with the default (derived) seed.
    pub fn new(id: u64, input: Tensor) -> Self {
        Self {
            id,
            input,
            seed: None,
        }
    }

    /// The mask seed this request resolves to under `engine_seed`.
    pub fn resolved_seed(&self, engine_seed: u64) -> u64 {
        self.seed
            .unwrap_or_else(|| derive_request_seed(engine_seed, self.id))
    }
}

/// Knobs of a [`BatchEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Worker threads draining the request queue (and serving the
    /// exact-path sample units). 1 = sequential; results are identical
    /// either way.
    pub threads: usize,
    /// Capacity of the pre-inference cache in distinct inputs; 0
    /// disables caching. Eviction is FIFO by first insertion.
    pub cache_capacity: usize,
    /// Robustness knobs applied to every request's staged pipeline.
    pub robust: RobustConfig,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            cache_capacity: 64,
            robust: RobustConfig::default(),
        }
    }
}

/// What one request produced.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The request's id, copied through.
    pub id: u64,
    /// The seed the request actually ran with.
    pub seed: u64,
    /// Nanoseconds between batch submission and a worker picking the
    /// request up.
    pub queue_wait_ns: u64,
    /// Whether the pre-inference came from the cache.
    pub cache_hit: bool,
    /// The prediction (or the request's private failure — one bad
    /// request never fails its batch-mates).
    pub result: Result<(Prediction, RobustReport), InferenceError>,
}

/// The outcome of one [`BatchEngine::run_batch`] call.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-request outcomes, in request order.
    pub outcomes: Vec<BatchOutcome>,
    /// How many requests the batch held.
    pub depth: usize,
    /// Pre-inference cache hits within this batch.
    pub cache_hits: usize,
    /// Pre-inference cache misses within this batch.
    pub cache_misses: usize,
    /// Wall-clock of the whole batch, nanoseconds.
    pub elapsed_ns: u64,
}

impl BatchReport {
    /// Whether every request produced a prediction.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }

    /// Requests served per second (successful or not).
    pub fn throughput_rps(&self) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.depth as f64 / (self.elapsed_ns as f64 / 1e9)
        }
    }
}

/// FIFO-evicting fingerprint → prepared-input cache.
#[derive(Debug, Default)]
struct PreCache {
    map: HashMap<u64, Arc<PreparedInput>>,
    order: VecDeque<u64>,
}

impl PreCache {
    fn get(&self, key: u64, input: &Tensor) -> Option<Arc<PreparedInput>> {
        // `matches` is the fingerprint-collision backstop: a hit is only
        // a hit when the cached entry was prepared for this exact input,
        // preserving bit-identity unconditionally.
        self.map
            .get(&key)
            .filter(|p| p.matches(input))
            .map(Arc::clone)
    }

    fn insert(&mut self, key: u64, value: Arc<PreparedInput>, capacity: usize) {
        if capacity == 0 {
            return;
        }
        if self.map.insert(key, value).is_none() {
            self.order.push_back(key);
            while self.order.len() > capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }
}

/// The batched inference engine; see the module docs.
#[derive(Debug)]
pub struct BatchEngine {
    engine: Engine,
    cfg: BatchConfig,
    shared: Arc<PredictorShared>,
    cache: Mutex<PreCache>,
    workspaces: Mutex<Vec<Workspace>>,
}

impl BatchEngine {
    /// Wraps an engine for batched serving, building the shared
    /// predictor state once.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.threads == 0`.
    pub fn new(engine: Engine, cfg: BatchConfig) -> Self {
        assert!(cfg.threads > 0, "need at least one worker thread");
        let shared = Arc::new(engine.predictor_shared());
        Self {
            engine,
            cfg,
            shared,
            cache: Mutex::new(PreCache::default()),
            workspaces: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The batch configuration.
    pub fn batch_config(&self) -> &BatchConfig {
        &self.cfg
    }

    /// Distinct inputs currently held by the pre-inference cache.
    pub fn cached_inputs(&self) -> usize {
        self.cache.lock().map(|c| c.map.len()).unwrap_or(0)
    }

    /// Serves a batch of requests through the shared pipeline. Requests
    /// are drained by `threads` workers; each outcome lands at its
    /// request's position. Per-request failures are reported in the
    /// outcome, never propagated across requests.
    pub fn run_batch(&self, requests: &[BatchRequest]) -> BatchReport {
        let _span = fbcnn_telemetry::span_with("batch_run", || {
            vec![("depth".into(), requests.len().to_string())]
        });
        fbcnn_telemetry::counter_add("batch_requests", &[], requests.len() as u64);
        fbcnn_telemetry::histogram_record("batch_depth", &[], requests.len() as f64);
        let submitted = Instant::now();
        let mut slots: Vec<Option<BatchOutcome>> = Vec::new();
        slots.resize_with(requests.len(), || None);
        if !requests.is_empty() {
            let workers = self.cfg.threads.min(requests.len());
            let next = AtomicUsize::new(0);
            let next_ref = &next;
            // Direct-indexed result slots: each worker owns the requests
            // it steals, communicated back through the join handles.
            let scope_result = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(move |_| {
                            let mut ws = self.checkout_workspace();
                            let mut served: Vec<(usize, BatchOutcome)> = Vec::new();
                            loop {
                                let i = next_ref.fetch_add(1, Ordering::Relaxed);
                                let Some(req) = requests.get(i) else { break };
                                let queue_wait_ns = submitted.elapsed().as_nanos() as u64;
                                fbcnn_telemetry::histogram_record(
                                    "batch_queue_wait_ns",
                                    &[],
                                    queue_wait_ns as f64,
                                );
                                let ctl = RunControl::none();
                                served.push((i, self.serve_one(req, queue_wait_ns, &mut ws, &ctl)));
                            }
                            self.return_workspace(ws);
                            served
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .filter_map(|h| h.join().ok())
                    .flatten()
                    .collect::<Vec<_>>()
            });
            if let Ok(done) = scope_result {
                for (i, outcome) in done {
                    slots[i] = Some(outcome);
                }
            }
        }
        let mut cache_hits = 0usize;
        let mut cache_misses = 0usize;
        let outcomes: Vec<BatchOutcome> = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                // A lost worker (panic past the per-request isolation)
                // surfaces as a typed per-request failure, not a poisoned
                // batch.
                let outcome = slot.unwrap_or_else(|| BatchOutcome {
                    id: requests[i].id,
                    seed: requests[i].resolved_seed(self.engine.config().seed),
                    queue_wait_ns: 0,
                    cache_hit: false,
                    result: Err(InferenceError::AllSamplesFailed {
                        requested: self.engine.config().samples,
                    }),
                });
                if outcome.result.is_ok() || outcome.queue_wait_ns > 0 {
                    if outcome.cache_hit {
                        cache_hits += 1;
                    } else {
                        cache_misses += 1;
                    }
                }
                outcome
            })
            .collect();
        fbcnn_telemetry::counter_add("batch_cache_hits", &[], cache_hits as u64);
        fbcnn_telemetry::counter_add("batch_cache_misses", &[], cache_misses as u64);
        BatchReport {
            depth: requests.len(),
            cache_hits,
            cache_misses,
            elapsed_ns: submitted.elapsed().as_nanos() as u64,
            outcomes,
        }
    }

    /// Batched *exact* MC-dropout (no skipping, no robust staging):
    /// every request's `T` sample units are interleaved across the
    /// worker threads via [`McDropout::run_batch`]. Bit-identical to
    /// per-request [`Engine::predict_exact`] with the same seeds.
    ///
    /// # Errors
    ///
    /// [`InferenceError::Bayes`] when an input does not fit the network
    /// or a request loses every sample.
    pub fn predict_exact_batch(
        &self,
        requests: &[BatchRequest],
    ) -> Result<Vec<Prediction>, InferenceError> {
        let engine_seed = self.engine.config().seed;
        let mc_requests: Vec<McRequest<'_>> = requests
            .iter()
            .map(|r| McRequest {
                input: &r.input,
                seed: r.resolved_seed(engine_seed),
            })
            .collect();
        let runs = McDropout::new(self.engine.config().samples, engine_seed)
            .run_batch(
                self.engine.bayesian_network(),
                &mc_requests,
                self.cfg.threads,
            )
            .map_err(InferenceError::Bayes)?;
        Ok(runs.into_iter().map(|r| r.prediction).collect())
    }

    /// Serves one request under explicit run control (deadline token,
    /// forced path, sample cap, fault hook) through the shared
    /// pre-inference cache and workspace pool — the resilience layer's
    /// entry point. With [`RunControl::none`] this is exactly one
    /// [`BatchEngine::run_batch`] slot.
    pub fn run_request(&self, req: &BatchRequest, ctl: &RunControl) -> BatchOutcome {
        let mut ws = self.checkout_workspace();
        let outcome = self.serve_one(req, 0, &mut ws, ctl);
        self.return_workspace(ws);
        outcome
    }

    /// Serves one request: validation, cached pre-inference, then the
    /// exact staged pipeline of [`Engine::predict_robust_seeded_with`].
    fn serve_one(
        &self,
        req: &BatchRequest,
        queue_wait_ns: u64,
        ws: &mut Workspace,
        ctl: &RunControl,
    ) -> BatchOutcome {
        let _span = fbcnn_telemetry::span("batch_request");
        let seed = req.resolved_seed(self.engine.config().seed);
        let mut outcome = BatchOutcome {
            id: req.id,
            seed,
            queue_wait_ns,
            cache_hit: false,
            result: Err(InferenceError::AllSamplesFailed {
                requested: self.engine.config().samples,
            }),
        };
        let net = self.engine.network();
        if let Err(e) = net.check_input(&req.input) {
            outcome.result = Err(e.into());
            return outcome;
        }
        if let Err(e) = self.shared.thresholds().validate(net) {
            outcome.result = Err(e.into());
            return outcome;
        }
        let (prepared, cache_hit) = self.prepare(&req.input);
        outcome.cache_hit = cache_hit;
        let fast = PredictiveInference::from_parts(
            self.engine.bayesian_network(),
            Arc::clone(&self.shared),
            prepared,
        );
        outcome.result =
            self.engine
                .robust_core(&fast, &req.input, seed, &self.cfg.robust, ws, ctl);
        outcome
    }

    /// Looks the input's pre-inference up by fingerprint, computing and
    /// caching it on a miss. Returns `(prepared, was_hit)`.
    fn prepare(&self, input: &Tensor) -> (Arc<PreparedInput>, bool) {
        let key = PreparedInput::fingerprint(input);
        if let Ok(cache) = self.cache.lock() {
            if let Some(hit) = cache.get(key, input) {
                fbcnn_telemetry::counter_add("predictor_preinference_cache", &[("hit", "yes")], 1);
                return (hit, true);
            }
        }
        // Prepare outside the lock: concurrent misses on the same input
        // duplicate work once instead of serializing the whole batch.
        let prepared = Arc::new(PreparedInput::new(self.engine.bayesian_network(), input));
        fbcnn_telemetry::counter_add("predictor_preinference_cache", &[("hit", "no")], 1);
        if let Ok(mut cache) = self.cache.lock() {
            cache.insert(key, Arc::clone(&prepared), self.cfg.cache_capacity);
        }
        (prepared, false)
    }

    fn checkout_workspace(&self) -> Workspace {
        self.workspaces
            .lock()
            .ok()
            .and_then(|mut pool| pool.pop())
            .unwrap_or_default()
    }

    fn return_workspace(&self, ws: Workspace) {
        if let Ok(mut pool) = self.workspaces.lock() {
            pool.push(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{synth_input, EngineConfig};
    use fbcnn_nn::models::ModelKind;

    fn small_engine() -> Engine {
        Engine::new(EngineConfig {
            samples: 4,
            calibration_samples: 3,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        })
    }

    fn requests(engine: &Engine, n: usize) -> Vec<BatchRequest> {
        (0..n)
            .map(|i| {
                BatchRequest::new(
                    i as u64,
                    synth_input(engine.network().input_shape(), 100 + (i % 3) as u64),
                )
            })
            .collect()
    }

    #[test]
    fn batch_matches_sequential_robust_calls() {
        let engine = small_engine();
        let reqs = requests(&engine, 5);
        let batch = BatchEngine::new(engine.clone(), BatchConfig::default());
        let report = batch.run_batch(&reqs);
        assert!(report.all_ok());
        assert_eq!(report.depth, 5);
        for (req, outcome) in reqs.iter().zip(&report.outcomes) {
            assert_eq!(req.id, outcome.id);
            let (seq_pred, seq_report) = engine
                .predict_robust_seeded(&req.input, outcome.seed)
                .unwrap();
            let (batch_pred, batch_report) = outcome.result.as_ref().unwrap();
            assert_eq!(batch_pred, &seq_pred, "request {} diverged", req.id);
            assert_eq!(batch_report, &seq_report);
        }
    }

    #[test]
    fn repeated_inputs_hit_the_cache_without_changing_results() {
        let engine = small_engine();
        // 6 requests over 3 distinct inputs: second occurrence hits.
        let reqs = requests(&engine, 6);
        let batch = BatchEngine::new(engine, BatchConfig::default());
        let report = batch.run_batch(&reqs);
        assert!(report.all_ok());
        assert_eq!(report.cache_hits + report.cache_misses, 6);
        assert_eq!(report.cache_misses, 3, "three distinct inputs");
        assert_eq!(report.cache_hits, 3);
        assert_eq!(batch.cached_inputs(), 3);
        // A second batch over the same inputs is all hits.
        let again = batch.run_batch(&reqs);
        assert_eq!(again.cache_hits, 6);
        // Hit results equal miss results (same request, same seed).
        for (a, b) in report.outcomes.iter().zip(&again.outcomes) {
            assert_eq!(a.result.as_ref().unwrap().0, b.result.as_ref().unwrap().0);
        }
    }

    #[test]
    fn results_are_invariant_under_thread_count() {
        let engine = small_engine();
        let reqs = requests(&engine, 4);
        let reference: Vec<Prediction> = {
            let batch = BatchEngine::new(engine.clone(), BatchConfig::default());
            batch
                .run_batch(&reqs)
                .outcomes
                .into_iter()
                .map(|o| o.result.unwrap().0)
                .collect()
        };
        for threads in [2, 4] {
            let batch = BatchEngine::new(
                engine.clone(),
                BatchConfig {
                    threads,
                    ..BatchConfig::default()
                },
            );
            let report = batch.run_batch(&reqs);
            for (i, outcome) in report.outcomes.into_iter().enumerate() {
                assert_eq!(
                    outcome.result.unwrap().0,
                    reference[i],
                    "request {i} diverged at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn a_bad_request_fails_alone() {
        let engine = small_engine();
        let mut reqs = requests(&engine, 3);
        reqs[1].input = Tensor::zeros(fbcnn_tensor::Shape::new(1, 2, 2));
        let batch = BatchEngine::new(engine, BatchConfig::default());
        let report = batch.run_batch(&reqs);
        assert!(!report.all_ok());
        assert!(report.outcomes[0].result.is_ok());
        assert!(matches!(
            report.outcomes[1].result,
            Err(InferenceError::Input(_))
        ));
        assert!(report.outcomes[2].result.is_ok());
    }

    #[test]
    fn exact_batch_matches_predict_exact_per_request_seed() {
        let engine = small_engine();
        let reqs = requests(&engine, 3);
        let batch = BatchEngine::new(engine.clone(), BatchConfig::default());
        let exact = batch.predict_exact_batch(&reqs).unwrap();
        for (req, pred) in reqs.iter().zip(&exact) {
            let seed = req.resolved_seed(engine.config().seed);
            let standalone = McDropout::new(engine.config().samples, seed)
                .run(engine.bayesian_network(), &req.input);
            assert_eq!(pred, &standalone);
        }
    }

    #[test]
    fn seed_override_is_honored() {
        let engine = small_engine();
        let input = synth_input(engine.network().input_shape(), 42);
        let mut req = BatchRequest::new(9, input.clone());
        req.seed = Some(777);
        assert_eq!(req.resolved_seed(engine.config().seed), 777);
        let batch = BatchEngine::new(engine.clone(), BatchConfig::default());
        let report = batch.run_batch(std::slice::from_ref(&req));
        let (pred, _) = report.outcomes[0].result.as_ref().unwrap().clone();
        let (seq, _) = engine.predict_robust_seeded(&input, 777).unwrap();
        assert_eq!(pred, seq);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let engine = small_engine();
        let reqs = requests(&engine, 4);
        let batch = BatchEngine::new(
            engine,
            BatchConfig {
                cache_capacity: 0,
                ..BatchConfig::default()
            },
        );
        let report = batch.run_batch(&reqs);
        assert!(report.all_ok());
        assert_eq!(report.cache_hits, 0);
        assert_eq!(batch.cached_inputs(), 0);
    }

    #[test]
    fn empty_batch_reports_empty() {
        let batch = BatchEngine::new(small_engine(), BatchConfig::default());
        let report = batch.run_batch(&[]);
        assert_eq!(report.depth, 0);
        assert!(report.outcomes.is_empty());
        assert!(report.all_ok());
    }
}
