//! Resilient serving around the batch engine: deadlines, cancellation,
//! retry with seeded backoff, a fast-path circuit breaker, admission
//! control with load shedding, and a worker watchdog.
//!
//! The layer wraps [`BatchEngine`] without changing its numerics: a
//! request served with no deadline pressure, a closed breaker and no
//! faults is bit-identical to a sequential
//! [`Engine::predict_robust_seeded`] call (the determinism suites pin
//! this). Resilience only decides *whether*, *when* and *on which path*
//! the identical staged pipeline runs:
//!
//! * **Deadlines / cancellation** — a [`fbcnn_bayes::CancelToken`] is
//!   checked at every MC sample boundary; an expired request returns the
//!   partial-T mean over its completed samples, flagged
//!   [`DegradedMode::PartialSamples`] (valid because samples are i.i.d.),
//!   or a typed [`InferenceError::Expired`] when nothing completed.
//! * **Retry** — only typed-*transient* failures are retried
//!   ([`retry_class`]): panic-isolated total sample loss and (optionally)
//!   canary trips. Numeric faults, structural violations, expiry and
//!   overload never retry. Backoff is seeded deterministic exponential
//!   with an injectable [`Jitter`] source.
//! * **Circuit breaker** — a sliding-window error-rate tracker over fast
//!   path attempts; when it opens, requests are served on the exact path
//!   (`force_exact`) until a request-count cooldown half-opens it for
//!   probe requests. Request-count cooldown (not wall clock) keeps the
//!   transition sequence deterministic enough to golden-pin.
//! * **Admission control** — a bounded queue with a [`ShedPolicy`];
//!   rejected requests carry a typed [`InferenceError::Overloaded`],
//!   degraded ones run with a smaller sample budget.
//! * **Watchdog** — hung work units are requeued (bounded times) to a
//!   fresh worker instead of hanging the batch; an abandoned unit carries
//!   a typed [`InferenceError::WorkerHung`]. The same watchdog guards the
//!   single-request paths ([`ResilientBatchEngine::run_request`] /
//!   `run_request_classed`): with a timeout configured, each attempt runs
//!   on a watched worker thread, so a wedged engine can never hang a
//!   network connection.
//!
//! Every decision is exported as a `breaker_*` / `shed_*` / `retry_*` /
//! `deadline_*` / `watchdog_*` telemetry counter (see
//! `docs/OBSERVABILITY.md`) and must reconcile exactly with the
//! per-request outcomes — the chaos harness asserts this.

use crate::batch::{BatchEngine, BatchOutcome, BatchRequest};
use crate::engine::{DegradedMode, RobustReport};
use crate::error::InferenceError;
use fbcnn_bayes::{CancelToken, Prediction};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A per-sample hook fired inside the panic-isolated sample execution —
/// the injection point for latency faults and chaos (a panicking hook is
/// a contained lost sample).
pub type SampleHook = Arc<dyn Fn(usize) + Send + Sync>;

/// Run-level control threaded into [`Engine::robust_core`]'s staged
/// pipeline by the resilience layer.
///
/// [`RunControl::none`] (also `Default`) reproduces uncontrolled behavior
/// bit-for-bit; every field tightens one aspect:
///
/// [`Engine::robust_core`]: crate::Engine
#[derive(Clone, Default)]
pub struct RunControl {
    /// Cancellation/deadline token, checked before every sample.
    pub cancel: CancelToken,
    /// Serve on the exact path without consulting the canary (an open
    /// circuit breaker's verdict).
    pub force_exact: bool,
    /// Cap the sample budget below the configured `T` (admission-control
    /// degradation); clamped to at least 1.
    pub max_samples: Option<usize>,
    /// Optional per-sample hook; see [`SampleHook`].
    pub sample_hook: Option<SampleHook>,
}

impl fmt::Debug for RunControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunControl")
            .field("force_exact", &self.force_exact)
            .field("max_samples", &self.max_samples)
            .field("sample_hook", &self.sample_hook.is_some())
            .finish()
    }
}

impl RunControl {
    /// No deadline, no cap, fast path allowed, no hook — behaves exactly
    /// like the pre-resilience pipeline.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fires the sample hook, if any.
    pub(crate) fn fire_sample_hook(&self, sample: usize) {
        if let Some(hook) = &self.sample_hook {
            hook(sample);
        }
    }
}

/// Whether a failed request is worth retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryClass {
    /// The failure is plausibly ephemeral (panic-isolated sample loss);
    /// an identical re-run may succeed.
    Transient,
    /// Retrying cannot help: the fault is in the data, the configuration
    /// or the budget itself.
    Permanent,
}

/// Classifies an [`InferenceError`] for the retry policy; the taxonomy
/// table in `docs/RESILIENCE.md` documents the reasoning per variant.
pub fn retry_class(error: &InferenceError) -> RetryClass {
    match error {
        // Total sample loss comes from panic-isolated workers — the one
        // failure shape that is routinely ephemeral (a poisoned mask
        // buffer, a torn scratch allocation).
        InferenceError::AllSamplesFailed { .. } => RetryClass::Transient,
        // Structural and numeric faults are properties of the request or
        // the engine state: identical retries fail identically.
        InferenceError::Input(_)
        | InferenceError::Thresholds(_)
        | InferenceError::Numeric(_)
        | InferenceError::Bayes(_) => RetryClass::Permanent,
        // Expiry means the budget is spent; retrying spends more.
        // Overload and abandonment are batch-level verdicts.
        InferenceError::Expired { .. }
        | InferenceError::Overloaded { .. }
        | InferenceError::WorkerHung { .. } => RetryClass::Permanent,
    }
}

/// A backoff jitter source; injectable so tests can pin sleep durations.
pub trait Jitter: Send + Sync {
    /// A factor in `[0.5, 1.0]` for the given mix token (derived from
    /// policy seed, request seed and attempt index).
    fn factor(&self, token: u64) -> f64;
}

/// The default jitter: a splitmix64 hash of the token mapped into
/// `[0.5, 1.0]` — fully determined by `(policy seed, request seed,
/// attempt)`, so reruns back off identically.
#[derive(Debug, Clone, Copy, Default)]
pub struct SeededJitter;

pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Jitter for SeededJitter {
    fn factor(&self, token: u64) -> f64 {
        0.5 + (mix64(token) >> 11) as f64 / (1u64 << 53) as f64 * 0.5
    }
}

/// A jitter source that always returns 1.0 — pure exponential backoff,
/// used by tests and the deterministic chaos schedule.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoJitter;

impl Jitter for NoJitter {
    fn factor(&self, _token: u64) -> f64 {
        1.0
    }
}

/// Seeded deterministic exponential-backoff retry policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retry attempts beyond the first execution (0 disables retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per further attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed mixed into the jitter token.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            seed: 0x5EED_BACC,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based) of the
    /// request with `request_seed`: `min(cap, base · 2^attempt)` scaled
    /// by the jitter factor for the derived token.
    pub fn backoff(&self, request_seed: u64, attempt: u32, jitter: &dyn Jitter) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(2u32.saturating_pow(attempt))
            .min(self.max_backoff);
        let token = mix64(self.seed ^ request_seed).wrapping_add(u64::from(attempt));
        let factor = jitter.factor(token).clamp(0.0, 1.0);
        Duration::from_nanos((exp.as_nanos() as f64 * factor) as u64)
    }
}

/// Circuit-breaker states; named after the electrical metaphor — an
/// *open* circuit does not conduct (the fast path is bypassed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Fast path in use; failures tracked in the sliding window.
    Closed,
    /// Fast path bypassed: every request is served exact. After
    /// `cooldown_requests` served, the breaker half-opens.
    Open,
    /// Probe requests run the fast path again; a failure reopens, enough
    /// successes close.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name — the `from`/`to` telemetry label.
    pub fn name(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// Knobs of the fast-path [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Sliding-window length in observations.
    pub window: usize,
    /// Observations required before the error rate is meaningful.
    pub min_observations: usize,
    /// Error rate (strictly) above which the breaker opens, in (0, 1].
    pub threshold: f64,
    /// Requests served exact while open before half-opening. Counted in
    /// requests, not wall time, so transition sequences are
    /// deterministic under a single-threaded schedule.
    pub cooldown_requests: usize,
    /// Consecutive successful probes required to close again.
    pub probes: usize,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            window: 16,
            min_observations: 8,
            threshold: 0.5,
            cooldown_requests: 8,
            probes: 2,
        }
    }
}

/// What the breaker told a request attempt to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathDecision {
    /// Run the normal staged pipeline (canary + fast path).
    Fast,
    /// Serve on the exact path; do not consult the canary.
    ForcedExact,
    /// Run the fast path as a half-open probe; the result decides the
    /// breaker's fate.
    Probe,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    /// Sliding window of recent fast-path attempts; `true` = failure.
    window: VecDeque<bool>,
    /// Requests served while open (cooldown progress).
    open_served: usize,
    /// Consecutive successful probes while half-open.
    probes_passed: usize,
    transitions: Vec<(BreakerState, BreakerState)>,
}

/// Sliding-window error-rate circuit breaker for the fast path; see the
/// module docs for the state machine.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<BreakerInner>,
    /// A jammed breaker (chaos fault class) stays `Open` forever: no
    /// cooldown, no half-open probes, no observations. Only replacing
    /// the breaker — which is what a shard rebuild does — clears it.
    jammed: AtomicBool,
}

impl CircuitBreaker {
    /// A closed breaker with the given knobs.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                window: VecDeque::with_capacity(cfg.window.max(1)),
                open_served: 0,
                probes_passed: 0,
                transitions: Vec::new(),
            }),
            jammed: AtomicBool::new(false),
        }
    }

    /// Jams the breaker open: every subsequent attempt is forced onto
    /// the exact path and no transition can ever close it again. This is
    /// the chaos layer's breaker fault — persistent, and curable only by
    /// swapping in a fresh breaker (a shard rebuild).
    pub fn jam_open(&self) {
        self.jammed.store(true, Ordering::Release);
        let mut inner = self.lock();
        if inner.state != BreakerState::Open {
            Self::transition(&mut inner, BreakerState::Open);
            inner.open_served = 0;
        }
    }

    /// Whether [`CircuitBreaker::jam_open`] was called.
    pub fn is_jammed(&self) -> bool {
        self.jammed.load(Ordering::Acquire)
    }

    /// The breaker configuration.
    pub fn config(&self) -> &BreakerConfig {
        &self.cfg
    }

    /// The current state.
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Every state transition since construction, in order.
    pub fn transitions(&self) -> Vec<(BreakerState, BreakerState)> {
        self.lock().transitions.clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn transition(inner: &mut BreakerInner, to: BreakerState) {
        let from = inner.state;
        inner.state = to;
        inner.transitions.push((from, to));
        fbcnn_telemetry::counter_add(
            "breaker_transitions",
            &[("from", from.name()), ("to", to.name())],
            1,
        );
    }

    /// Routes one request attempt. Call exactly once per attempt and pair
    /// each call with one [`CircuitBreaker::observe`].
    pub fn decide(&self) -> PathDecision {
        if self.is_jammed() {
            fbcnn_telemetry::counter_add("breaker_forced_exact", &[], 1);
            return PathDecision::ForcedExact;
        }
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => PathDecision::Fast,
            BreakerState::Open => {
                if inner.open_served >= self.cfg.cooldown_requests {
                    Self::transition(&mut inner, BreakerState::HalfOpen);
                    inner.probes_passed = 0;
                    fbcnn_telemetry::counter_add("breaker_probes", &[("phase", "issued")], 1);
                    PathDecision::Probe
                } else {
                    inner.open_served += 1;
                    fbcnn_telemetry::counter_add("breaker_forced_exact", &[], 1);
                    PathDecision::ForcedExact
                }
            }
            BreakerState::HalfOpen => {
                fbcnn_telemetry::counter_add("breaker_probes", &[("phase", "issued")], 1);
                PathDecision::Probe
            }
        }
    }

    /// Reports the attempt's outcome back. `failure` means the fast path
    /// misbehaved: a typed error, or a canary trip on a non-forced
    /// attempt. Forced-exact outcomes carry no fast-path signal and are
    /// ignored.
    pub fn observe(&self, decision: PathDecision, failure: bool) {
        if self.is_jammed() {
            return;
        }
        let mut inner = self.lock();
        match (inner.state, decision) {
            (BreakerState::Closed, PathDecision::Fast) => {
                inner.window.push_back(failure);
                while inner.window.len() > self.cfg.window.max(1) {
                    inner.window.pop_front();
                }
                let n = inner.window.len();
                if n >= self.cfg.min_observations.max(1) {
                    let failures = inner.window.iter().filter(|&&f| f).count();
                    if failures as f64 / n as f64 > self.cfg.threshold {
                        Self::transition(&mut inner, BreakerState::Open);
                        inner.open_served = 0;
                        inner.window.clear();
                    }
                }
            }
            (BreakerState::HalfOpen, PathDecision::Probe) => {
                if failure {
                    fbcnn_telemetry::counter_add("breaker_probes", &[("phase", "failed")], 1);
                    Self::transition(&mut inner, BreakerState::Open);
                    inner.open_served = 0;
                } else {
                    fbcnn_telemetry::counter_add("breaker_probes", &[("phase", "passed")], 1);
                    inner.probes_passed += 1;
                    if inner.probes_passed >= self.cfg.probes.max(1) {
                        Self::transition(&mut inner, BreakerState::Closed);
                        inner.window.clear();
                        inner.probes_passed = 0;
                    }
                }
            }
            // Forced-exact outcomes, or observations arriving after a
            // concurrent transition: no fast-path signal, drop them.
            _ => {}
        }
    }
}

/// What admission control does with requests beyond the queue capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Drop the newest requests (the tail of the offered batch).
    RejectNewest,
    /// Drop the oldest requests (the head of the offered batch).
    RejectOldest,
    /// Admit everything but scale every request's sample budget down so
    /// total work stays near capacity; degraded requests are flagged
    /// [`DegradedMode::PartialSamples`].
    DegradeToFewerSamples,
}

impl ShedPolicy {
    /// Stable lowercase name — the `policy` telemetry label.
    pub fn name(&self) -> &'static str {
        match self {
            ShedPolicy::RejectNewest => "reject_newest",
            ShedPolicy::RejectOldest => "reject_oldest",
            ShedPolicy::DegradeToFewerSamples => "degrade_samples",
        }
    }
}

/// Knobs of a [`ResilientBatchEngine`]; `Default` disables everything
/// optional (no deadline, unbounded queue, no watchdog) and keeps the
/// default retry/breaker settings.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Per-request wall-clock deadline, spanning retries.
    pub deadline: Option<Duration>,
    /// Per-request deterministic sample budget (expires after this many
    /// sample checkpoints, spanning retries) — the testable deadline.
    pub sample_budget: Option<u64>,
    /// Retry policy for typed-transient failures.
    pub retry: RetryPolicy,
    /// Also retry canary trips (a tripped canary may be ephemeral; the
    /// exact-path result is kept if retries keep tripping).
    pub retry_canary_trips: bool,
    /// Circuit-breaker knobs.
    pub breaker: BreakerConfig,
    /// Bounded queue capacity per `run_batch` call; 0 = unbounded.
    pub queue_capacity: usize,
    /// What to do with the overflow.
    pub shed_policy: ShedPolicy,
    /// Sample-budget floor for [`ShedPolicy::DegradeToFewerSamples`].
    pub min_degraded_samples: usize,
    /// Watchdog timeout for a claimed-but-unfinished work unit; `None`
    /// disables the watchdog (and its extra worker threads). With a
    /// timeout set, single-request serving also runs each attempt on a
    /// watched worker thread — hung attempts are requeued and finally
    /// abandoned instead of blocking the caller.
    pub watchdog_timeout: Option<Duration>,
    /// Times a hung unit is requeued before it is abandoned with a typed
    /// [`InferenceError::WorkerHung`].
    pub max_requeues: u32,
    /// Deadline class this engine serves — the `class` label on the
    /// `request_latency_ns` / `request_outcomes` telemetry the SLO
    /// monitor windows, and the class [`crate::FlightRecord`]s carry.
    pub deadline_class: String,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            deadline: None,
            sample_budget: None,
            retry: RetryPolicy::default(),
            retry_canary_trips: true,
            breaker: BreakerConfig::default(),
            queue_capacity: 0,
            shed_policy: ShedPolicy::RejectNewest,
            min_degraded_samples: 1,
            watchdog_timeout: None,
            max_requeues: 2,
            deadline_class: "default".to_string(),
        }
    }
}

impl ResilienceConfig {
    /// Builds the config from the CLI-facing [`crate::EngineConfig`]
    /// fields (`deadline_ms`, `retry_max`, `breaker_threshold`), keeping
    /// every other knob at its default.
    pub fn from_engine_config(cfg: &crate::EngineConfig) -> Self {
        Self {
            deadline: cfg.deadline_ms.map(Duration::from_millis),
            retry: RetryPolicy {
                max_retries: cfg.retry_max,
                seed: cfg.seed ^ 0x5EED_BACC,
                ..RetryPolicy::default()
            },
            breaker: BreakerConfig {
                threshold: cfg.breaker_threshold,
                ..BreakerConfig::default()
            },
            ..Self::default()
        }
    }
}

/// A per-request serving class: the network tier's admission control
/// prices each request's SLO class into one of these before handing it
/// to the resilience layer. A `Some` field overrides the engine-level
/// [`ResilienceConfig`] knob for this one request; the `name` always
/// overrides the telemetry `class` label, so `request_latency_ns{class}`
/// and `request_outcomes{class,result}` are tiered end-to-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestClass {
    /// Class label on the request's telemetry and flight records.
    pub name: String,
    /// Wall-clock deadline override (spanning retries).
    pub deadline: Option<Duration>,
    /// Deterministic sample-budget override (the testable deadline).
    pub sample_budget: Option<u64>,
}

impl RequestClass {
    /// A class that only relabels telemetry, keeping the engine's own
    /// deadline and budget.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            deadline: None,
            sample_budget: None,
        }
    }
}

/// One request's outcome under the resilience layer: the inner
/// [`BatchOutcome`] plus everything the layer decided around it.
#[derive(Debug, Clone)]
pub struct ResilientOutcome {
    /// The wrapped outcome (id, seed, result). Shed and abandoned
    /// requests carry a synthesized outcome with the typed error.
    pub outcome: BatchOutcome,
    /// Execution attempts (1 on the happy path; 0 for shed requests).
    pub attempts: u32,
    /// Watchdog requeues this request's unit went through.
    pub requeues: u32,
    /// Whether the final attempt was forced onto the exact path by an
    /// open breaker.
    pub forced_exact: bool,
    /// Whether the final attempt was a half-open probe.
    pub probe: bool,
    /// Whether admission control shed the request outright.
    pub shed: bool,
    /// Whether a retryable failure survived every allowed attempt (for a
    /// canary-trip chain the final outcome is still a valid exact-path
    /// prediction, so this can be true alongside an `Ok` result).
    pub retry_exhausted: bool,
    /// The degraded sample cap, when [`ShedPolicy::DegradeToFewerSamples`]
    /// applied one.
    pub degraded_to: Option<usize>,
    /// Whether the deadline/cancellation expired this request (partial
    /// result or typed [`InferenceError::Expired`]).
    pub expired: bool,
    /// Total deterministic backoff this request slept across retries.
    pub backoff_total: Duration,
    /// End-to-end wall clock of the attempt chain in nanoseconds (0 for
    /// requests that never executed: shed or abandoned).
    pub elapsed_ns: u64,
}

impl ResilientOutcome {
    /// The prediction/report pair, when the request produced one.
    pub fn result(&self) -> &Result<(Prediction, RobustReport), InferenceError> {
        &self.outcome.result
    }
}

/// Aggregates of one [`ResilientBatchEngine::run_batch`] call; the
/// fold of its `outcomes` — [`ResilientBatchReport::reconcile`] asserts
/// the two never drift apart.
#[derive(Debug, Clone, Default)]
pub struct ResilienceTotals {
    /// Requests offered to `run_batch`.
    pub offered: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Requests admitted with a degraded sample cap.
    pub degraded: usize,
    /// Requests whose deadline expired (partial or empty).
    pub expired: usize,
    /// Retry attempts performed (executions beyond each request's first).
    pub retries: u64,
    /// Requests that succeeded only after retrying.
    pub retry_successes: u64,
    /// Requests whose transient failure survived all retries.
    pub retry_exhausted: u64,
    /// Attempts forced onto the exact path by an open breaker.
    pub forced_exact: u64,
    /// Half-open probe attempts.
    pub probes: u64,
    /// Watchdog requeues across all units.
    pub requeues: u64,
    /// Units abandoned as [`InferenceError::WorkerHung`].
    pub abandoned: u64,
}

/// The outcome of one [`ResilientBatchEngine::run_batch`] call.
#[derive(Debug)]
pub struct ResilientBatchReport {
    /// Per-request outcomes, in offered order.
    pub outcomes: Vec<ResilientOutcome>,
    /// Aggregates, maintained alongside the outcomes.
    pub totals: ResilienceTotals,
    /// Breaker transitions that happened during this call.
    pub transitions: Vec<(BreakerState, BreakerState)>,
    /// Breaker state after the call.
    pub breaker_state: BreakerState,
    /// Wall-clock of the whole call, nanoseconds.
    pub elapsed_ns: u64,
}

impl ResilientBatchReport {
    /// Checks that the aggregate totals equal a fresh fold over the
    /// per-request outcomes — the accounting half of the chaos harness's
    /// "counters reconcile exactly" criterion.
    ///
    /// # Errors
    ///
    /// Returns the first mismatching quantity as a message.
    pub fn reconcile(&self) -> Result<(), String> {
        let mut fold = ResilienceTotals {
            offered: self.outcomes.len(),
            ..ResilienceTotals::default()
        };
        for o in &self.outcomes {
            if o.shed {
                fold.shed += 1;
            }
            if o.degraded_to.is_some() {
                fold.degraded += 1;
            }
            if o.expired {
                fold.expired += 1;
            }
            fold.retries += u64::from(o.attempts.saturating_sub(1));
            if o.retry_exhausted {
                fold.retry_exhausted += 1;
            } else if o.attempts > 1 && o.outcome.result.is_ok() {
                fold.retry_successes += 1;
            }
            fold.requeues += u64::from(o.requeues);
            if matches!(o.outcome.result, Err(InferenceError::WorkerHung { .. })) {
                fold.abandoned += 1;
            }
        }
        let t = &self.totals;
        for (name, got, want) in [
            ("offered", t.offered, fold.offered),
            ("shed", t.shed, fold.shed),
            ("degraded", t.degraded, fold.degraded),
            ("expired", t.expired, fold.expired),
        ] {
            if got != want {
                return Err(format!("totals.{name} = {got}, outcomes fold to {want}"));
            }
        }
        for (name, got, want) in [
            ("retries", t.retries, fold.retries),
            ("retry_successes", t.retry_successes, fold.retry_successes),
            ("retry_exhausted", t.retry_exhausted, fold.retry_exhausted),
            ("requeues", t.requeues, fold.requeues),
            ("abandoned", t.abandoned, fold.abandoned),
        ] {
            if got != want {
                return Err(format!("totals.{name} = {got}, outcomes fold to {want}"));
            }
        }
        Ok(())
    }

    /// Whether every failed request carries a typed error (always true by
    /// construction — `Result` is typed — but the chaos harness asserts
    /// it against this list of recognized reasons).
    pub fn all_losses_typed(&self) -> bool {
        self.outcomes
            .iter()
            .all(|o| o.outcome.result.is_ok() || error_reason(&self.reason_of(o)).is_some())
    }

    fn reason_of(&self, o: &ResilientOutcome) -> String {
        match &o.outcome.result {
            Ok(_) => "ok".into(),
            Err(e) => error_reason_name(e).into(),
        }
    }
}

fn error_reason(reason: &str) -> Option<&str> {
    [
        "input",
        "thresholds",
        "numeric",
        "bayes",
        "all_samples_failed",
        "expired",
        "overloaded",
        "worker_hung",
    ]
    .into_iter()
    .find(|r| *r == reason)
}

/// The stable lowercase reason label for a typed inference error — the
/// vocabulary the chaos report buckets losses under.
pub fn error_reason_name(e: &InferenceError) -> &'static str {
    match e {
        InferenceError::Input(_) => "input",
        InferenceError::Thresholds(_) => "thresholds",
        InferenceError::Numeric(_) => "numeric",
        InferenceError::Bayes(_) => "bayes",
        InferenceError::AllSamplesFailed { .. } => "all_samples_failed",
        InferenceError::Expired { .. } => "expired",
        InferenceError::Overloaded { .. } => "overloaded",
        InferenceError::WorkerHung { .. } => "worker_hung",
    }
}

type Sleeper = Arc<dyn Fn(Duration) + Send + Sync>;
/// A per-(request, attempt, sample) hook; the chaos harness keys faults
/// off all three.
pub type RequestSampleHook = Arc<dyn Fn(u64, u32, usize) + Send + Sync>;

struct Inner {
    batch: Arc<BatchEngine>,
    cfg: ResilienceConfig,
    breaker: Arc<CircuitBreaker>,
    jitter: Arc<dyn Jitter>,
    sleeper: Sleeper,
    hook: Option<RequestSampleHook>,
    flight: Option<Arc<crate::FlightRecorder>>,
}

/// Stamps one finished outcome into the request-level observability
/// surface: exactly one `request_outcomes{class,result}` increment per
/// [`ResilientOutcome`] (the invariant windowed reconciliation relies
/// on), a `request_latency_ns{class}` observation when the request
/// actually executed, and a [`crate::FlightRecord`] when a recorder is
/// attached.
fn note_outcome(inner: &Inner, out: &ResilientOutcome, class: Option<&RequestClass>) {
    let class = class
        .map(|c| c.name.as_str())
        .unwrap_or(inner.cfg.deadline_class.as_str());
    let result = if out.outcome.result.is_ok() {
        "ok"
    } else {
        "failed"
    };
    fbcnn_telemetry::counter_add(
        fbcnn_telemetry::REQUEST_OUTCOME_METRIC,
        &[("class", class), ("result", result)],
        1,
    );
    if out.attempts > 0 {
        fbcnn_telemetry::histogram_record(
            fbcnn_telemetry::REQUEST_LATENCY_METRIC,
            &[("class", class)],
            out.elapsed_ns as f64,
        );
    }
    if let Some(flight) = &inner.flight {
        flight.record(crate::FlightRecord::from_outcome(out, class));
    }
}

/// The resilient serving layer over a [`BatchEngine`]; see the module
/// docs.
pub struct ResilientBatchEngine {
    inner: Arc<Inner>,
}

impl fmt::Debug for ResilientBatchEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResilientBatchEngine")
            .field("cfg", &self.inner.cfg)
            .field("breaker", &self.inner.breaker.state())
            .finish()
    }
}

impl ResilientBatchEngine {
    /// Wraps a batch engine with its own (closed) breaker.
    pub fn new(batch: BatchEngine, cfg: ResilienceConfig) -> Self {
        let breaker = Arc::new(CircuitBreaker::new(cfg.breaker));
        Self::with_breaker(batch, cfg, breaker)
    }

    /// Wraps a batch engine sharing an existing breaker — the chaos
    /// harness uses this to carry breaker state across engine swaps.
    pub fn with_breaker(
        batch: BatchEngine,
        cfg: ResilienceConfig,
        breaker: Arc<CircuitBreaker>,
    ) -> Self {
        Self {
            inner: Arc::new(Inner {
                batch: Arc::new(batch),
                cfg,
                breaker,
                jitter: Arc::new(SeededJitter),
                sleeper: Arc::new(|d| {
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                }),
                hook: None,
                flight: None,
            }),
        }
    }

    fn remake(&self, f: impl FnOnce(&mut Inner)) -> Self {
        let inner = self.inner.as_ref();
        let mut clone = Inner {
            batch: Arc::clone(&inner.batch),
            cfg: inner.cfg.clone(),
            breaker: Arc::clone(&inner.breaker),
            jitter: Arc::clone(&inner.jitter),
            sleeper: Arc::clone(&inner.sleeper),
            hook: inner.hook.clone(),
            flight: inner.flight.clone(),
        };
        f(&mut clone);
        Self {
            inner: Arc::new(clone),
        }
    }

    /// Replaces the jitter source (tests pin backoff with [`NoJitter`]).
    pub fn with_jitter(&self, jitter: Arc<dyn Jitter>) -> Self {
        self.remake(|i| i.jitter = jitter)
    }

    /// Replaces the backoff sleeper (tests observe instead of sleeping).
    pub fn with_sleeper(&self, sleeper: Arc<dyn Fn(Duration) + Send + Sync>) -> Self {
        self.remake(|i| i.sleeper = sleeper)
    }

    /// Installs a per-(request id, attempt, sample) hook — the chaos
    /// harness's fault injection point.
    pub fn with_request_sample_hook(&self, hook: RequestSampleHook) -> Self {
        self.remake(|i| i.hook = Some(hook))
    }

    /// Attaches a flight recorder: every request this layer finishes is
    /// flattened into a [`crate::FlightRecord`]. Without one the
    /// serving path pays nothing.
    pub fn with_flight_recorder(&self, flight: Arc<crate::FlightRecorder>) -> Self {
        self.remake(|i| i.flight = Some(flight))
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&Arc<crate::FlightRecorder>> {
        self.inner.flight.as_ref()
    }

    /// The wrapped batch engine.
    pub fn batch(&self) -> &BatchEngine {
        &self.inner.batch
    }

    /// The breaker (shared with every clone of this layer).
    pub fn breaker(&self) -> &Arc<CircuitBreaker> {
        &self.inner.breaker
    }

    /// The resilience configuration.
    pub fn config(&self) -> &ResilienceConfig {
        &self.inner.cfg
    }

    /// Serves a batch under full resilience: admission control first,
    /// then per-request deadline/retry/breaker serving on the worker
    /// pool (with watchdog requeue when configured). Outcomes land in
    /// offered order; a request never fails its batch-mates.
    pub fn run_batch(&self, requests: &[BatchRequest]) -> ResilientBatchReport {
        let start = Instant::now();
        let _span = fbcnn_telemetry::span_with("resilient_batch", || {
            vec![("depth".into(), requests.len().to_string())]
        });
        let inner = &self.inner;
        let n = requests.len();
        let mut totals = ResilienceTotals {
            offered: n,
            ..ResilienceTotals::default()
        };

        // Admission control: decide per offered index whether it is
        // shed, degraded, or admitted untouched.
        let capacity = inner.cfg.queue_capacity;
        let mut shed_flags = vec![false; n];
        let mut cap: Option<usize> = None;
        if capacity > 0 && n > capacity {
            let policy = inner.cfg.shed_policy;
            match policy {
                ShedPolicy::RejectNewest => {
                    for flag in shed_flags.iter_mut().skip(capacity) {
                        *flag = true;
                    }
                }
                ShedPolicy::RejectOldest => {
                    for flag in shed_flags.iter_mut().take(n - capacity) {
                        *flag = true;
                    }
                }
                ShedPolicy::DegradeToFewerSamples => {
                    let t = inner.batch.engine().config().samples;
                    let scaled = t * capacity / n;
                    cap = Some(scaled.max(inner.cfg.min_degraded_samples).max(1));
                }
            }
            let shed_count = shed_flags.iter().filter(|&&s| s).count();
            if shed_count > 0 {
                fbcnn_telemetry::counter_add(
                    "shed_requests",
                    &[("policy", policy.name())],
                    shed_count as u64,
                );
            }
            if cap.is_some() {
                fbcnn_telemetry::counter_add(
                    "shed_degraded_requests",
                    &[("policy", policy.name())],
                    n as u64,
                );
            }
        }

        let engine_seed = inner.batch.engine().config().seed;
        let mut slots: Vec<Option<ResilientOutcome>> = Vec::new();
        slots.resize_with(n, || None);
        let mut admitted: Vec<usize> = Vec::with_capacity(n);
        for (i, req) in requests.iter().enumerate() {
            if shed_flags[i] {
                let out = ResilientOutcome {
                    outcome: BatchOutcome {
                        id: req.id,
                        seed: req.resolved_seed(engine_seed),
                        queue_wait_ns: 0,
                        cache_hit: false,
                        result: Err(InferenceError::Overloaded {
                            queue_depth: n,
                            capacity,
                        }),
                    },
                    attempts: 0,
                    requeues: 0,
                    forced_exact: false,
                    probe: false,
                    shed: true,
                    retry_exhausted: false,
                    degraded_to: None,
                    expired: false,
                    backoff_total: Duration::ZERO,
                    elapsed_ns: 0,
                };
                note_outcome(inner, &out, None);
                slots[i] = Some(out);
                totals.shed += 1;
            } else {
                admitted.push(i);
            }
        }
        totals.degraded = if cap.is_some() { n - totals.shed } else { 0 };

        let threads = inner.batch.batch_config().threads.max(1);
        if threads == 1 && inner.cfg.watchdog_timeout.is_none() {
            // Sequential serving: the deterministic path (golden chaos
            // schedules run here — breaker transitions are a pure
            // function of the request order).
            for &i in &admitted {
                let out = serve_with_resilience(inner, &requests[i], cap, &mut totals, None, true);
                slots[i] = Some(out);
            }
        } else {
            self.drain_with_workers(requests, &admitted, cap, &mut slots, &mut totals);
        }

        let outcomes: Vec<ResilientOutcome> = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| {
                    let out = ResilientOutcome {
                        // Unreachable: every admitted slot is written by
                        // the pool (or its abandonment path) and every
                        // shed slot above; typed fallback kept instead
                        // of a panic.
                        outcome: BatchOutcome {
                            id: requests[i].id,
                            seed: requests[i].resolved_seed(engine_seed),
                            queue_wait_ns: 0,
                            cache_hit: false,
                            result: Err(InferenceError::WorkerHung { requeues: 0 }),
                        },
                        attempts: 0,
                        requeues: 0,
                        forced_exact: false,
                        probe: false,
                        shed: false,
                        retry_exhausted: false,
                        degraded_to: None,
                        expired: false,
                        backoff_total: Duration::ZERO,
                        elapsed_ns: 0,
                    };
                    note_outcome(inner, &out, None);
                    out
                })
            })
            .collect();

        ResilientBatchReport {
            transitions: inner.breaker.transitions(),
            breaker_state: inner.breaker.state(),
            outcomes,
            totals,
            elapsed_ns: start.elapsed().as_nanos() as u64,
        }
    }

    /// Serves a single request under deadline/retry/breaker control —
    /// the sequential form of [`ResilientBatchEngine::run_batch`].
    pub fn run_request(&self, req: &BatchRequest) -> ResilientOutcome {
        let mut totals = ResilienceTotals::default();
        serve_with_resilience(&self.inner, req, None, &mut totals, None, true)
    }

    /// [`ResilientBatchEngine::run_request`] under a per-request
    /// [`RequestClass`]: the network tier's priced deadline/budget and
    /// telemetry class label override the engine-level config for this
    /// one request. `None` behaves exactly like `run_request`.
    pub fn run_request_classed(
        &self,
        req: &BatchRequest,
        class: Option<&RequestClass>,
    ) -> ResilientOutcome {
        let mut totals = ResilienceTotals::default();
        serve_with_resilience(&self.inner, req, None, &mut totals, class, true)
    }

    /// The worker pool with watchdog: detached workers drain a shared
    /// unit queue; the main thread waits on a condvar and, when a
    /// watchdog timeout is configured, requeues units claimed longer ago
    /// than the timeout (bumping their epoch so the stale worker's
    /// eventual write is discarded) and spawns a replacement worker.
    fn drain_with_workers(
        &self,
        requests: &[BatchRequest],
        admitted: &[usize],
        cap: Option<usize>,
        slots: &mut [Option<ResilientOutcome>],
        totals: &mut ResilienceTotals,
    ) {
        struct SlotState {
            epoch: u32,
            claimed_at: Option<Instant>,
            requeues: u32,
            done: Option<(ResilientOutcome, ResilienceTotals)>,
        }
        struct Pool {
            requests: Vec<BatchRequest>,
            /// admitted index (into `requests`) + epoch pairs.
            queue: Mutex<VecDeque<(usize, u32)>>,
            slots: Mutex<Vec<SlotState>>,
            done: Condvar,
            completed: AtomicUsize,
            cap: Option<usize>,
        }

        let inner = &self.inner;
        let pool = Arc::new(Pool {
            requests: admitted.iter().map(|&i| requests[i].clone()).collect(),
            queue: Mutex::new((0..admitted.len()).map(|u| (u, 0)).collect()),
            slots: Mutex::new(
                (0..admitted.len())
                    .map(|_| SlotState {
                        epoch: 0,
                        claimed_at: None,
                        requeues: 0,
                        done: None,
                    })
                    .collect(),
            ),
            done: Condvar::new(),
            completed: AtomicUsize::new(0),
            cap,
        });

        fn spawn_worker(inner: &Arc<Inner>, pool: &Arc<Pool>) {
            let inner = Arc::clone(inner);
            let pool = Arc::clone(pool);
            // Detached on purpose: a hung worker must not be joinable —
            // run_batch returns without it once the watchdog abandons
            // its unit. The thread holds only Arcs; it dies quietly.
            std::thread::spawn(move || loop {
                let unit = match pool.queue.lock() {
                    Ok(mut q) => q.pop_front(),
                    Err(_) => None,
                };
                let Some((u, epoch)) = unit else { break };
                {
                    let Ok(mut slots) = pool.slots.lock() else {
                        break;
                    };
                    let s = &mut slots[u];
                    if s.done.is_some() || s.epoch != epoch {
                        continue; // stale or already served elsewhere
                    }
                    s.claimed_at = Some(Instant::now());
                }
                let mut local = ResilienceTotals::default();
                // `watched: false`: this pool already watches the unit
                // at the unit level; nesting a per-attempt watchdog
                // would race the two requeue budgets.
                let out = serve_with_resilience(
                    &inner,
                    &pool.requests[u],
                    pool.cap,
                    &mut local,
                    None,
                    false,
                );
                let Ok(mut slots) = pool.slots.lock() else {
                    break;
                };
                let s = &mut slots[u];
                if s.done.is_none() && s.epoch == epoch {
                    let mut out = out;
                    out.requeues = s.requeues;
                    s.done = Some((out, local));
                    pool.completed.fetch_add(1, Ordering::Release);
                    pool.done.notify_all();
                }
            });
        }

        let workers = inner
            .batch
            .batch_config()
            .threads
            .max(1)
            .min(admitted.len().max(1));
        for _ in 0..workers {
            spawn_worker(inner, &pool);
        }

        let tick = inner
            .cfg
            .watchdog_timeout
            .map(|t| (t / 4).max(Duration::from_millis(5)))
            .unwrap_or(Duration::from_millis(50));
        let mut guard = match pool.slots.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        while pool.completed.load(Ordering::Acquire) < admitted.len() {
            guard = match pool.done.wait_timeout(guard, tick) {
                Ok((g, _)) => g,
                Err(p) => p.into_inner().0,
            };
            let Some(timeout) = inner.cfg.watchdog_timeout else {
                continue;
            };
            let mut respawn = 0usize;
            for (u, s) in guard.iter_mut().enumerate() {
                let hung = s.done.is_none()
                    && s.claimed_at
                        .is_some_and(|claimed| claimed.elapsed() >= timeout);
                if !hung {
                    continue;
                }
                s.epoch += 1;
                s.claimed_at = None;
                s.requeues += 1;
                if s.requeues > inner.cfg.max_requeues {
                    // Give up: typed abandonment, batch completes.
                    fbcnn_telemetry::counter_add("watchdog_abandoned", &[], 1);
                    let req = &pool.requests[u];
                    let local = ResilienceTotals {
                        abandoned: 1,
                        ..ResilienceTotals::default()
                    };
                    let abandoned = ResilientOutcome {
                        outcome: BatchOutcome {
                            id: req.id,
                            seed: req.resolved_seed(inner.batch.engine().config().seed),
                            queue_wait_ns: 0,
                            cache_hit: false,
                            result: Err(InferenceError::WorkerHung {
                                requeues: s.requeues - 1,
                            }),
                        },
                        attempts: 0,
                        requeues: s.requeues - 1,
                        forced_exact: false,
                        probe: false,
                        shed: false,
                        retry_exhausted: false,
                        degraded_to: pool.cap,
                        expired: false,
                        backoff_total: Duration::ZERO,
                        elapsed_ns: 0,
                    };
                    note_outcome(inner, &abandoned, None);
                    s.done = Some((abandoned, local));
                    pool.completed.fetch_add(1, Ordering::Release);
                } else {
                    fbcnn_telemetry::counter_add("watchdog_requeues", &[], 1);
                    if let Ok(mut q) = pool.queue.lock() {
                        q.push_back((u, s.epoch));
                    }
                    respawn += 1;
                }
            }
            drop(guard);
            for _ in 0..respawn {
                // The old worker may be wedged for good; a fresh one
                // picks the requeued unit up.
                spawn_worker(inner, &pool);
            }
            guard = match pool.slots.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        let mut finished = guard;
        for (k, s) in finished.iter_mut().enumerate() {
            if let Some((out, local)) = s.done.take() {
                totals.expired += local.expired;
                totals.retries += local.retries;
                totals.retry_successes += local.retry_successes;
                totals.retry_exhausted += local.retry_exhausted;
                totals.forced_exact += local.forced_exact;
                totals.probes += local.probes;
                totals.requeues += u64::from(out.requeues);
                totals.abandoned += local.abandoned;
                slots[admitted[k]] = Some(out);
            }
        }
    }
}

/// One attempt of `req`, under the worker watchdog when one is
/// configured and the caller is not already running on the watched
/// pool (`watched`): the attempt executes on a detached worker thread
/// and, past `watchdog_timeout`, is requeued to a freshly spawned
/// worker (the wedged worker's eventual result lands on a closed
/// channel and is discarded). After `max_requeues` requeues the unit
/// is abandoned with a typed [`InferenceError::WorkerHung`] — the
/// signal the registry supervisor reads as shard abandonment.
/// `requeues` accumulates across a request's retry attempts: like the
/// deadline token, the requeue budget spans retries.
fn run_attempt(
    inner: &Inner,
    req: &BatchRequest,
    ctl: &RunControl,
    watched: bool,
    requeues: &mut u32,
    totals: &mut ResilienceTotals,
) -> BatchOutcome {
    let timeout = match inner.cfg.watchdog_timeout {
        Some(t) if watched => t,
        _ => return inner.batch.run_request(req, ctl),
    };
    loop {
        let (tx, rx) = mpsc::channel();
        let batch = Arc::clone(&inner.batch);
        let unit = req.clone();
        let unit_ctl = ctl.clone();
        // Detached on purpose: a wedged worker must not be joinable —
        // the attempt returns without it once the watchdog abandons
        // the unit. The thread holds only Arcs; it dies quietly.
        std::thread::spawn(move || {
            let _ = tx.send(batch.run_request(&unit, &unit_ctl));
        });
        match rx.recv_timeout(timeout) {
            Ok(out) => return out,
            Err(_) => {
                // Timed out — or the worker died without reporting,
                // which a fresh worker either reproduces (and the
                // requeue budget converts into abandonment) or was
                // transient and the requeue absorbs.
                if *requeues >= inner.cfg.max_requeues {
                    fbcnn_telemetry::counter_add("watchdog_abandoned", &[], 1);
                    totals.abandoned += 1;
                    return BatchOutcome {
                        id: req.id,
                        seed: req.resolved_seed(inner.batch.engine().config().seed),
                        queue_wait_ns: 0,
                        cache_hit: false,
                        result: Err(InferenceError::WorkerHung {
                            requeues: *requeues,
                        }),
                    };
                }
                *requeues += 1;
                totals.requeues += 1;
                fbcnn_telemetry::counter_add("watchdog_requeues", &[], 1);
            }
        }
    }
}

/// The per-request serving loop: deadline token, breaker routing, typed
/// retry with seeded backoff. Updates `totals` as it goes. `watched`
/// arms the per-attempt watchdog (see [`run_attempt`]); the batch
/// worker pool passes `false` because [`drain_with_workers`] already
/// watches its units at the unit level.
///
/// [`drain_with_workers`]: ResilientBatchEngine::drain_with_workers
fn serve_with_resilience(
    inner: &Inner,
    req: &BatchRequest,
    cap: Option<usize>,
    totals: &mut ResilienceTotals,
    class: Option<&RequestClass>,
    watched: bool,
) -> ResilientOutcome {
    let served_at = Instant::now();
    let cfg = &inner.cfg;
    let engine_seed = inner.batch.engine().config().seed;
    let request_seed = req.resolved_seed(engine_seed);
    // One token for the whole request: the deadline and the sample
    // budget span retries — a retry cannot buy more time. A priced
    // request class overrides the engine-level limits per field.
    let deadline = class.and_then(|c| c.deadline).or(cfg.deadline);
    let sample_budget = class.and_then(|c| c.sample_budget).or(cfg.sample_budget);
    let token = CancelToken::with_limits(deadline, sample_budget);

    let mut attempts: u32 = 0;
    let mut requeues: u32 = 0;
    let mut backoff_total = Duration::ZERO;
    let mut forced_exact_any = false;
    let mut probe_any = false;
    let max_attempts = 1 + cfg.retry.max_retries;

    loop {
        let decision = inner.breaker.decide();
        let forced = decision == PathDecision::ForcedExact;
        let probe = decision == PathDecision::Probe;
        forced_exact_any |= forced;
        probe_any |= probe;
        if forced {
            totals.forced_exact += 1;
        }
        if probe {
            totals.probes += 1;
        }
        let attempt_index = attempts;
        attempts += 1;

        let hook = inner.hook.as_ref().map(|h| {
            let h = Arc::clone(h);
            let id = req.id;
            let sample_hook: SampleHook = Arc::new(move |s| h(id, attempt_index, s));
            sample_hook
        });
        let ctl = RunControl {
            cancel: token.clone(),
            force_exact: forced,
            max_samples: cap,
            sample_hook: hook,
        };
        let outcome = run_attempt(inner, req, &ctl, watched, &mut requeues, totals);

        // A canary trip on a non-forced attempt is the fast path
        // misbehaving even though the request succeeded (exactly).
        let canary_trip = !forced
            && matches!(
                &outcome.result,
                Ok((_, report)) if report.mode == DegradedMode::FullFallback
            );
        let failure = outcome.result.is_err() || canary_trip;
        inner.breaker.observe(decision, failure);

        let expired = match &outcome.result {
            Ok((_, report)) => report.expired,
            Err(InferenceError::Expired { .. }) => true,
            Err(_) => false,
        };
        if expired {
            totals.expired += 1;
        }

        let finish = move |outcome: BatchOutcome, expired: bool, retry_exhausted: bool| {
            let out = ResilientOutcome {
                outcome,
                attempts,
                requeues,
                forced_exact: forced_exact_any,
                probe: probe_any,
                shed: false,
                retry_exhausted,
                degraded_to: cap,
                expired,
                backoff_total,
                elapsed_ns: served_at.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64,
            };
            note_outcome(inner, &out, class);
            out
        };

        let retryable = match &outcome.result {
            // Expired partials are final: the budget is spent.
            Ok(_) if expired => None,
            Ok(_) if canary_trip && cfg.retry_canary_trips => Some("canary_trip"),
            Ok(_) => None,
            Err(_) if expired => None,
            Err(e) => match retry_class(e) {
                RetryClass::Transient => Some("transient"),
                RetryClass::Permanent => None,
            },
        };

        match retryable {
            Some(reason) if attempts < max_attempts && !token.expired() => {
                totals.retries += 1;
                fbcnn_telemetry::counter_add("retry_attempts", &[("reason", reason)], 1);
                let backoff = cfg
                    .retry
                    .backoff(request_seed, attempt_index, &*inner.jitter);
                fbcnn_telemetry::histogram_record(
                    "retry_backoff_ns",
                    &[],
                    backoff.as_nanos() as f64,
                );
                backoff_total += backoff;
                (inner.sleeper)(backoff);
            }
            Some(reason) => {
                // Out of attempts (or out of deadline): the last outcome
                // stands. For a canary-trip chain that is still a valid
                // exact-path prediction.
                totals.retry_exhausted += 1;
                fbcnn_telemetry::counter_add("retry_exhausted", &[("reason", reason)], 1);
                return finish(outcome, expired, true);
            }
            None => {
                if attempts > 1 && outcome.result.is_ok() {
                    totals.retry_successes += 1;
                    fbcnn_telemetry::counter_add("retry_successes", &[], 1);
                }
                return finish(outcome, expired, false);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchConfig;
    use crate::engine::{synth_input, Engine, EngineConfig};
    use fbcnn_bayes::BayesError;
    use fbcnn_nn::models::ModelKind;
    use fbcnn_nn::NnError;
    use std::sync::atomic::AtomicU32;

    fn small_engine() -> Engine {
        Engine::new(EngineConfig {
            samples: 4,
            calibration_samples: 3,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        })
    }

    fn resilient(cfg: ResilienceConfig) -> ResilientBatchEngine {
        ResilientBatchEngine::new(
            BatchEngine::new(small_engine(), BatchConfig::default()),
            cfg,
        )
    }

    fn requests(engine: &Engine, n: usize) -> Vec<BatchRequest> {
        (0..n)
            .map(|i| {
                BatchRequest::new(
                    i as u64,
                    synth_input(engine.network().input_shape(), 50 + i as u64),
                )
            })
            .collect()
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            seed: 7,
        };
        let no = NoJitter;
        assert_eq!(policy.backoff(9, 0, &no), Duration::from_millis(1));
        assert_eq!(policy.backoff(9, 1, &no), Duration::from_millis(2));
        assert_eq!(policy.backoff(9, 2, &no), Duration::from_millis(4));
        assert_eq!(
            policy.backoff(9, 3, &no),
            Duration::from_millis(4),
            "capped"
        );
        // Seeded jitter: in [0.5, 1.0]·exp, and replayable.
        let j = SeededJitter;
        for attempt in 0..4 {
            let a = policy.backoff(9, attempt, &j);
            let b = policy.backoff(9, attempt, &j);
            assert_eq!(a, b);
            let exp = policy.backoff(9, attempt, &no);
            assert!(
                a <= exp && a >= exp / 2,
                "{a:?} outside [{:?}/2, {:?}]",
                exp,
                exp
            );
        }
        // Different requests jitter differently (with overwhelming odds).
        assert_ne!(policy.backoff(1, 0, &j), policy.backoff(2, 0, &j));
    }

    #[test]
    fn retry_taxonomy_matches_the_docs() {
        use RetryClass::*;
        let cases = [
            (InferenceError::AllSamplesFailed { requested: 4 }, Transient),
            (InferenceError::Input(NnError::EmptyGraph), Permanent),
            (InferenceError::Bayes(BayesError::NoSamples), Permanent),
            (
                InferenceError::Expired {
                    samples_completed: 0,
                },
                Permanent,
            ),
            (
                InferenceError::Overloaded {
                    queue_depth: 9,
                    capacity: 4,
                },
                Permanent,
            ),
            (InferenceError::WorkerHung { requeues: 2 }, Permanent),
        ];
        for (e, want) in cases {
            assert_eq!(retry_class(&e), want, "{e}");
        }
    }

    #[test]
    fn breaker_trips_cools_down_probes_and_recovers() {
        let b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            min_observations: 4,
            threshold: 0.5,
            cooldown_requests: 2,
            probes: 2,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        // 3 failures out of 4 > 0.5 → open.
        for failure in [true, true, false, true] {
            let d = b.decide();
            assert_eq!(d, PathDecision::Fast);
            b.observe(d, failure);
        }
        assert_eq!(b.state(), BreakerState::Open);
        // Cooldown: 2 requests served exact, then a probe.
        assert_eq!(b.decide(), PathDecision::ForcedExact);
        b.observe(PathDecision::ForcedExact, true); // ignored while open
        assert_eq!(b.decide(), PathDecision::ForcedExact);
        b.observe(PathDecision::ForcedExact, false);
        let probe = b.decide();
        assert_eq!(probe, PathDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Failed probe → back to open; cool down again, then two passes.
        b.observe(probe, true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.decide(), PathDecision::ForcedExact);
        b.observe(PathDecision::ForcedExact, false);
        assert_eq!(b.decide(), PathDecision::ForcedExact);
        b.observe(PathDecision::ForcedExact, false);
        for _ in 0..2 {
            let p = b.decide();
            assert_eq!(p, PathDecision::Probe);
            b.observe(p, false);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        let names: Vec<(&str, &str)> = b
            .transitions()
            .iter()
            .map(|&(f, t)| (f.name(), t.name()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("closed", "open"),
                ("open", "half_open"),
                ("half_open", "open"),
                ("open", "half_open"),
                ("half_open", "closed"),
            ]
        );
    }

    #[test]
    fn no_fault_run_batch_is_bit_identical_to_sequential_calls() {
        let engine = small_engine();
        let reqs = requests(&engine, 4);
        let layer = ResilientBatchEngine::new(
            BatchEngine::new(engine.clone(), BatchConfig::default()),
            ResilienceConfig::default(),
        );
        let report = layer.run_batch(&reqs);
        report.reconcile().unwrap();
        assert!(report.transitions.is_empty());
        for (req, o) in reqs.iter().zip(&report.outcomes) {
            assert_eq!(o.attempts, 1);
            assert!(!o.expired && !o.shed && !o.forced_exact);
            let (pred, rep) = o.outcome.result.as_ref().unwrap();
            let (seq_pred, seq_rep) = engine
                .predict_robust_seeded(&req.input, o.outcome.seed)
                .unwrap();
            assert_eq!(pred, &seq_pred, "request {} diverged", req.id);
            assert_eq!(rep, &seq_rep);
        }
    }

    #[test]
    fn shed_policies_pick_the_right_victims() {
        let engine = small_engine();
        let reqs = requests(&engine, 6);
        for (policy, shed_ids) in [
            (ShedPolicy::RejectNewest, vec![4u64, 5]),
            (ShedPolicy::RejectOldest, vec![0, 1]),
        ] {
            let layer = resilient(ResilienceConfig {
                queue_capacity: 4,
                shed_policy: policy,
                ..ResilienceConfig::default()
            });
            let report = layer.run_batch(&reqs);
            report.reconcile().unwrap();
            assert_eq!(report.totals.shed, 2, "{policy:?}");
            let shed: Vec<u64> = report
                .outcomes
                .iter()
                .filter(|o| o.shed)
                .map(|o| o.outcome.id)
                .collect();
            assert_eq!(shed, shed_ids, "{policy:?}");
            for o in report.outcomes.iter().filter(|o| o.shed) {
                assert!(matches!(
                    o.outcome.result,
                    Err(InferenceError::Overloaded {
                        queue_depth: 6,
                        capacity: 4
                    })
                ));
            }
        }
    }

    #[test]
    fn degrade_policy_admits_everyone_with_a_smaller_budget() {
        let engine = small_engine();
        let t = engine.config().samples;
        let reqs = requests(&engine, 8);
        let layer = resilient(ResilienceConfig {
            queue_capacity: 4,
            shed_policy: ShedPolicy::DegradeToFewerSamples,
            ..ResilienceConfig::default()
        });
        let report = layer.run_batch(&reqs);
        report.reconcile().unwrap();
        assert_eq!(report.totals.shed, 0);
        assert_eq!(report.totals.degraded, 8);
        let cap = t * 4 / 8;
        for o in &report.outcomes {
            assert_eq!(o.degraded_to, Some(cap));
            let (_, rep) = o.outcome.result.as_ref().unwrap();
            assert_eq!(rep.used_samples, cap);
            assert_eq!(rep.mode, DegradedMode::PartialSamples);
        }
    }

    #[test]
    fn deadline_pressure_yields_flagged_partials_never_silence() {
        let layer = resilient(ResilienceConfig {
            sample_budget: Some(2),
            ..ResilienceConfig::default()
        });
        let engine = layer.batch().engine().clone();
        let req = &requests(&engine, 1)[0];
        let out = layer.run_request(req);
        assert!(out.expired);
        assert_eq!(out.attempts, 1, "expiry is final, never retried");
        let (pred, rep) = out.outcome.result.as_ref().unwrap();
        assert!(rep.expired);
        assert_eq!(rep.mode, DegradedMode::PartialSamples);
        assert_eq!(rep.used_samples, 2);
        // The partial mean is exactly the 2-sample prefix run.
        let two = Engine::new(EngineConfig {
            samples: 2,
            calibration_samples: 3,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        });
        let (two_pred, _) = two
            .predict_robust_seeded(&req.input, out.outcome.seed)
            .unwrap();
        assert_eq!(pred.mean, two_pred.mean);
    }

    #[test]
    fn transient_failures_retry_and_heal() {
        let calls = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&calls);
        let sleeps: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let slept = Arc::clone(&sleeps);
        let layer = resilient(ResilienceConfig {
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(8),
                seed: 3,
            },
            ..ResilienceConfig::default()
        })
        .with_jitter(Arc::new(NoJitter))
        .with_sleeper(Arc::new(move |d| {
            if let Ok(mut s) = slept.lock() {
                s.push(d);
            }
        }))
        .with_request_sample_hook(Arc::new(move |_id, attempt, _s| {
            seen.fetch_add(1, Ordering::Relaxed);
            if attempt == 0 {
                panic!("chaos: injected failure");
            }
        }));
        let engine = layer.batch().engine().clone();
        let req = &requests(&engine, 1)[0];
        let out = layer.run_request(req);
        assert_eq!(out.attempts, 2);
        assert!(!out.retry_exhausted);
        assert!(out.outcome.result.is_ok());
        // Retried once after the deterministic base backoff (NoJitter).
        assert_eq!(
            sleeps.lock().map(|s| s.clone()).unwrap_or_default(),
            vec![Duration::from_millis(1)]
        );
        assert_eq!(out.backoff_total, Duration::from_millis(1));
        assert!(calls.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn permanent_failures_never_retry() {
        let layer = resilient(ResilienceConfig::default());
        let engine = layer.batch().engine().clone();
        let mut req = requests(&engine, 1).remove(0);
        req.input = fbcnn_tensor::Tensor::zeros(fbcnn_tensor::Shape::new(1, 2, 2));
        let out = layer.run_request(&req);
        assert_eq!(out.attempts, 1);
        assert!(matches!(out.outcome.result, Err(InferenceError::Input(_))));
    }

    #[test]
    fn exhausted_retries_surface_the_typed_loss() {
        let layer = resilient(ResilienceConfig {
            retry: RetryPolicy {
                max_retries: 1,
                base_backoff: Duration::from_micros(10),
                max_backoff: Duration::from_micros(10),
                seed: 3,
            },
            ..ResilienceConfig::default()
        })
        .with_request_sample_hook(Arc::new(|_id, _attempt, _s| {
            panic!("chaos: always down");
        }));
        let engine = layer.batch().engine().clone();
        let req = &requests(&engine, 1)[0];
        let out = layer.run_request(req);
        assert_eq!(out.attempts, 2);
        assert!(out.retry_exhausted);
        assert!(matches!(
            out.outcome.result,
            Err(InferenceError::AllSamplesFailed { .. })
        ));
    }

    #[test]
    fn watchdog_requeues_a_hung_unit_to_a_fresh_worker() {
        let hung_once = Arc::new(AtomicU32::new(0));
        let flag = Arc::clone(&hung_once);
        let layer = resilient(ResilienceConfig {
            watchdog_timeout: Some(Duration::from_millis(40)),
            max_requeues: 2,
            ..ResilienceConfig::default()
        })
        .with_request_sample_hook(Arc::new(move |_id, _attempt, s| {
            if s == 0 && flag.fetch_add(1, Ordering::SeqCst) == 0 {
                // First execution wedges well past the watchdog timeout.
                std::thread::sleep(Duration::from_millis(400));
            }
        }));
        let engine = layer.batch().engine().clone();
        let reqs = requests(&engine, 1);
        let report = layer.run_batch(&reqs);
        report.reconcile().unwrap();
        let o = &report.outcomes[0];
        assert_eq!(o.requeues, 1, "one watchdog requeue");
        let (pred, _) = o.outcome.result.as_ref().unwrap();
        let (seq, _) = engine
            .predict_robust_seeded(&reqs[0].input, o.outcome.seed)
            .unwrap();
        assert_eq!(pred, &seq, "requeued unit still bit-identical");
    }

    #[test]
    fn watchdog_abandons_a_permanently_hung_unit() {
        let layer = resilient(ResilienceConfig {
            watchdog_timeout: Some(Duration::from_millis(30)),
            max_requeues: 1,
            ..ResilienceConfig::default()
        })
        .with_request_sample_hook(Arc::new(move |_id, _attempt, s| {
            if s == 0 {
                std::thread::sleep(Duration::from_millis(400));
            }
        }));
        let engine = layer.batch().engine().clone();
        let reqs = requests(&engine, 1);
        let start = Instant::now();
        let report = layer.run_batch(&reqs);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "abandonment must bound the batch"
        );
        report.reconcile().unwrap();
        assert_eq!(report.totals.abandoned, 1);
        assert!(matches!(
            report.outcomes[0].outcome.result,
            Err(InferenceError::WorkerHung { requeues: 1 })
        ));
    }
}
