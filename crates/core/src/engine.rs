use fbcnn_accel::{RunReport, Workload};
use fbcnn_bayes::{BayesianNetwork, McDropout, Prediction};
use fbcnn_nn::models::{ModelKind, ModelScale};
use fbcnn_nn::Network;
use fbcnn_predictor::{PredictiveInference, SkipStats, ThresholdOptimizer, ThresholdSet};
use fbcnn_tensor::{Shape, Tensor};

/// Configuration of a Fast-BCNN [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Which network topology to build.
    pub model: ModelKind,
    /// Width/resolution scaling (see `fbcnn_nn::models::ModelScale`).
    pub scale: ModelScale,
    /// Bernoulli drop rate `p` (paper default 0.3).
    pub drop_rate: f64,
    /// MC-dropout sample count `T` (paper: 50).
    pub samples: usize,
    /// Confidence level `p_cf` for Algorithm 1 (paper operating point:
    /// 0.68).
    pub confidence: f64,
    /// Sample budget of the offline threshold calibration.
    pub calibration_samples: usize,
    /// Master seed for weights, masks and calibration.
    pub seed: u64,
    /// Worker threads for exact MC-dropout passes (1 = sequential;
    /// results are identical either way).
    pub threads: usize,
}

impl EngineConfig {
    /// The paper's defaults for a model, at [`ModelScale::BENCH`] scale
    /// (LeNet-5 always runs full size).
    pub fn for_model(model: ModelKind) -> Self {
        Self {
            model,
            scale: ModelScale::BENCH,
            drop_rate: 0.3,
            samples: 50,
            confidence: 0.68,
            calibration_samples: 8,
            seed: 0xFB_C0DE,
            threads: 1,
        }
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::for_model(ModelKind::LeNet5)
    }
}

/// The end-to-end Fast-BCNN engine: a Bayesian network plus offline
/// threshold calibration, exposing exact and skipping MC-dropout
/// inference and workload extraction for the accelerator models.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: EngineConfig,
    bnet: BayesianNetwork,
    thresholds: ThresholdSet,
}

impl Engine {
    /// Builds the model and calibrates thresholds on a synthetic
    /// optimization input (Algorithm 1's offline stage).
    pub fn new(cfg: EngineConfig) -> Self {
        let net = cfg.model.build_scaled(cfg.seed, cfg.scale);
        Self::with_network(net, cfg)
    }

    /// Wraps a caller-provided network (e.g. a trained LeNet-5) and
    /// calibrates thresholds on a synthetic optimization input.
    pub fn with_network(net: Network, cfg: EngineConfig) -> Self {
        let calibration_input = synth_input(net.input_shape(), cfg.seed ^ 0xCA11B);
        Self::with_network_and_dataset(net, cfg, &[calibration_input])
    }

    /// Wraps a caller-provided network and calibrates thresholds on an
    /// explicit optimization dataset (Algorithm 1's `D`) — e.g. a slice
    /// of held-out training images.
    ///
    /// # Panics
    ///
    /// Panics if `dataset` is empty.
    pub fn with_network_and_dataset(net: Network, cfg: EngineConfig, dataset: &[Tensor]) -> Self {
        let bnet = BayesianNetwork::new(net, cfg.drop_rate);
        let optimizer = ThresholdOptimizer {
            samples: cfg.calibration_samples,
            confidence: cfg.confidence,
            ..ThresholdOptimizer::default()
        };
        let thresholds = optimizer.optimize_batch(&bnet, dataset, cfg.seed ^ 0x7E57);
        Self {
            cfg,
            bnet,
            thresholds,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The wrapped Bayesian network.
    pub fn bayesian_network(&self) -> &BayesianNetwork {
        &self.bnet
    }

    /// The underlying network graph.
    pub fn network(&self) -> &Network {
        self.bnet.network()
    }

    /// The calibrated per-kernel thresholds.
    pub fn thresholds(&self) -> &ThresholdSet {
        &self.thresholds
    }

    /// Exact MC-dropout inference (`T` dense stochastic passes),
    /// parallelized over `EngineConfig::threads` workers when > 1.
    pub fn predict_exact(&self, input: &Tensor) -> Prediction {
        McDropout::new(self.cfg.samples, self.cfg.seed).run_with_threads(
            &self.bnet,
            input,
            self.cfg.threads,
        )
    }

    /// Skipping MC-dropout inference: one pre-inference plus `T` skipping
    /// passes, using the calibrated thresholds. Returns the prediction
    /// and the aggregate skip statistics.
    pub fn predict_fast(&self, input: &Tensor) -> (Prediction, SkipStats) {
        let engine = PredictiveInference::new(&self.bnet, input, self.thresholds.clone());
        let (probs, skip) = engine.run_mc(self.cfg.seed, self.cfg.samples);
        (McDropout::summarize(probs), skip)
    }

    /// Extracts the accelerator workload for an input (pre-inference +
    /// `T` exact passes + skip maps), reusable across hardware
    /// configurations.
    pub fn workload(&self, input: &Tensor) -> Workload {
        Workload::build(
            &self.bnet,
            input,
            &self.thresholds,
            self.cfg.samples,
            self.cfg.seed,
        )
    }

    /// Convenience: simulate the baseline accelerator on a workload.
    pub fn simulate_baseline(&self, w: &Workload) -> RunReport {
        fbcnn_accel::BaselineSim::new(fbcnn_accel::HwConfig::baseline()).run(w)
    }

    /// Convenience: simulate Fast-BCNN with `tm` PEs on a workload.
    pub fn simulate_fast(&self, w: &Workload, tm: usize) -> RunReport {
        fbcnn_accel::FastBcnnSim::new(
            fbcnn_accel::HwConfig::fast_bcnn(tm),
            fbcnn_accel::SkipMode::Both,
        )
        .run(w)
    }
}

/// A deterministic, *spatially smooth* synthetic input in `[0, 1]` — the
/// stand-in for dataset images where none are needed (calibration,
/// workload probes).
///
/// Natural images are dominated by low spatial frequencies; white-noise
/// inputs would exaggerate max-pooling gaps (`max − 2nd max`) and with
/// them the number of affected neurons, distorting the characterization.
/// The field below bilinearly interpolates a coarse hashed grid plus a
/// gentle gradient and a little high-frequency texture.
pub fn synth_input(shape: Shape, seed: u64) -> Tensor {
    let grid = 4usize; // coarse cells per axis
    let hash = |a: u64, b: u64, c: u64| -> f32 {
        let mut z = seed
            .wrapping_add(a << 40)
            .wrapping_add(b << 20)
            .wrapping_add(c);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 1000) as f32 / 1000.0
    };
    let cell_h = (shape.height() as f32 / grid as f32).max(1.0);
    let cell_w = (shape.width() as f32 / grid as f32).max(1.0);
    Tensor::from_fn(shape, |c, r, col| {
        let fy = r as f32 / cell_h;
        let fx = col as f32 / cell_w;
        let (y0, x0) = (fy.floor(), fx.floor());
        let (ty, tx) = (fy - y0, fx - x0);
        let corner = |dy: u64, dx: u64| hash(c as u64, y0 as u64 + dy, x0 as u64 + dx);
        let smooth = corner(0, 0) * (1.0 - ty) * (1.0 - tx)
            + corner(0, 1) * (1.0 - ty) * tx
            + corner(1, 0) * ty * (1.0 - tx)
            + corner(1, 1) * ty * tx;
        let gradient = ((r + col) % 17) as f32 / 17.0;
        let texture = hash(c as u64 ^ 0xF00D, r as u64, col as u64);
        (0.7 * smooth + 0.2 * gradient + 0.1 * texture).clamp(0.0, 1.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine() -> Engine {
        Engine::new(EngineConfig {
            samples: 4,
            calibration_samples: 3,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        })
    }

    #[test]
    fn engine_builds_and_calibrates() {
        let e = small_engine();
        assert_eq!(e.network().name(), "lenet5");
        assert!(e.thresholds().nodes().count() >= 2);
    }

    #[test]
    fn fast_prediction_tracks_exact() {
        let e = small_engine();
        let input = synth_input(e.network().input_shape(), 11);
        let exact = e.predict_exact(&input);
        let (fast, stats) = e.predict_fast(&input);
        assert_eq!(exact.mean.len(), fast.mean.len());
        assert!(stats.skip_rate() > 0.2, "skip rate {}", stats.skip_rate());
        let diff: f32 = exact
            .mean
            .iter()
            .zip(&fast.mean)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff < 0.5, "probability mass moved too much: {diff}");
    }

    #[test]
    fn workload_and_sims_compose() {
        let e = small_engine();
        let input = synth_input(e.network().input_shape(), 3);
        let w = e.workload(&input);
        let base = e.simulate_baseline(&w);
        let fast = e.simulate_fast(&w, 64);
        assert!(fast.total_cycles < base.total_cycles);
    }

    #[test]
    fn batch_calibration_accepts_multiple_inputs() {
        let cfg = EngineConfig {
            samples: 3,
            calibration_samples: 2,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        };
        let net = cfg.model.build_scaled(cfg.seed, cfg.scale);
        let dataset: Vec<Tensor> = (0..3)
            .map(|i| synth_input(net.input_shape(), 100 + i))
            .collect();
        let engine = Engine::with_network_and_dataset(net, cfg, &dataset);
        assert!(engine.thresholds().nodes().count() >= 2);
        // Batch calibration sees more evidence; it may move thresholds
        // relative to single-input calibration but must stay usable.
        let input = synth_input(engine.network().input_shape(), 200);
        let (_, stats) = engine.predict_fast(&input);
        assert!(stats.skip_rate() > 0.2);
    }

    #[test]
    fn synth_input_is_deterministic_and_bounded() {
        let s = Shape::new(3, 8, 8);
        let a = synth_input(s, 5);
        let b = synth_input(s, 5);
        let c = synth_input(s, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
