use crate::error::{EngineError, InferenceError};
use crate::resilience::RunControl;
use fbcnn_accel::{RunReport, Workload};
use fbcnn_bayes::{BayesianNetwork, McDropout, Prediction};
use fbcnn_nn::models::{ModelKind, ModelScale};
use fbcnn_nn::{ActivationGuard, GuardPolicy, Network, Workspace};
use fbcnn_predictor::{PredictiveInference, SkipStats, ThresholdOptimizer, ThresholdSet};
use fbcnn_tensor::{stats, Shape, Tensor};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Configuration of a Fast-BCNN [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Which network topology to build.
    pub model: ModelKind,
    /// Width/resolution scaling (see `fbcnn_nn::models::ModelScale`).
    pub scale: ModelScale,
    /// Bernoulli drop rate `p` (paper default 0.3).
    pub drop_rate: f64,
    /// MC-dropout sample count `T` (paper: 50).
    pub samples: usize,
    /// Confidence level `p_cf` for Algorithm 1 (paper operating point:
    /// 0.68).
    pub confidence: f64,
    /// Sample budget of the offline threshold calibration.
    pub calibration_samples: usize,
    /// Master seed for weights, masks and calibration.
    pub seed: u64,
    /// Worker threads for exact MC-dropout passes (1 = sequential;
    /// results are identical either way).
    pub threads: usize,
    /// Per-request wall-clock deadline in milliseconds for resilient
    /// serving (`None` = no deadline). An expired request returns its
    /// partial-T mean flagged [`DegradedMode::PartialSamples`]; see
    /// `docs/RESILIENCE.md`.
    pub deadline_ms: Option<u64>,
    /// Maximum retry attempts (beyond the first) for typed-transient
    /// failures in resilient serving.
    pub retry_max: u32,
    /// Fast-path circuit-breaker trip threshold: the sliding-window
    /// error rate above which the breaker opens, in (0, 1].
    pub breaker_threshold: f64,
}

impl EngineConfig {
    /// The paper's defaults for a model, at [`ModelScale::BENCH`] scale
    /// (LeNet-5 always runs full size).
    pub fn for_model(model: ModelKind) -> Self {
        Self {
            model,
            scale: ModelScale::BENCH,
            drop_rate: 0.3,
            samples: 50,
            confidence: 0.68,
            calibration_samples: 8,
            seed: 0xFB_C0DE,
            threads: 1,
            deadline_ms: None,
            retry_max: 2,
            breaker_threshold: 0.5,
        }
    }
}

impl EngineConfig {
    /// Checks every field against its legal range.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] naming the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), EngineError> {
        let fail = |reason: String| Err(EngineError::InvalidConfig { reason });
        if self.samples == 0 {
            return fail("samples must be > 0".into());
        }
        if self.calibration_samples == 0 {
            return fail("calibration_samples must be > 0".into());
        }
        if self.threads == 0 {
            return fail("threads must be > 0".into());
        }
        if !(0.0..1.0).contains(&self.drop_rate) {
            return fail(format!("drop_rate {} out of [0, 1)", self.drop_rate));
        }
        if !(self.confidence > 0.0 && self.confidence <= 1.0) {
            return fail(format!("confidence {} out of (0, 1]", self.confidence));
        }
        if self.deadline_ms == Some(0) {
            return fail("deadline_ms must be > 0 when set".into());
        }
        if !(self.breaker_threshold > 0.0 && self.breaker_threshold <= 1.0) {
            return fail(format!(
                "breaker_threshold {} out of (0, 1]",
                self.breaker_threshold
            ));
        }
        Ok(())
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::for_model(ModelKind::LeNet5)
    }
}

/// Knobs of [`Engine::predict_robust`]'s anomaly detection and graceful
/// degradation; the defaults suit the workspace models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustConfig {
    /// Activation health check applied to the pre-inference and to exact
    /// fallback passes. The policy decides what a numeric fault does:
    /// [`GuardPolicy::Fail`] turns it into a typed error,
    /// [`GuardPolicy::Saturate`] repairs it in place, and the default
    /// [`GuardPolicy::FallbackExact`] abandons the sample's fast path.
    pub guard: ActivationGuard,
    /// Largest tolerated L1 distance between the canary sample's fast
    /// and exact probability rows. Beyond it the calibrated thresholds
    /// are considered untrustworthy (value-level poisoning slips past
    /// structural validation) and the whole run degrades to exact.
    pub canary_tolerance: f32,
    /// Per-sample skip-rate ceiling. A skipping pass above it is
    /// anomalous — saturated thresholds skip essentially everything —
    /// and falls back to exact for that sample.
    pub max_skip_rate: f64,
    /// Samples always taken before the early-exit test may trigger.
    pub min_samples: usize,
    /// L∞ movement of the running predictive mean below which a sample
    /// counts as converged.
    pub mean_tolerance: f32,
    /// Consecutive converged samples required to exit early.
    pub patience: usize,
}

impl Default for RobustConfig {
    fn default() -> Self {
        Self {
            guard: ActivationGuard::default(),
            canary_tolerance: 0.5,
            max_skip_rate: 0.98,
            min_samples: 8,
            mean_tolerance: 5e-4,
            patience: 3,
        }
    }
}

/// How much of a [`Engine::predict_robust`] run ran degraded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// Every sample came from the fast skipping path.
    Healthy,
    /// Some samples fell back to the exact path (or were lost).
    PartialFallback,
    /// The canary tripped: the entire run used the exact path.
    FullFallback,
    /// The sample budget was cut short by a deadline/cancellation or an
    /// admission-control sample cap: the prediction is a valid partial-T
    /// mean over fewer samples than configured (never silently — this
    /// flag and [`RobustReport::used_samples`] say exactly how many).
    PartialSamples,
}

impl DegradedMode {
    /// Stable lowercase mode name — the `mode` telemetry label.
    pub fn name(&self) -> &'static str {
        match self {
            DegradedMode::Healthy => "healthy",
            DegradedMode::PartialFallback => "partial_fallback",
            DegradedMode::FullFallback => "full_fallback",
            DegradedMode::PartialSamples => "partial_samples",
        }
    }
}

/// What [`Engine::predict_robust`] did to produce its prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustReport {
    /// Samples the configuration asked for.
    pub requested_samples: usize,
    /// Samples that contributed to the prediction.
    pub used_samples: usize,
    /// Samples recomputed on the exact path.
    pub fallback_samples: usize,
    /// Samples lost entirely (both paths failed).
    pub lost_samples: usize,
    /// Values repaired in place by a [`GuardPolicy::Saturate`] guard.
    pub repaired_values: usize,
    /// Whether the sample budget was cut short by mean convergence.
    pub early_exit: bool,
    /// Whether a deadline/cancellation expired the run before its full
    /// sample budget (the prediction is then a partial-T mean).
    pub expired: bool,
    /// The overall degradation verdict.
    pub mode: DegradedMode,
    /// Aggregate skip statistics over the fast-path samples.
    pub skip: SkipStats,
}

/// The end-to-end Fast-BCNN engine: a Bayesian network plus offline
/// threshold calibration, exposing exact and skipping MC-dropout
/// inference and workload extraction for the accelerator models.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: EngineConfig,
    bnet: BayesianNetwork,
    thresholds: ThresholdSet,
}

impl Engine {
    /// Builds the model and calibrates thresholds on a synthetic
    /// optimization input (Algorithm 1's offline stage).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; [`Engine::try_new`] is the
    /// non-panicking form.
    pub fn new(cfg: EngineConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(engine) => engine,
            Err(e) => panic!("engine construction failed: {e}"),
        }
    }

    /// Fallible counterpart of [`Engine::new`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] when a configuration field
    /// is outside its legal range.
    pub fn try_new(cfg: EngineConfig) -> Result<Self, EngineError> {
        cfg.validate()?;
        let net = cfg.model.build_scaled(cfg.seed, cfg.scale);
        let calibration_input = synth_input(net.input_shape(), cfg.seed ^ 0xCA11B);
        Self::with_network_and_dataset(net, cfg, &[calibration_input])
    }

    /// Wraps a caller-provided network (e.g. a trained LeNet-5) and
    /// calibrates thresholds on a synthetic optimization input.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn with_network(net: Network, cfg: EngineConfig) -> Self {
        let calibration_input = synth_input(net.input_shape(), cfg.seed ^ 0xCA11B);
        match Self::with_network_and_dataset(net, cfg, &[calibration_input]) {
            Ok(engine) => engine,
            Err(e) => panic!("engine construction failed: {e}"),
        }
    }

    /// Wraps a caller-provided network and calibrates thresholds on an
    /// explicit optimization dataset (Algorithm 1's `D`) — e.g. a slice
    /// of held-out training images.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::EmptyDataset`] when `dataset` is empty and
    /// [`EngineError::InvalidConfig`] when the configuration is out of
    /// range.
    pub fn with_network_and_dataset(
        net: Network,
        cfg: EngineConfig,
        dataset: &[Tensor],
    ) -> Result<Self, EngineError> {
        cfg.validate()?;
        if dataset.is_empty() {
            return Err(EngineError::EmptyDataset);
        }
        let bnet = BayesianNetwork::new(net, cfg.drop_rate);
        let optimizer = ThresholdOptimizer {
            samples: cfg.calibration_samples,
            confidence: cfg.confidence,
            ..ThresholdOptimizer::default()
        };
        let thresholds = optimizer.optimize_batch(&bnet, dataset, cfg.seed ^ 0x7E57);
        Ok(Self {
            cfg,
            bnet,
            thresholds,
        })
    }

    /// Wraps a caller-provided network together with an already
    /// calibrated threshold set — the deserialization path for model
    /// artifacts ([`crate::ModelArtifact`]), which must not re-run
    /// Algorithm 1: recalibrating would silently change the thresholds
    /// the artifact pinned, breaking bit-identity with the exporter.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] when the configuration is
    /// out of range or the thresholds do not fit the network's graph.
    pub fn from_calibrated(
        cfg: EngineConfig,
        net: Network,
        thresholds: ThresholdSet,
    ) -> Result<Self, EngineError> {
        cfg.validate()?;
        let bnet = BayesianNetwork::new(net, cfg.drop_rate);
        if let Err(e) = thresholds.validate(bnet.network()) {
            return Err(EngineError::InvalidConfig {
                reason: format!("thresholds do not fit the network: {e}"),
            });
        }
        Ok(Self {
            cfg,
            bnet,
            thresholds,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The wrapped Bayesian network.
    pub fn bayesian_network(&self) -> &BayesianNetwork {
        &self.bnet
    }

    /// The underlying network graph.
    pub fn network(&self) -> &Network {
        self.bnet.network()
    }

    /// The calibrated per-kernel thresholds.
    pub fn thresholds(&self) -> &ThresholdSet {
        &self.thresholds
    }

    /// Mutable access to the calibrated thresholds — the injection point
    /// for fault campaigns ([`crate::FaultInjector`]) and manual
    /// overrides. A structurally damaged set surfaces as a typed
    /// [`InferenceError::Thresholds`] from [`Engine::predict_robust`].
    pub fn thresholds_mut(&mut self) -> &mut ThresholdSet {
        &mut self.thresholds
    }

    /// Mutable access to the wrapped Bayesian network (weight fault
    /// injection; graph structure must not change).
    pub fn bayesian_network_mut(&mut self) -> &mut BayesianNetwork {
        &mut self.bnet
    }

    /// Exact MC-dropout inference (`T` dense stochastic passes),
    /// parallelized over `EngineConfig::threads` workers when > 1.
    pub fn predict_exact(&self, input: &Tensor) -> Prediction {
        let _span = fbcnn_telemetry::span("predict_exact");
        McDropout::new(self.cfg.samples, self.cfg.seed).run_with_threads(
            &self.bnet,
            input,
            self.cfg.threads,
        )
    }

    /// Skipping MC-dropout inference: one pre-inference plus `T` skipping
    /// passes, using the calibrated thresholds. Returns the prediction
    /// and the aggregate skip statistics.
    pub fn predict_fast(&self, input: &Tensor) -> (Prediction, SkipStats) {
        let _span = fbcnn_telemetry::span("predict_fast");
        let engine = PredictiveInference::new(&self.bnet, input, self.thresholds.clone());
        let (probs, skip) = engine.run_mc(self.cfg.seed, self.cfg.samples);
        (McDropout::summarize(probs), skip)
    }

    /// Guarded, gracefully-degrading inference with the default
    /// [`RobustConfig`]; see [`Engine::predict_robust_with`].
    ///
    /// # Errors
    ///
    /// See [`Engine::predict_robust_with`].
    pub fn predict_robust(
        &self,
        input: &Tensor,
    ) -> Result<(Prediction, RobustReport), InferenceError> {
        self.predict_robust_with(input, &RobustConfig::default())
    }

    /// [`Engine::predict_robust`] with an explicit mask seed instead of
    /// the configured one — the per-request form the batched engine
    /// compares against. `predict_robust(input)` is exactly
    /// `predict_robust_seeded(input, config().seed)`.
    ///
    /// # Errors
    ///
    /// See [`Engine::predict_robust_with`].
    pub fn predict_robust_seeded(
        &self,
        input: &Tensor,
        seed: u64,
    ) -> Result<(Prediction, RobustReport), InferenceError> {
        self.predict_robust_seeded_with(input, seed, &RobustConfig::default())
    }

    /// The fully explicit robust entry point: caller-chosen mask seed and
    /// robustness knobs.
    ///
    /// # Errors
    ///
    /// See [`Engine::predict_robust_with`].
    pub fn predict_robust_seeded_with(
        &self,
        input: &Tensor,
        seed: u64,
        rc: &RobustConfig,
    ) -> Result<(Prediction, RobustReport), InferenceError> {
        let _span = fbcnn_telemetry::span("predict_robust");
        let net = self.network();
        net.check_input(input)?;
        self.thresholds.validate(net)?;
        let fast = PredictiveInference::new(&self.bnet, input, self.thresholds.clone());
        let mut ws = Workspace::new();
        self.robust_core(&fast, input, seed, rc, &mut ws, &RunControl::none())
    }

    /// [`Engine::predict_robust_seeded_with`] under an explicit
    /// [`RunControl`] — the entry point the resilience layer uses to
    /// thread a deadline/cancellation token, a sample cap or a forced
    /// exact path into the staged pipeline. With [`RunControl::none`]
    /// this is bit-identical to [`Engine::predict_robust_seeded_with`].
    ///
    /// # Errors
    ///
    /// See [`Engine::predict_robust_with`]; additionally
    /// [`InferenceError::Expired`] when the token expires before even one
    /// sample completes.
    pub fn predict_robust_controlled(
        &self,
        input: &Tensor,
        seed: u64,
        rc: &RobustConfig,
        ctl: &RunControl,
    ) -> Result<(Prediction, RobustReport), InferenceError> {
        let _span = fbcnn_telemetry::span("predict_robust");
        let net = self.network();
        net.check_input(input)?;
        self.thresholds.validate(net)?;
        let fast = PredictiveInference::new(&self.bnet, input, self.thresholds.clone());
        let mut ws = Workspace::new();
        self.robust_core(&fast, input, seed, rc, &mut ws, ctl)
    }

    /// The shared immutable half of the skipping predictor (thresholds,
    /// indicator maps, structural flags), ready to be `Arc`-shared across
    /// requests by a serving layer. Built on demand so that threshold
    /// mutations through [`Engine::thresholds_mut`] are always picked up.
    pub fn predictor_shared(&self) -> fbcnn_predictor::PredictorShared {
        fbcnn_predictor::PredictorShared::new(&self.bnet, self.thresholds.clone())
    }

    /// Guarded, gracefully-degrading inference: runs the fast skipping
    /// path wherever it is healthy and falls back — per sample or, when
    /// the thresholds themselves are suspect, wholesale — to the exact
    /// path, so that a fault degrades throughput instead of correctness.
    ///
    /// The run proceeds in stages:
    ///
    /// 1. **Structural validation** — input shape and
    ///    [`ThresholdSet::validate`]; violations are typed errors.
    /// 2. **Pre-inference screening** — the dropout-free pass is checked
    ///    by the guard. A fault here means the *weights* are corrupt;
    ///    no healthy path exists, so it is always a typed error.
    /// 3. **Canary** — sample 0 runs through both paths; a large
    ///    probability divergence (value-poisoned thresholds) degrades
    ///    the whole run to exact ([`DegradedMode::FullFallback`]).
    /// 4. **Per-sample guards** — each fast sample is panic-isolated and
    ///    its skip rate and probability row sanity-checked; anomalous
    ///    samples are recomputed exactly under the guard.
    /// 5. **Early exit** — once at least `min_samples` rows are in and
    ///    the running predictive mean stops moving (`mean_tolerance`,
    ///    `patience`), the remaining sample budget is skipped.
    ///
    /// # Errors
    ///
    /// [`InferenceError::Input`] / [`InferenceError::Thresholds`] on
    /// structural violations, [`InferenceError::Numeric`] on corrupt
    /// weights (or any fault under [`GuardPolicy::Fail`]), and
    /// [`InferenceError::AllSamplesFailed`] when no sample survives on
    /// either path.
    pub fn predict_robust_with(
        &self,
        input: &Tensor,
        rc: &RobustConfig,
    ) -> Result<(Prediction, RobustReport), InferenceError> {
        self.predict_robust_seeded_with(input, self.cfg.seed, rc)
    }

    /// The staged robust pipeline (pre-inference screening → canary →
    /// guarded per-sample loop → early exit), operating on an already
    /// validated input and an already constructed skipping predictor.
    ///
    /// This is the single implementation behind both the one-shot
    /// [`Engine::predict_robust_with`] and the batched
    /// [`crate::BatchEngine`]: because both routes execute this exact
    /// code with the same `(input, seed, rc)`, a batched request is
    /// bit-identical to its sequential counterpart by construction.
    /// `ws` is caller-provided scratch (a serving layer pools it);
    /// workspace reuse does not change results. `ctl` threads the
    /// resilience layer's run control in: a cancellation/deadline token
    /// checked at every sample boundary, an optional sample cap
    /// (admission-control degradation), a forced exact path (open
    /// circuit breaker) and a per-sample hook (latency-fault injection);
    /// [`RunControl::none`] reproduces the uncontrolled behavior
    /// bit-for-bit.
    pub(crate) fn robust_core(
        &self,
        fast: &PredictiveInference<'_>,
        input: &Tensor,
        seed: u64,
        rc: &RobustConfig,
        ws: &mut Workspace,
        ctl: &RunControl,
    ) -> Result<(Prediction, RobustReport), InferenceError> {
        if ctl.cancel.expired() {
            // Already expired on arrival: refuse before spending any work.
            fbcnn_telemetry::counter_add("deadline_expired", &[("outcome", "empty")], 1);
            return Err(InferenceError::Expired {
                samples_completed: 0,
            });
        }
        for (node, act) in fast.pre_inference().activations.iter().enumerate() {
            if let Some(fault) = rc.guard.find_fault(node, act) {
                // Both paths share these weights: nothing to fall back to.
                fbcnn_telemetry::counter_add(
                    "engine_preinference_faults",
                    &[("kind", fault.kind())],
                    1,
                );
                return Err(InferenceError::Numeric(fault));
            }
        }

        let configured = self.cfg.samples;
        // An admission-control cap (DegradeToFewerSamples) shrinks the
        // sample budget but never below one; the report still carries the
        // configured ask so the degradation is visible.
        let requested = ctl
            .max_samples
            .map_or(configured, |cap| cap.clamp(1, configured));
        let capped = requested < configured;

        // Canary: run sample 0 through both paths. The exact row is the
        // reference; a fast row that diverges beyond tolerance means the
        // thresholds are structurally fine but semantically poisoned. An
        // open circuit breaker (`force_exact`) skips the canary — the
        // verdict is already in.
        let mut full_fallback = ctl.force_exact;
        if !ctl.force_exact {
            let canary_masks = self.bnet.generate_masks(seed, 0);
            let exact_probs =
                stats::softmax(self.bnet.forward_sample(input, &canary_masks).logits());
            if ActivationGuard::probs_are_sane(&exact_probs) {
                full_fallback = match catch_unwind(AssertUnwindSafe(|| {
                    fast.run_sample(&canary_masks)
                })) {
                    Ok(run) => {
                        let fast_probs = stats::softmax(run.logits());
                        let l1: f32 = exact_probs
                            .iter()
                            .zip(&fast_probs)
                            .map(|(a, b)| (a - b).abs())
                            .sum();
                        !ActivationGuard::probs_are_sane(&fast_probs) || l1 > rc.canary_tolerance
                    }
                    Err(_) => true,
                };
            }
            if full_fallback {
                fbcnn_telemetry::counter_add("engine_canary_trips", &[], 1);
            }
        }

        let mut rows: Vec<Vec<f32>> = Vec::with_capacity(requested);
        let mut running_sum: Vec<f32> = Vec::new();
        let mut fallback_samples = 0usize;
        let mut lost_samples = 0usize;
        let mut repaired_values = 0usize;
        let mut skip = SkipStats::default();
        let mut early_exit = false;
        let mut expired = false;
        let mut stable = 0usize;

        for s in 0..requested {
            if ctl.cancel.checkpoint() {
                // Deadline/cancellation at a sample boundary: the rows
                // already collected form a valid partial-T mean.
                expired = true;
                break;
            }
            let masks = self.bnet.generate_masks(seed, s);
            let mut row: Option<Vec<f32>> = None;

            if !full_fallback {
                if let Ok(run) = catch_unwind(AssertUnwindSafe(|| {
                    ctl.fire_sample_hook(s);
                    fast.run_sample(&masks)
                })) {
                    let sample_stats = run.stats();
                    let probs = stats::softmax(run.logits());
                    if ActivationGuard::probs_are_sane(&probs)
                        && sample_stats.skip_rate() <= rc.max_skip_rate
                    {
                        skip.absorb(sample_stats);
                        row = Some(probs);
                    }
                }
            }

            if row.is_none() {
                fallback_samples += 1;
                fbcnn_telemetry::counter_add("engine_fallback_samples", &[], 1);
                // The exact fallback runs under the same panic isolation
                // as the fast attempt: a hook or library panic here is a
                // contained lost sample, never an aborted request.
                let fallback = catch_unwind(AssertUnwindSafe(|| {
                    // The hook fires once per execution attempt (fast and
                    // fallback alike): a panicking hook therefore kills
                    // both paths and the sample is a contained loss.
                    ctl.fire_sample_hook(s);
                    self.bnet
                        .forward_sample_checked(input, &masks, &mut *ws, &rc.guard)
                }));
                match fallback {
                    Ok(Ok((run, repaired))) => {
                        repaired_values += repaired;
                        if repaired > 0 {
                            fbcnn_telemetry::counter_add(
                                "engine_repaired_values",
                                &[],
                                repaired as u64,
                            );
                        }
                        let probs = stats::softmax(run.logits());
                        if ActivationGuard::probs_are_sane(&probs) {
                            row = Some(probs);
                        } else {
                            lost_samples += 1;
                            fbcnn_telemetry::counter_add("engine_lost_samples", &[], 1);
                        }
                    }
                    Ok(Err(e)) => {
                        if rc.guard.policy == GuardPolicy::Fail {
                            return Err(e.into());
                        }
                        lost_samples += 1;
                        fbcnn_telemetry::counter_add("engine_lost_samples", &[], 1);
                    }
                    Err(_) => {
                        // The panic may have torn the scratch buffers;
                        // start the next sample clean.
                        *ws = Workspace::new();
                        lost_samples += 1;
                        fbcnn_telemetry::counter_add("engine_lost_samples", &[], 1);
                    }
                }
            }

            if let Some(probs) = row {
                if running_sum.is_empty() {
                    running_sum = vec![0.0; probs.len()];
                }
                // L∞ movement the new row causes in the running mean.
                let n = rows.len() as f32;
                let mut shift = f32::INFINITY;
                if !rows.is_empty() && running_sum.len() == probs.len() {
                    shift = 0.0;
                    for (i, &p) in probs.iter().enumerate() {
                        let old = running_sum[i] / n;
                        let new = (running_sum[i] + p) / (n + 1.0);
                        shift = shift.max((new - old).abs());
                    }
                }
                for (acc, &p) in running_sum.iter_mut().zip(&probs) {
                    *acc += p;
                }
                rows.push(probs);
                stable = if shift < rc.mean_tolerance {
                    stable + 1
                } else {
                    0
                };
                if rows.len() >= rc.min_samples && stable >= rc.patience && s + 1 < requested {
                    early_exit = true;
                    fbcnn_telemetry::counter_add("engine_early_exits", &[], 1);
                    break;
                }
            }
        }

        if expired {
            fbcnn_telemetry::counter_add(
                "deadline_expired",
                &[("outcome", if rows.is_empty() { "empty" } else { "partial" })],
                1,
            );
            fbcnn_telemetry::histogram_record("deadline_samples_completed", &[], rows.len() as f64);
        }
        if rows.is_empty() {
            if expired {
                return Err(InferenceError::Expired {
                    samples_completed: 0,
                });
            }
            return Err(InferenceError::AllSamplesFailed { requested });
        }
        let used_samples = rows.len();
        let prediction = McDropout::try_summarize(rows)?;
        // Mode precedence: a shortened sample budget (deadline or
        // admission cap) outranks the fallback verdicts — it is the one
        // degradation a caller must never mistake for a full-T result.
        let mode = if expired || capped {
            DegradedMode::PartialSamples
        } else if full_fallback {
            DegradedMode::FullFallback
        } else if fallback_samples > 0 {
            DegradedMode::PartialFallback
        } else {
            DegradedMode::Healthy
        };
        fbcnn_telemetry::counter_add("engine_degraded_runs", &[("mode", mode.name())], 1);
        Ok((
            prediction,
            RobustReport {
                requested_samples: configured,
                used_samples,
                fallback_samples,
                lost_samples,
                repaired_values,
                early_exit,
                expired,
                mode,
                skip,
            },
        ))
    }

    /// Extracts the accelerator workload for an input (pre-inference +
    /// `T` exact passes + skip maps), reusable across hardware
    /// configurations.
    pub fn workload(&self, input: &Tensor) -> Workload {
        Workload::build(
            &self.bnet,
            input,
            &self.thresholds,
            self.cfg.samples,
            self.cfg.seed,
        )
    }

    /// Convenience: simulate the baseline accelerator on a workload.
    pub fn simulate_baseline(&self, w: &Workload) -> RunReport {
        fbcnn_accel::BaselineSim::new(fbcnn_accel::HwConfig::baseline()).run(w)
    }

    /// Convenience: simulate Fast-BCNN with `tm` PEs on a workload.
    pub fn simulate_fast(&self, w: &Workload, tm: usize) -> RunReport {
        fbcnn_accel::FastBcnnSim::new(
            fbcnn_accel::HwConfig::fast_bcnn(tm),
            fbcnn_accel::SkipMode::Both,
        )
        .run(w)
    }
}

/// A deterministic, *spatially smooth* synthetic input in `[0, 1]` — the
/// stand-in for dataset images where none are needed (calibration,
/// workload probes).
///
/// Natural images are dominated by low spatial frequencies; white-noise
/// inputs would exaggerate max-pooling gaps (`max − 2nd max`) and with
/// them the number of affected neurons, distorting the characterization.
/// The field below bilinearly interpolates a coarse hashed grid plus a
/// gentle gradient and a little high-frequency texture.
pub fn synth_input(shape: Shape, seed: u64) -> Tensor {
    let grid = 4usize; // coarse cells per axis
    let hash = |a: u64, b: u64, c: u64| -> f32 {
        let mut z = seed
            .wrapping_add(a << 40)
            .wrapping_add(b << 20)
            .wrapping_add(c);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 1000) as f32 / 1000.0
    };
    let cell_h = (shape.height() as f32 / grid as f32).max(1.0);
    let cell_w = (shape.width() as f32 / grid as f32).max(1.0);
    Tensor::from_fn(shape, |c, r, col| {
        let fy = r as f32 / cell_h;
        let fx = col as f32 / cell_w;
        let (y0, x0) = (fy.floor(), fx.floor());
        let (ty, tx) = (fy - y0, fx - x0);
        let corner = |dy: u64, dx: u64| hash(c as u64, y0 as u64 + dy, x0 as u64 + dx);
        let smooth = corner(0, 0) * (1.0 - ty) * (1.0 - tx)
            + corner(0, 1) * (1.0 - ty) * tx
            + corner(1, 0) * ty * (1.0 - tx)
            + corner(1, 1) * ty * tx;
        let gradient = ((r + col) % 17) as f32 / 17.0;
        let texture = hash(c as u64 ^ 0xF00D, r as u64, col as u64);
        (0.7 * smooth + 0.2 * gradient + 0.1 * texture).clamp(0.0, 1.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_engine() -> Engine {
        Engine::new(EngineConfig {
            samples: 4,
            calibration_samples: 3,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        })
    }

    #[test]
    fn engine_builds_and_calibrates() {
        let e = small_engine();
        assert_eq!(e.network().name(), "lenet5");
        assert!(e.thresholds().nodes().count() >= 2);
    }

    #[test]
    fn fast_prediction_tracks_exact() {
        let e = small_engine();
        let input = synth_input(e.network().input_shape(), 11);
        let exact = e.predict_exact(&input);
        let (fast, stats) = e.predict_fast(&input);
        assert_eq!(exact.mean.len(), fast.mean.len());
        assert!(stats.skip_rate() > 0.2, "skip rate {}", stats.skip_rate());
        let diff: f32 = exact
            .mean
            .iter()
            .zip(&fast.mean)
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff < 0.5, "probability mass moved too much: {diff}");
    }

    #[test]
    fn workload_and_sims_compose() {
        let e = small_engine();
        let input = synth_input(e.network().input_shape(), 3);
        let w = e.workload(&input);
        let base = e.simulate_baseline(&w);
        let fast = e.simulate_fast(&w, 64);
        assert!(fast.total_cycles < base.total_cycles);
    }

    #[test]
    fn batch_calibration_accepts_multiple_inputs() {
        let cfg = EngineConfig {
            samples: 3,
            calibration_samples: 2,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        };
        let net = cfg.model.build_scaled(cfg.seed, cfg.scale);
        let dataset: Vec<Tensor> = (0..3)
            .map(|i| synth_input(net.input_shape(), 100 + i))
            .collect();
        let engine = Engine::with_network_and_dataset(net, cfg, &dataset).unwrap();
        assert!(engine.thresholds().nodes().count() >= 2);
        // Batch calibration sees more evidence; it may move thresholds
        // relative to single-input calibration but must stay usable.
        let input = synth_input(engine.network().input_shape(), 200);
        let (_, stats) = engine.predict_fast(&input);
        assert!(stats.skip_rate() > 0.2);
    }

    #[test]
    fn empty_dataset_is_a_typed_error() {
        let cfg = EngineConfig::for_model(ModelKind::LeNet5);
        let net = cfg.model.build_scaled(cfg.seed, cfg.scale);
        assert_eq!(
            Engine::with_network_and_dataset(net, cfg, &[]).err(),
            Some(EngineError::EmptyDataset)
        );
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        for cfg in [
            EngineConfig {
                samples: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                calibration_samples: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                threads: 0,
                ..EngineConfig::default()
            },
            EngineConfig {
                drop_rate: 1.5,
                ..EngineConfig::default()
            },
            EngineConfig {
                confidence: 0.0,
                ..EngineConfig::default()
            },
        ] {
            assert!(
                matches!(Engine::try_new(cfg), Err(EngineError::InvalidConfig { .. })),
                "config {cfg:?} should be rejected"
            );
        }
        assert!(Engine::try_new(EngineConfig {
            samples: 4,
            calibration_samples: 3,
            ..EngineConfig::default()
        })
        .is_ok());
    }

    #[test]
    fn robust_prediction_is_healthy_on_a_clean_engine() {
        let e = small_engine();
        let input = synth_input(e.network().input_shape(), 11);
        let (fast, _) = e.predict_fast(&input);
        let (robust, report) = e.predict_robust(&input).unwrap();
        assert_eq!(report.mode, DegradedMode::Healthy);
        assert_eq!(report.fallback_samples, 0);
        assert_eq!(report.used_samples, e.config().samples);
        assert!(!report.early_exit, "4 samples cannot hit min_samples 8");
        assert_eq!(robust.mean, fast.mean, "healthy robust path == fast path");
    }

    #[test]
    fn robust_prediction_rejects_bad_input_shape() {
        let e = small_engine();
        let bad = Tensor::zeros(Shape::new(1, 2, 2));
        assert!(matches!(
            e.predict_robust(&bad),
            Err(InferenceError::Input(_))
        ));
    }

    #[test]
    fn robust_prediction_exits_early_once_the_mean_converges() {
        let e = Engine::new(EngineConfig {
            samples: 40,
            calibration_samples: 3,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        });
        let input = synth_input(e.network().input_shape(), 11);
        let rc = RobustConfig {
            min_samples: 4,
            mean_tolerance: 0.05, // generous: individual rows barely move a 10-class mean
            patience: 2,
            ..RobustConfig::default()
        };
        let (pred, report) = e.predict_robust_with(&input, &rc).unwrap();
        assert!(report.early_exit, "report: {report:?}");
        assert!(report.used_samples < report.requested_samples);
        assert!(report.used_samples >= rc.min_samples);
        assert_eq!(pred.mean.len(), 10);
    }

    #[test]
    fn synth_input_is_deterministic_and_bounded() {
        let s = Shape::new(3, 8, 8);
        let a = synth_input(s, 5);
        let b = synth_input(s, 5);
        let c = synth_input(s, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
