//! Chaos soak driver for the resilient serving layer.
//!
//! [`run_chaos`] hammers a [`crate::ResilientBatchEngine`] with rounds of
//! seeded faults — injected sample panics, poisoned thresholds, NaN
//! weights, latency stalls, queue overload and deadline pressure — and
//! checks the robustness contract end to end:
//!
//! * **zero hangs, zero aborts** — every request returns, every failure
//!   is a typed [`crate::InferenceError`] (never a panic past the
//!   isolation, never a silent truncation);
//! * **exact accounting** — the per-request outcomes, the aggregate
//!   [`crate::ResilienceTotals`] and the `breaker_*` / `shed_*` /
//!   `retry_*` / `deadline_*` telemetry counters all reconcile with each
//!   other, with no slack;
//! * **determinism** — the whole campaign derives from one seed, so a
//!   failing run replays exactly. In deterministic mode (wall-clock
//!   faults excluded, sample-budget deadlines only) the breaker
//!   transition sequence and shed counts are stable enough to pin in a
//!   golden fixture.
//!
//! The driver installs its own private telemetry [`Registry`] for the
//! duration of the run (callers must not hold their own install guard —
//! the telemetry install lock is not reentrant) and snapshots the
//! resilience counters into the report before restoring the previous
//! recorder.
//!
//! [`Registry`]: fbcnn_telemetry::Registry

use crate::batch::{BatchConfig, BatchEngine, BatchRequest};
use crate::engine::{synth_input, Engine, EngineConfig};
use crate::faults::{FaultInjector, ThresholdFault};
use crate::resilience::{
    error_reason_name, BreakerConfig, CircuitBreaker, NoJitter, ResilienceConfig, ResilienceTotals,
    ResilientBatchEngine, RetryPolicy, ShedPolicy,
};
use fbcnn_nn::models::ModelKind;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One fault class the soak rotates through. Each round applies exactly
/// one class, so per-class behavior is attributable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosClass {
    /// No fault: the control group — every request must be healthy and
    /// bit-identical to the unwrapped engine.
    Calm,
    /// Seeded per-sample stalls through the sample hook; perturbs time
    /// only, never numerics.
    Latency,
    /// The sample hook panics on every sample of a request's first
    /// attempt: total contained loss ([`crate::InferenceError::AllSamplesFailed`]),
    /// the typed-transient class a retry heals.
    SamplePanic,
    /// Truncated threshold vectors: a structural poisoning caught by
    /// validation as a typed, permanent error.
    ThresholdTruncate,
    /// A NaN convolution weight: pre-inference screening reports a typed
    /// numeric error; permanent failures open the breaker.
    WeightNan,
    /// Twice the queue capacity is offered; admission control sheds or
    /// degrades the overflow under the round's shed policy.
    Overload,
    /// A sample budget of half the configured `T`: every request expires
    /// mid-run and returns a flagged partial-T mean.
    Deadline,
}

impl ChaosClass {
    /// Stable lowercase class name — the report key.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosClass::Calm => "calm",
            ChaosClass::Latency => "latency",
            ChaosClass::SamplePanic => "sample_panic",
            ChaosClass::ThresholdTruncate => "threshold_truncate",
            ChaosClass::WeightNan => "weight_nan",
            ChaosClass::Overload => "overload",
            ChaosClass::Deadline => "deadline",
        }
    }

    /// The classes a campaign rotates through. Wall-clock latency faults
    /// are excluded in deterministic mode (they cannot change numerics,
    /// but their stalls make run time seed-dependent).
    pub fn roster(include_latency: bool) -> Vec<ChaosClass> {
        let mut classes = vec![
            ChaosClass::Calm,
            ChaosClass::SamplePanic,
            ChaosClass::ThresholdTruncate,
            ChaosClass::WeightNan,
            ChaosClass::Overload,
            ChaosClass::Deadline,
        ];
        if include_latency {
            classes.insert(1, ChaosClass::Latency);
        }
        classes
    }
}

/// Knobs of a chaos campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Master seed; the whole campaign (faults, inputs, schedules) is a
    /// function of it.
    pub seed: u64,
    /// Fault rounds; each uses one class from the roster, round-robin.
    pub rounds: usize,
    /// Requests offered per round (the overload class offers double).
    pub requests_per_round: usize,
    /// Include wall-clock latency faults (off in deterministic mode).
    pub include_latency: bool,
    /// MC sample count `T` of the engine under test.
    pub samples: usize,
}

impl ChaosConfig {
    /// The full soak: ≥ 200 requests over every fault class including
    /// latency and deadline pressure.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            rounds: 28,
            requests_per_round: 8,
            include_latency: true,
            samples: 6,
        }
    }

    /// A CI smoke: every deterministic class once, a few requests each.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            rounds: 6,
            requests_per_round: 4,
            include_latency: false,
            samples: 4,
        }
    }

    /// The golden-pinned campaign: no wall-clock faults, sample-budget
    /// deadlines only, sized so the breaker walks a full
    /// Closed → Open → HalfOpen → Closed cycle.
    pub fn deterministic(seed: u64) -> Self {
        Self {
            seed,
            rounds: 12,
            requests_per_round: 4,
            include_latency: false,
            samples: 4,
        }
    }

    /// Total requests this campaign offers (overload rounds offer 2×).
    pub fn offered_requests(&self) -> usize {
        let roster = ChaosClass::roster(self.include_latency);
        (0..self.rounds)
            .map(|r| match roster[r % roster.len()] {
                ChaosClass::Overload => self.requests_per_round * 2,
                _ => self.requests_per_round,
            })
            .sum()
    }
}

/// Per-round aggregates of a chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosRoundSummary {
    /// The fault class applied ([`ChaosClass::name`]).
    pub class: String,
    /// Requests offered this round.
    pub offered: usize,
    /// Requests that produced a prediction.
    pub ok: usize,
    /// Requests that failed with a typed error.
    pub failed: usize,
    /// Requests whose sample budget expired (partial or empty).
    pub expired: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Retry attempts spent this round.
    pub retries: u64,
}

/// The outcome of one [`run_chaos`] campaign.
#[derive(Debug)]
pub struct ChaosReport {
    /// The campaign seed.
    pub seed: u64,
    /// Requests offered across all rounds.
    pub requests_total: usize,
    /// Requests that produced a prediction.
    pub ok_total: usize,
    /// Requests that failed with a typed error.
    pub failed_total: usize,
    /// Distinct fault classes exercised, in roster order.
    pub classes: Vec<String>,
    /// Per-round summaries, in order.
    pub rounds: Vec<ChaosRoundSummary>,
    /// Campaign-wide resilience totals (the fold of every round's).
    pub totals: ResilienceTotals,
    /// Failed-request counts bucketed by typed reason; an unrecognized
    /// reason cannot occur (the bucket names come from
    /// [`error_reason_name`]).
    pub loss_reasons: BTreeMap<String, u64>,
    /// The breaker's full transition sequence, as `(from, to)` names.
    pub transitions: Vec<(String, String)>,
    /// The breaker state after the campaign.
    pub final_breaker_state: String,
    /// Snapshot of the resilience telemetry counters (summed over label
    /// sets, except where a labeled cell is named explicitly).
    pub counters: BTreeMap<String, u64>,
    /// Per-round [`crate::ResilientBatchReport::reconcile`] failures —
    /// must be empty.
    pub round_reconcile_errors: Vec<String>,
    /// Wall-clock of the campaign, nanoseconds.
    pub elapsed_ns: u64,
}

impl ChaosReport {
    /// Cross-checks the telemetry counter snapshot against the aggregate
    /// totals — the "counters reconcile exactly" half of the soak's
    /// acceptance criteria (the per-round outcome/total reconciliation is
    /// in `round_reconcile_errors`).
    ///
    /// # Errors
    ///
    /// Returns the first mismatching quantity as a message.
    pub fn reconcile(&self) -> Result<(), String> {
        if let Some(e) = self.round_reconcile_errors.first() {
            return Err(format!("round reconcile failed: {e}"));
        }
        let get = |name: &str| self.counters.get(name).copied().unwrap_or(0);
        let checks = [
            ("shed_requests", self.totals.shed as u64),
            ("retry_attempts", self.totals.retries),
            ("retry_successes", self.totals.retry_successes),
            ("retry_exhausted", self.totals.retry_exhausted),
            ("breaker_forced_exact", self.totals.forced_exact),
            ("breaker_probes_issued", self.totals.probes),
            ("breaker_transitions", self.transitions.len() as u64),
            ("deadline_expired", self.totals.expired as u64),
        ];
        for (name, want) in checks {
            let got = get(name);
            if got != want {
                return Err(format!("counter {name} = {got}, totals say {want}"));
            }
        }
        let losses: u64 = self.loss_reasons.values().sum();
        if losses != self.failed_total as u64 {
            return Err(format!(
                "loss_reasons sum to {losses}, failed_total is {}",
                self.failed_total
            ));
        }
        if self.ok_total + self.failed_total != self.requests_total {
            return Err(format!(
                "ok {} + failed {} != offered {}",
                self.ok_total, self.failed_total, self.requests_total
            ));
        }
        Ok(())
    }
}

/// RAII filter over the global panic hook that swallows the chaos
/// harness's own injected panics (payloads starting with `"chaos:"`) so a
/// soak does not flood stderr; every other panic still prints through the
/// previous hook. Restores the previous hook on drop.
struct SilencedChaosPanics;

impl SilencedChaosPanics {
    fn install() -> Self {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.starts_with("chaos:"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.starts_with("chaos:"))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
        Self
    }
}

impl Drop for SilencedChaosPanics {
    fn drop(&mut self) {
        // Restore the default hook; the previous one is owned by the
        // filtering closure and cannot be recovered, but the default is
        // what every test environment starts from.
        let _ = std::panic::take_hook();
    }
}

/// Runs a chaos campaign; see the module docs. Installs a private
/// telemetry registry for the duration — the caller must not hold a
/// [`fbcnn_telemetry::install`] guard across this call.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    run_chaos_with_registry(cfg).0
}

/// [`run_chaos`], additionally handing back the private [`Registry`] the
/// campaign recorded into so a harness can export the raw spans and
/// counters (`Registry::write_jsonl` / `write_prometheus`) without ever
/// holding the global install lock itself.
///
/// [`Registry`]: fbcnn_telemetry::Registry
pub fn run_chaos_with_registry(cfg: &ChaosConfig) -> (ChaosReport, Arc<fbcnn_telemetry::Registry>) {
    let start = Instant::now();
    let registry = Arc::new(fbcnn_telemetry::Registry::new());
    let telemetry_guard =
        fbcnn_telemetry::install(Arc::clone(&registry) as Arc<dyn fbcnn_telemetry::Recorder>);
    let _silencer = SilencedChaosPanics::install();

    let engine_cfg = EngineConfig {
        samples: cfg.samples.max(2),
        calibration_samples: 3,
        seed: cfg.seed,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    };
    let pristine = Engine::new(engine_cfg);
    let input_shape = pristine.network().input_shape();

    // One breaker across all rounds, so permanent-fault rounds open it
    // and later healthy rounds walk it through cooldown, probes and
    // closure — the full state machine in one campaign.
    let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
        window: 8,
        min_observations: 4,
        threshold: 0.5,
        cooldown_requests: 4,
        probes: 2,
    }));
    let mut injector = FaultInjector::new(cfg.seed ^ 0xC4A0_5EED);
    let roster = ChaosClass::roster(cfg.include_latency);
    let shed_policies = [
        ShedPolicy::RejectNewest,
        ShedPolicy::RejectOldest,
        ShedPolicy::DegradeToFewerSamples,
    ];

    let mut rounds = Vec::with_capacity(cfg.rounds);
    let mut totals = ResilienceTotals::default();
    let mut loss_reasons: BTreeMap<String, u64> = BTreeMap::new();
    let mut round_reconcile_errors = Vec::new();
    let mut overload_rounds = 0usize;

    for round in 0..cfg.rounds {
        let class = roster[round % roster.len()];

        let mut engine = pristine.clone();
        match class {
            ChaosClass::ThresholdTruncate => {
                let net = engine.network().clone();
                injector.poison_thresholds(engine.thresholds_mut(), &net, ThresholdFault::Truncate);
            }
            ChaosClass::WeightNan => {
                injector.poison_conv_weight_nan(engine.bayesian_network_mut().network_mut());
            }
            _ => {}
        }
        let batch = BatchEngine::new(
            engine,
            BatchConfig {
                threads: 1,
                cache_capacity: 8,
                ..BatchConfig::default()
            },
        );

        let mut rcfg = ResilienceConfig {
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_micros(400),
                seed: cfg.seed,
            },
            queue_capacity: cfg.requests_per_round,
            shed_policy: shed_policies[overload_rounds % shed_policies.len()],
            breaker: *breaker.config(),
            ..ResilienceConfig::default()
        };
        if class == ChaosClass::Deadline {
            rcfg.sample_budget = Some((engine_cfg.samples / 2).max(1) as u64);
        }
        let mut resilient = ResilientBatchEngine::with_breaker(batch, rcfg, Arc::clone(&breaker))
            .with_jitter(Arc::new(NoJitter));
        match class {
            ChaosClass::SamplePanic => {
                resilient = resilient.with_request_sample_hook(Arc::new(|_id, attempt, _s| {
                    if attempt == 0 {
                        panic!("chaos: injected sample fault");
                    }
                }));
            }
            ChaosClass::Latency => {
                let schedule = injector.latency_schedule(0.3, Duration::from_micros(200));
                resilient = resilient.with_request_sample_hook(Arc::new(move |_id, _a, s| {
                    let d = schedule.delay_for(s);
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                }));
            }
            _ => {}
        }

        let offered = match class {
            ChaosClass::Overload => {
                overload_rounds += 1;
                cfg.requests_per_round * 2
            }
            _ => cfg.requests_per_round,
        };
        let requests: Vec<BatchRequest> = (0..offered)
            .map(|i| {
                let id = (round * 1000 + i) as u64;
                BatchRequest::new(id, synth_input(input_shape, cfg.seed ^ id.wrapping_mul(41)))
            })
            .collect();

        let report = resilient.run_batch(&requests);
        if let Err(e) = report.reconcile() {
            round_reconcile_errors.push(format!("round {round} ({}): {e}", class.name()));
        }

        let mut summary = ChaosRoundSummary {
            class: class.name().to_string(),
            offered,
            ok: 0,
            failed: 0,
            expired: 0,
            shed: 0,
            retries: report.totals.retries,
        };
        for o in &report.outcomes {
            match &o.outcome.result {
                Ok(_) => summary.ok += 1,
                Err(e) => {
                    summary.failed += 1;
                    *loss_reasons
                        .entry(error_reason_name(e).to_string())
                        .or_insert(0) += 1;
                }
            }
            if o.expired {
                summary.expired += 1;
            }
            if o.shed {
                summary.shed += 1;
            }
        }
        let t = &report.totals;
        totals.offered += t.offered;
        totals.shed += t.shed;
        totals.degraded += t.degraded;
        totals.expired += t.expired;
        totals.retries += t.retries;
        totals.retry_successes += t.retry_successes;
        totals.retry_exhausted += t.retry_exhausted;
        totals.forced_exact += t.forced_exact;
        totals.probes += t.probes;
        totals.requeues += t.requeues;
        totals.abandoned += t.abandoned;
        rounds.push(summary);
    }

    let transitions: Vec<(String, String)> = breaker
        .transitions()
        .into_iter()
        .map(|(from, to)| (from.name().to_string(), to.name().to_string()))
        .collect();
    let final_breaker_state = breaker.state().name().to_string();
    drop(telemetry_guard);

    let mut counters = BTreeMap::new();
    for name in [
        "shed_requests",
        "shed_degraded_requests",
        "retry_attempts",
        "retry_successes",
        "retry_exhausted",
        "breaker_transitions",
        "breaker_forced_exact",
        "deadline_expired",
        "engine_lost_samples",
        "engine_canary_trips",
        "watchdog_requeues",
        "watchdog_abandoned",
    ] {
        counters.insert(name.to_string(), registry.counter_total(name));
    }
    counters.insert(
        "breaker_probes_issued".to_string(),
        registry
            .counter_value("breaker_probes", &[("phase", "issued")])
            .unwrap_or(0),
    );

    let ok_total = rounds.iter().map(|r| r.ok).sum();
    let failed_total = rounds.iter().map(|r| r.failed).sum();
    let report = ChaosReport {
        seed: cfg.seed,
        requests_total: totals.offered,
        ok_total,
        failed_total,
        classes: roster.iter().map(|c| c.name().to_string()).collect(),
        rounds,
        totals,
        loss_reasons,
        transitions,
        final_breaker_state,
        counters,
        round_reconcile_errors,
        elapsed_ns: start.elapsed().as_nanos() as u64,
    };
    (report, registry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_reconciles_and_types_every_loss() {
        let report = run_chaos(&ChaosConfig::quick(5));
        assert_eq!(
            report.requests_total,
            ChaosConfig::quick(5).offered_requests()
        );
        assert!(report.round_reconcile_errors.is_empty(), "{report:?}");
        report.reconcile().unwrap();
        assert!(report.classes.len() >= 5);
        // Every class left a footprint: panics healed by retry, poisoned
        // rounds failed typed, deadline rounds expired, overload shed.
        assert!(report.totals.retries > 0, "sample_panic retried");
        assert!(report.totals.expired > 0, "deadline rounds expired");
        assert!(
            report.totals.shed > 0,
            "overload round shed under RejectNewest"
        );
        assert!(report.loss_reasons.contains_key("thresholds"));
        assert!(report.loss_reasons.contains_key("numeric"));
    }

    #[test]
    fn campaigns_replay_exactly_from_their_seed() {
        let a = run_chaos(&ChaosConfig::deterministic(9));
        let b = run_chaos(&ChaosConfig::deterministic(9));
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.final_breaker_state, b.final_breaker_state);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.loss_reasons, b.loss_reasons);
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(
                (ra.ok, ra.failed, ra.expired, ra.shed, ra.retries),
                (rb.ok, rb.failed, rb.expired, rb.shed, rb.retries),
            );
        }
    }

    #[test]
    fn deterministic_campaign_walks_the_breaker_through_a_full_cycle() {
        let report = run_chaos(&ChaosConfig::deterministic(5));
        report.reconcile().unwrap();
        let seq = &report.transitions;
        assert!(
            seq.iter().any(|(f, t)| f == "closed" && t == "open"),
            "breaker never opened: {seq:?}"
        );
        assert!(
            seq.iter().any(|(f, t)| f == "open" && t == "half_open"),
            "breaker never half-opened: {seq:?}"
        );
        assert!(
            seq.iter().any(|(f, t)| f == "half_open" && t == "closed"),
            "breaker never recovered: {seq:?}"
        );
    }
}
