//! Chaos soak driver for the resilient serving layer.
//!
//! [`run_chaos`] hammers a [`crate::ResilientBatchEngine`] with rounds of
//! seeded faults — injected sample panics, poisoned thresholds, NaN
//! weights, latency stalls, queue overload and deadline pressure — and
//! checks the robustness contract end to end:
//!
//! * **zero hangs, zero aborts** — every request returns, every failure
//!   is a typed [`crate::InferenceError`] (never a panic past the
//!   isolation, never a silent truncation);
//! * **exact accounting** — the per-request outcomes, the aggregate
//!   [`crate::ResilienceTotals`] and the `breaker_*` / `shed_*` /
//!   `retry_*` / `deadline_*` telemetry counters all reconcile with each
//!   other, with no slack;
//! * **determinism** — the whole campaign derives from one seed, so a
//!   failing run replays exactly. In deterministic mode (wall-clock
//!   faults excluded, sample-budget deadlines only) the breaker
//!   transition sequence and shed counts are stable enough to pin in a
//!   golden fixture.
//!
//! The driver installs its own private telemetry [`Registry`] for the
//! duration of the run (callers must not hold their own install guard —
//! the telemetry install lock is not reentrant) and snapshots the
//! resilience counters into the report before restoring the previous
//! recorder.
//!
//! [`Registry`]: fbcnn_telemetry::Registry

use crate::artifact::{ArtifactError, ModelArtifact};
use crate::batch::{BatchConfig, BatchEngine, BatchRequest};
use crate::engine::{synth_input, DegradedMode, Engine, EngineConfig};
use crate::faults::{FaultInjector, ThresholdFault};
use crate::registry::{ModelRegistry, RegistryConfig, RegistryReport, VersionCounters};
use crate::resilience::{
    error_reason_name, BreakerConfig, CircuitBreaker, NoJitter, ResilienceConfig, ResilienceTotals,
    ResilientBatchEngine, RetryPolicy, ShedPolicy,
};
use fbcnn_nn::models::ModelKind;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One fault class the soak rotates through. Each round applies exactly
/// one class, so per-class behavior is attributable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosClass {
    /// No fault: the control group — every request must be healthy and
    /// bit-identical to the unwrapped engine.
    Calm,
    /// Seeded per-sample stalls through the sample hook; perturbs time
    /// only, never numerics.
    Latency,
    /// The sample hook panics on every sample of a request's first
    /// attempt: total contained loss ([`crate::InferenceError::AllSamplesFailed`]),
    /// the typed-transient class a retry heals.
    SamplePanic,
    /// Truncated threshold vectors: a structural poisoning caught by
    /// validation as a typed, permanent error.
    ThresholdTruncate,
    /// A NaN convolution weight: pre-inference screening reports a typed
    /// numeric error; permanent failures open the breaker.
    WeightNan,
    /// Twice the queue capacity is offered; admission control sheds or
    /// degrades the overflow under the round's shed policy.
    Overload,
    /// A sample budget of half the configured `T`: every request expires
    /// mid-run and returns a flagged partial-T mean.
    Deadline,
}

impl ChaosClass {
    /// Stable lowercase class name — the report key.
    pub fn name(&self) -> &'static str {
        match self {
            ChaosClass::Calm => "calm",
            ChaosClass::Latency => "latency",
            ChaosClass::SamplePanic => "sample_panic",
            ChaosClass::ThresholdTruncate => "threshold_truncate",
            ChaosClass::WeightNan => "weight_nan",
            ChaosClass::Overload => "overload",
            ChaosClass::Deadline => "deadline",
        }
    }

    /// The classes a campaign rotates through. Wall-clock latency faults
    /// are excluded in deterministic mode (they cannot change numerics,
    /// but their stalls make run time seed-dependent).
    pub fn roster(include_latency: bool) -> Vec<ChaosClass> {
        let mut classes = vec![
            ChaosClass::Calm,
            ChaosClass::SamplePanic,
            ChaosClass::ThresholdTruncate,
            ChaosClass::WeightNan,
            ChaosClass::Overload,
            ChaosClass::Deadline,
        ];
        if include_latency {
            classes.insert(1, ChaosClass::Latency);
        }
        classes
    }
}

/// Knobs of a chaos campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Master seed; the whole campaign (faults, inputs, schedules) is a
    /// function of it.
    pub seed: u64,
    /// Fault rounds; each uses one class from the roster, round-robin.
    pub rounds: usize,
    /// Requests offered per round (the overload class offers double).
    pub requests_per_round: usize,
    /// Include wall-clock latency faults (off in deterministic mode).
    pub include_latency: bool,
    /// MC sample count `T` of the engine under test.
    pub samples: usize,
}

impl ChaosConfig {
    /// The full soak: ≥ 200 requests over every fault class including
    /// latency and deadline pressure.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            rounds: 28,
            requests_per_round: 8,
            include_latency: true,
            samples: 6,
        }
    }

    /// A CI smoke: every deterministic class once, a few requests each.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            rounds: 6,
            requests_per_round: 4,
            include_latency: false,
            samples: 4,
        }
    }

    /// The golden-pinned campaign: no wall-clock faults, sample-budget
    /// deadlines only, sized so the breaker walks a full
    /// Closed → Open → HalfOpen → Closed cycle.
    pub fn deterministic(seed: u64) -> Self {
        Self {
            seed,
            rounds: 12,
            requests_per_round: 4,
            include_latency: false,
            samples: 4,
        }
    }

    /// Total requests this campaign offers (overload rounds offer 2×).
    pub fn offered_requests(&self) -> usize {
        let roster = ChaosClass::roster(self.include_latency);
        (0..self.rounds)
            .map(|r| match roster[r % roster.len()] {
                ChaosClass::Overload => self.requests_per_round * 2,
                _ => self.requests_per_round,
            })
            .sum()
    }
}

/// Per-round aggregates of a chaos campaign.
#[derive(Debug, Clone)]
pub struct ChaosRoundSummary {
    /// The fault class applied ([`ChaosClass::name`]).
    pub class: String,
    /// Requests offered this round.
    pub offered: usize,
    /// Requests that produced a prediction.
    pub ok: usize,
    /// Requests that failed with a typed error.
    pub failed: usize,
    /// Requests whose sample budget expired (partial or empty).
    pub expired: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Retry attempts spent this round.
    pub retries: u64,
}

/// The outcome of one [`run_chaos`] campaign.
#[derive(Debug)]
pub struct ChaosReport {
    /// The campaign seed.
    pub seed: u64,
    /// Requests offered across all rounds.
    pub requests_total: usize,
    /// Requests that produced a prediction.
    pub ok_total: usize,
    /// Requests that failed with a typed error.
    pub failed_total: usize,
    /// Distinct fault classes exercised, in roster order.
    pub classes: Vec<String>,
    /// Per-round summaries, in order.
    pub rounds: Vec<ChaosRoundSummary>,
    /// Campaign-wide resilience totals (the fold of every round's).
    pub totals: ResilienceTotals,
    /// Failed-request counts bucketed by typed reason; an unrecognized
    /// reason cannot occur (the bucket names come from
    /// [`error_reason_name`]).
    pub loss_reasons: BTreeMap<String, u64>,
    /// The breaker's full transition sequence, as `(from, to)` names.
    pub transitions: Vec<(String, String)>,
    /// The breaker state after the campaign.
    pub final_breaker_state: String,
    /// Snapshot of the resilience telemetry counters (summed over label
    /// sets, except where a labeled cell is named explicitly).
    pub counters: BTreeMap<String, u64>,
    /// Per-round [`crate::ResilientBatchReport::reconcile`] failures —
    /// must be empty.
    pub round_reconcile_errors: Vec<String>,
    /// Wall-clock of the campaign, nanoseconds.
    pub elapsed_ns: u64,
}

impl ChaosReport {
    /// Cross-checks the telemetry counter snapshot against the aggregate
    /// totals — the "counters reconcile exactly" half of the soak's
    /// acceptance criteria (the per-round outcome/total reconciliation is
    /// in `round_reconcile_errors`).
    ///
    /// # Errors
    ///
    /// Returns the first mismatching quantity as a message.
    pub fn reconcile(&self) -> Result<(), String> {
        if let Some(e) = self.round_reconcile_errors.first() {
            return Err(format!("round reconcile failed: {e}"));
        }
        let get = |name: &str| self.counters.get(name).copied().unwrap_or(0);
        let checks = [
            ("shed_requests", self.totals.shed as u64),
            ("retry_attempts", self.totals.retries),
            ("retry_successes", self.totals.retry_successes),
            ("retry_exhausted", self.totals.retry_exhausted),
            ("breaker_forced_exact", self.totals.forced_exact),
            ("breaker_probes_issued", self.totals.probes),
            ("breaker_transitions", self.transitions.len() as u64),
            ("deadline_expired", self.totals.expired as u64),
        ];
        for (name, want) in checks {
            let got = get(name);
            if got != want {
                return Err(format!("counter {name} = {got}, totals say {want}"));
            }
        }
        let losses: u64 = self.loss_reasons.values().sum();
        if losses != self.failed_total as u64 {
            return Err(format!(
                "loss_reasons sum to {losses}, failed_total is {}",
                self.failed_total
            ));
        }
        if self.ok_total + self.failed_total != self.requests_total {
            return Err(format!(
                "ok {} + failed {} != offered {}",
                self.ok_total, self.failed_total, self.requests_total
            ));
        }
        Ok(())
    }
}

/// RAII filter over the global panic hook that swallows the chaos
/// harness's own injected panics (payloads starting with `"chaos:"`) so a
/// soak does not flood stderr; every other panic still prints through the
/// previous hook. Restores the previous hook on drop.
pub(crate) struct SilencedChaosPanics;

impl SilencedChaosPanics {
    pub(crate) fn install() -> Self {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.starts_with("chaos:"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.starts_with("chaos:"))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
        Self
    }
}

impl Drop for SilencedChaosPanics {
    fn drop(&mut self) {
        // Restore the default hook; the previous one is owned by the
        // filtering closure and cannot be recovered, but the default is
        // what every test environment starts from.
        let _ = std::panic::take_hook();
    }
}

/// Runs a chaos campaign into a fresh private telemetry registry; see
/// the module docs.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    run_chaos_with_registry(cfg).0
}

/// [`run_chaos`], additionally handing back the private [`Registry`] the
/// campaign recorded into so a harness can export the raw spans and
/// counters (`Registry::write_jsonl` / `write_prometheus`) without ever
/// holding the global install lock itself.
///
/// [`Registry`]: fbcnn_telemetry::Registry
pub fn run_chaos_with_registry(cfg: &ChaosConfig) -> (ChaosReport, Arc<fbcnn_telemetry::Registry>) {
    let registry = Arc::new(fbcnn_telemetry::Registry::new());
    let report = run_chaos_into(cfg, &registry);
    (report, registry)
}

/// Runs a chaos campaign recording into a *caller-owned* telemetry
/// [`Registry`]. If `registry` is already the globally installed
/// recorder (the caller holds its own [`fbcnn_telemetry::install`]
/// guard), the campaign records through it directly; otherwise it is
/// installed just for the duration. Either way the reported counter
/// snapshot is the campaign's own delta, so pre-existing counts in the
/// registry never leak into the report.
///
/// [`Registry`]: fbcnn_telemetry::Registry
pub fn run_chaos_into(cfg: &ChaosConfig, registry: &Arc<fbcnn_telemetry::Registry>) -> ChaosReport {
    let start = Instant::now();
    let recorder = Arc::clone(registry) as Arc<dyn fbcnn_telemetry::Recorder>;
    // `installed_sink_is` (not `is_installed`): the global slot may hold
    // a wrapper — e.g. a windowed SLO registry — that aggregates into
    // this registry. Recording through the wrapper keeps its windowed
    // view consistent; re-installing would deadlock on the non-reentrant
    // install lock.
    let telemetry_guard = if fbcnn_telemetry::installed_sink_is(registry) {
        None
    } else {
        Some(fbcnn_telemetry::install(recorder))
    };
    let counters_before = snapshot_resilience_counters(registry);
    let _silencer = SilencedChaosPanics::install();

    let engine_cfg = EngineConfig {
        samples: cfg.samples.max(2),
        calibration_samples: 3,
        seed: cfg.seed,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    };
    let pristine = Engine::new(engine_cfg);
    let input_shape = pristine.network().input_shape();

    // One breaker across all rounds, so permanent-fault rounds open it
    // and later healthy rounds walk it through cooldown, probes and
    // closure — the full state machine in one campaign.
    let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
        window: 8,
        min_observations: 4,
        threshold: 0.5,
        cooldown_requests: 4,
        probes: 2,
    }));
    let mut injector = FaultInjector::new(cfg.seed ^ 0xC4A0_5EED);
    let roster = ChaosClass::roster(cfg.include_latency);
    let shed_policies = [
        ShedPolicy::RejectNewest,
        ShedPolicy::RejectOldest,
        ShedPolicy::DegradeToFewerSamples,
    ];

    let mut rounds = Vec::with_capacity(cfg.rounds);
    let mut totals = ResilienceTotals::default();
    let mut loss_reasons: BTreeMap<String, u64> = BTreeMap::new();
    let mut round_reconcile_errors = Vec::new();
    let mut overload_rounds = 0usize;

    for round in 0..cfg.rounds {
        let class = roster[round % roster.len()];

        let mut engine = pristine.clone();
        match class {
            ChaosClass::ThresholdTruncate => {
                let net = engine.network().clone();
                injector.poison_thresholds(engine.thresholds_mut(), &net, ThresholdFault::Truncate);
            }
            ChaosClass::WeightNan => {
                injector.poison_conv_weight_nan(engine.bayesian_network_mut().network_mut());
            }
            _ => {}
        }
        let batch = BatchEngine::new(
            engine,
            BatchConfig {
                threads: 1,
                cache_capacity: 8,
                ..BatchConfig::default()
            },
        );

        let mut rcfg = ResilienceConfig {
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_micros(400),
                seed: cfg.seed,
            },
            queue_capacity: cfg.requests_per_round,
            shed_policy: shed_policies[overload_rounds % shed_policies.len()],
            breaker: *breaker.config(),
            ..ResilienceConfig::default()
        };
        if class == ChaosClass::Deadline {
            rcfg.sample_budget = Some((engine_cfg.samples / 2).max(1) as u64);
        }
        let mut resilient = ResilientBatchEngine::with_breaker(batch, rcfg, Arc::clone(&breaker))
            .with_jitter(Arc::new(NoJitter));
        match class {
            ChaosClass::SamplePanic => {
                resilient = resilient.with_request_sample_hook(Arc::new(|_id, attempt, _s| {
                    if attempt == 0 {
                        panic!("chaos: injected sample fault");
                    }
                }));
            }
            ChaosClass::Latency => {
                let schedule = injector.latency_schedule(0.3, Duration::from_micros(200));
                resilient = resilient.with_request_sample_hook(Arc::new(move |_id, _a, s| {
                    let d = schedule.delay_for(s);
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                }));
            }
            _ => {}
        }

        let offered = match class {
            ChaosClass::Overload => {
                overload_rounds += 1;
                cfg.requests_per_round * 2
            }
            _ => cfg.requests_per_round,
        };
        let requests: Vec<BatchRequest> = (0..offered)
            .map(|i| {
                let id = (round * 1000 + i) as u64;
                BatchRequest::new(id, synth_input(input_shape, cfg.seed ^ id.wrapping_mul(41)))
            })
            .collect();

        let report = resilient.run_batch(&requests);
        if let Err(e) = report.reconcile() {
            round_reconcile_errors.push(format!("round {round} ({}): {e}", class.name()));
        }

        let mut summary = ChaosRoundSummary {
            class: class.name().to_string(),
            offered,
            ok: 0,
            failed: 0,
            expired: 0,
            shed: 0,
            retries: report.totals.retries,
        };
        for o in &report.outcomes {
            match &o.outcome.result {
                Ok(_) => summary.ok += 1,
                Err(e) => {
                    summary.failed += 1;
                    *loss_reasons
                        .entry(error_reason_name(e).to_string())
                        .or_insert(0) += 1;
                }
            }
            if o.expired {
                summary.expired += 1;
            }
            if o.shed {
                summary.shed += 1;
            }
        }
        let t = &report.totals;
        totals.offered += t.offered;
        totals.shed += t.shed;
        totals.degraded += t.degraded;
        totals.expired += t.expired;
        totals.retries += t.retries;
        totals.retry_successes += t.retry_successes;
        totals.retry_exhausted += t.retry_exhausted;
        totals.forced_exact += t.forced_exact;
        totals.probes += t.probes;
        totals.requeues += t.requeues;
        totals.abandoned += t.abandoned;
        rounds.push(summary);
    }

    let transitions: Vec<(String, String)> = breaker
        .transitions()
        .into_iter()
        .map(|(from, to)| (from.name().to_string(), to.name().to_string()))
        .collect();
    let final_breaker_state = breaker.state().name().to_string();
    drop(telemetry_guard);

    let mut counters = snapshot_resilience_counters(registry);
    for (name, value) in counters.iter_mut() {
        *value -= counters_before.get(name).copied().unwrap_or(0);
    }

    let ok_total = rounds.iter().map(|r| r.ok).sum();
    let failed_total = rounds.iter().map(|r| r.failed).sum();
    ChaosReport {
        seed: cfg.seed,
        requests_total: totals.offered,
        ok_total,
        failed_total,
        classes: roster.iter().map(|c| c.name().to_string()).collect(),
        rounds,
        totals,
        loss_reasons,
        transitions,
        final_breaker_state,
        counters,
        round_reconcile_errors,
        elapsed_ns: start.elapsed().as_nanos() as u64,
    }
}

/// Knobs of a swap-under-fire campaign: the chaos soak's traffic
/// pattern pointed at a [`ModelRegistry`] that deploys a new model
/// version every round — healthy versions are promoted mid-traffic,
/// crashing versions must be rolled back automatically by the canary
/// verdict, and nothing may be lost either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapChaosConfig {
    /// Master seed; traffic, routing and fault arming derive from it.
    pub seed: u64,
    /// Deploy rounds. Even rounds stage a healthy version (promoted
    /// after its traffic); odd rounds stage a version that crashes on
    /// every canary sample (must auto-roll back mid-round).
    pub rounds: usize,
    /// Requests offered per round.
    pub requests_per_round: usize,
    /// MC sample count `T` of the engines under test.
    pub samples: usize,
    /// Registry shards.
    pub shards: usize,
}

impl SwapChaosConfig {
    /// The full soak: several promote/rollback cycles under load.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            rounds: 8,
            requests_per_round: 24,
            samples: 4,
            shards: 2,
        }
    }

    /// A CI smoke: two promotions and two rollbacks, a few requests
    /// each.
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            rounds: 4,
            requests_per_round: 16,
            samples: 3,
            shards: 2,
        }
    }

    /// Total requests the campaign offers.
    pub fn offered_requests(&self) -> usize {
        self.rounds * self.requests_per_round
    }
}

/// Per-round aggregates of a swap-under-fire campaign.
#[derive(Debug, Clone)]
pub struct SwapRoundSummary {
    /// Round index.
    pub round: usize,
    /// `"rollout_good"` or `"rollout_bad"`.
    pub action: String,
    /// Model version deployed this round.
    pub deployed_version: u64,
    /// Requests offered this round.
    pub offered: usize,
    /// Requests that produced a prediction.
    pub ok: usize,
    /// Requests that failed with a typed error (bad rounds only: the
    /// crashing candidate's canaries before the rollback).
    pub failed: usize,
    /// Whether the canary verdict rolled the round's rollout back.
    pub rolled_back: bool,
    /// Whether the round's rollout was promoted.
    pub promoted: bool,
}

/// The outcome of one [`run_swap_chaos`] campaign.
#[derive(Debug)]
pub struct SwapChaosReport {
    /// The campaign seed.
    pub seed: u64,
    /// Requests offered across all rounds.
    pub requests_total: usize,
    /// Requests that produced a prediction.
    pub ok_total: usize,
    /// Requests that failed with a typed error.
    pub failed_total: usize,
    /// Deploys staged (one per round).
    pub deploys: u64,
    /// Rollouts promoted (the healthy rounds).
    pub promotions: u64,
    /// Rollouts rolled back (the crashing rounds).
    pub rollbacks: u64,
    /// Model version active after the campaign.
    pub final_version: u64,
    /// Per-round summaries, in order.
    pub rounds: Vec<SwapRoundSummary>,
    /// The registry's exact per-version accounting over the campaign.
    pub version_requests: BTreeMap<u64, VersionCounters>,
    /// The `version_requests{version}` telemetry counter cells
    /// (campaign delta) — must equal the accounting, request for
    /// request.
    pub version_request_counters: BTreeMap<u64, u64>,
    /// Campaign deltas of the swap lifecycle counters
    /// (`swap_deploys`, `swap_promotions`, `rollback_total`).
    pub counters: BTreeMap<String, u64>,
    /// Per-round accounting reconciliation failures — must be empty.
    pub round_reconcile_errors: Vec<String>,
    /// Intact fast-path responses compared bit-for-bit against a
    /// reference engine.
    pub compared_outputs: usize,
    /// Compared responses that differed — must be zero.
    pub mismatched_outputs: usize,
    /// Wall-clock of the campaign, nanoseconds.
    pub elapsed_ns: u64,
}

impl SwapChaosReport {
    /// Cross-checks the whole campaign: per-round outcome folds, the
    /// registry accounting, the telemetry counters and the bit-identity
    /// sweep must all agree exactly.
    ///
    /// # Errors
    ///
    /// Returns the first mismatching quantity as a message.
    pub fn reconcile(&self) -> Result<(), String> {
        if let Some(e) = self.round_reconcile_errors.first() {
            return Err(e.clone());
        }
        if self.ok_total + self.failed_total != self.requests_total {
            return Err(format!(
                "ok {} + failed {} != offered {}",
                self.ok_total, self.failed_total, self.requests_total
            ));
        }
        let accounted: u64 = self.version_requests.values().map(|c| c.requests).sum();
        if accounted != self.requests_total as u64 {
            return Err(format!(
                "version accounting holds {accounted} requests, campaign offered {}",
                self.requests_total
            ));
        }
        for (version, counters) in &self.version_requests {
            let cell = self
                .version_request_counters
                .get(version)
                .copied()
                .unwrap_or(0);
            if cell != counters.requests {
                return Err(format!(
                    "version_requests{{version=\"{version}\"}} counter is {cell}, accounting says {}",
                    counters.requests
                ));
            }
        }
        for (name, want) in [
            ("swap_deploys", self.deploys),
            ("swap_promotions", self.promotions),
            ("rollback_total", self.rollbacks),
        ] {
            let got = self.counters.get(name).copied().unwrap_or(0);
            if got != want {
                return Err(format!("counter {name} = {got}, registry says {want}"));
            }
        }
        if self.mismatched_outputs > 0 {
            return Err(format!(
                "{} of {} compared responses diverged from the reference engine",
                self.mismatched_outputs, self.compared_outputs
            ));
        }
        Ok(())
    }
}

/// Scaffolding shared by the swap-chaos and supervision soaks: builds a
/// pristine reference engine from `engine_cfg`, exports its artifact to
/// disk, reloads it (so every harness exercises the persistence
/// round-trip, not just in-memory clones) and boots a registry from the
/// reloaded artifact under `registry_cfg`.
///
/// # Errors
///
/// [`ArtifactError`] when the export/reload round-trip fails or the
/// registry rejects the artifact/config.
pub fn boot_registry_via_disk(
    engine_cfg: EngineConfig,
    version: u64,
    label: &str,
    registry_cfg: RegistryConfig,
) -> Result<(Arc<ModelRegistry>, Engine), ArtifactError> {
    let pristine = Engine::new(engine_cfg);
    let path = std::env::temp_dir().join(format!(
        "fbcnn_boot_{label}_{}_{}.json",
        pristine.config().seed,
        std::process::id()
    ));
    ModelArtifact::from_engine(&pristine, version, label).save(&path)?;
    let booted = ModelArtifact::load(&path);
    let _ = std::fs::remove_file(&path);
    let registry = ModelRegistry::new(booted?, registry_cfg)?;
    Ok((Arc::new(registry), pristine))
}

/// Runs a swap-under-fire campaign into a fresh private telemetry
/// registry; see [`SwapChaosConfig`].
///
/// # Errors
///
/// [`ArtifactError`] when the campaign's own artifact export/reload
/// round-trip or a deploy fails (a harness bug, not an injected fault).
pub fn run_swap_chaos(cfg: &SwapChaosConfig) -> Result<SwapChaosReport, ArtifactError> {
    let registry = Arc::new(fbcnn_telemetry::Registry::new());
    run_swap_chaos_into(cfg, &registry)
}

/// [`run_swap_chaos`] recording into a caller-owned telemetry registry
/// (installed only if it is not already the global recorder, exactly
/// like [`run_chaos_into`]).
///
/// # Errors
///
/// [`ArtifactError`] when the artifact round-trip or a deploy fails.
pub fn run_swap_chaos_into(
    cfg: &SwapChaosConfig,
    telemetry: &Arc<fbcnn_telemetry::Registry>,
) -> Result<SwapChaosReport, ArtifactError> {
    let start = Instant::now();
    let recorder = Arc::clone(telemetry) as Arc<dyn fbcnn_telemetry::Recorder>;
    // `installed_sink_is` (not `is_installed`): the global slot may hold
    // a wrapper — e.g. a windowed SLO registry — that aggregates into
    // this registry. Recording through the wrapper keeps its windowed
    // view consistent; re-installing would deadlock on the non-reentrant
    // install lock.
    let telemetry_guard = if fbcnn_telemetry::installed_sink_is(telemetry) {
        None
    } else {
        Some(fbcnn_telemetry::install(recorder))
    };
    let _silencer = SilencedChaosPanics::install();

    // Campaign counter baselines, so a reused registry never leaks
    // pre-existing counts into the report.
    let campaign_versions: Vec<u64> = (1..=cfg.rounds as u64 + 1).collect();
    let swap_counter_names = ["swap_deploys", "swap_promotions", "rollback_total"];
    let cells_before: BTreeMap<u64, u64> = campaign_versions
        .iter()
        .map(|v| (*v, version_requests_cell(telemetry, *v)))
        .collect();
    let swap_before: BTreeMap<String, u64> = swap_counter_names
        .iter()
        .map(|n| ((*n).to_string(), telemetry.counter_total(n)))
        .collect();

    let engine_cfg = EngineConfig {
        samples: cfg.samples.max(2),
        calibration_samples: 3,
        seed: cfg.seed,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    };

    // A version that crashes on the traffic it serves: while a rollout
    // is in flight only the candidate serves canary ids, so arming the
    // hook on exactly those ids is a version-correlated fault.
    let armed = Arc::new(AtomicBool::new(false));
    let registry_cfg = RegistryConfig {
        shards: cfg.shards.max(1),
        routing_seed: cfg.seed ^ 0x5A_A55A,
        canary_percent: 50,
        canary_min_requests: 4,
        canary_trip_threshold: 0.5,
        batch: BatchConfig {
            threads: 1,
            cache_capacity: 8,
            ..BatchConfig::default()
        },
        resilience: ResilienceConfig::default(),
        sample_hook: {
            let armed = Arc::clone(&armed);
            let (routing_seed, percent) = (cfg.seed ^ 0x5A_A55A, 50);
            Some(Arc::new(move |id: u64, _attempt: u32, _sample: usize| {
                if armed.load(Ordering::Relaxed)
                    && crate::registry::is_canary(routing_seed, percent, id)
                {
                    panic!("chaos: candidate crashes on every sample it serves");
                }
            }))
        },
        jitter: Some(Arc::new(NoJitter)),
        flight: None,
        supervise: None,
    };
    let (registry, pristine) = boot_registry_via_disk(engine_cfg, 1, "v1", registry_cfg)?;
    let input_shape = pristine.network().input_shape();

    let mut rounds = Vec::with_capacity(cfg.rounds);
    let mut round_reconcile_errors = Vec::new();
    let mut compared_outputs = 0usize;
    let mut mismatched_outputs = 0usize;

    for round in 0..cfg.rounds {
        let bad = round % 2 == 1;
        let version = round as u64 + 2;
        let label = if bad {
            format!("v{version}-crashy")
        } else {
            format!("v{version}")
        };
        registry.deploy(ModelArtifact::from_engine(&pristine, version, label))?;
        if bad {
            armed.store(true, Ordering::Relaxed);
        }

        let before = registry.version_counters();
        let round_start = Instant::now();
        let mut outcomes = Vec::with_capacity(cfg.requests_per_round);
        let mut rolled_back = false;
        for i in 0..cfg.requests_per_round {
            let id = (round * 10_000 + i) as u64;
            let input = synth_input(input_shape, cfg.seed ^ id.wrapping_mul(41));
            let o = registry.handle(&BatchRequest::new(id, input));
            if o.rolled_back {
                rolled_back = true;
                // The fault dies with the version that carried it.
                armed.store(false, Ordering::Relaxed);
            }
            outcomes.push(o);
        }
        armed.store(false, Ordering::Relaxed);

        // Intact fast-path responses must be bit-identical to the
        // reference engine fed the same input and derived seed.
        for o in &outcomes {
            if o.outcome.forced_exact {
                continue;
            }
            if let Ok((pred, report)) = &o.outcome.outcome.result {
                if report.mode != DegradedMode::Healthy {
                    continue;
                }
                let id = o.outcome.outcome.id;
                let input = synth_input(input_shape, cfg.seed ^ id.wrapping_mul(41));
                compared_outputs += 1;
                match pristine.predict_robust_seeded(&input, o.outcome.outcome.seed) {
                    Ok((want, _)) => {
                        let same = want
                            .mean
                            .iter()
                            .map(|x| x.to_bits())
                            .eq(pred.mean.iter().map(|x| x.to_bits()));
                        if !same {
                            mismatched_outputs += 1;
                        }
                    }
                    Err(_) => mismatched_outputs += 1,
                }
            }
        }

        // Exact accounting: the registry's per-version counters must
        // have moved by precisely this round's outcome fold.
        let mut version_delta = registry.version_counters();
        for (v, c) in version_delta.iter_mut() {
            if let Some(prev) = before.get(v) {
                c.requests -= prev.requests;
                c.ok -= prev.ok;
                c.failed -= prev.failed;
                c.canary -= prev.canary;
            }
        }
        version_delta.retain(|_, c| c.requests > 0);
        let ok = outcomes
            .iter()
            .filter(|o| o.outcome.outcome.result.is_ok())
            .count();
        let failed = outcomes.len() - ok;
        let fold = RegistryReport {
            outcomes,
            version_delta,
            elapsed_ns: round_start.elapsed().as_nanos() as u64,
        };
        if let Err(e) = fold.reconcile() {
            round_reconcile_errors.push(format!("round {round}: {e}"));
        }

        let promoted = if bad {
            if !rolled_back {
                round_reconcile_errors
                    .push(format!("round {round}: crashing canary never rolled back"));
            }
            false
        } else {
            if rolled_back {
                round_reconcile_errors.push(format!("round {round}: healthy rollout rolled back"));
            }
            registry.promote() == Some(version)
        };
        rounds.push(SwapRoundSummary {
            round,
            action: if bad { "rollout_bad" } else { "rollout_good" }.to_string(),
            deployed_version: version,
            offered: cfg.requests_per_round,
            ok,
            failed,
            rolled_back,
            promoted,
        });
    }

    let version_requests = registry.version_counters();
    let version_request_counters: BTreeMap<u64, u64> = campaign_versions
        .iter()
        .map(|v| {
            let cell = version_requests_cell(telemetry, *v);
            (*v, cell - cells_before.get(v).copied().unwrap_or(0))
        })
        .filter(|(_, n)| *n > 0)
        .collect();
    let counters: BTreeMap<String, u64> = swap_counter_names
        .iter()
        .map(|n| {
            let total = telemetry.counter_total(n);
            (
                (*n).to_string(),
                total - swap_before.get(*n).copied().unwrap_or(0),
            )
        })
        .collect();
    drop(telemetry_guard);

    let ok_total = rounds.iter().map(|r| r.ok).sum();
    let failed_total = rounds.iter().map(|r| r.failed).sum();
    Ok(SwapChaosReport {
        seed: cfg.seed,
        requests_total: cfg.offered_requests(),
        ok_total,
        failed_total,
        deploys: registry.deploys(),
        promotions: registry.promotions(),
        rollbacks: registry.rollbacks(),
        final_version: registry.active_version(),
        rounds,
        version_requests,
        version_request_counters,
        counters,
        round_reconcile_errors,
        compared_outputs,
        mismatched_outputs,
        elapsed_ns: start.elapsed().as_nanos() as u64,
    })
}

/// Reads one labeled `version_requests` counter cell.
fn version_requests_cell(telemetry: &fbcnn_telemetry::Registry, version: u64) -> u64 {
    let label = version.to_string();
    telemetry
        .counter_value("version_requests", &[("version", &label)])
        .unwrap_or(0)
}

/// Snapshots every resilience counter the chaos reports reconcile
/// against (summed over label sets, plus the explicitly labeled
/// issued-probe cell).
fn snapshot_resilience_counters(registry: &fbcnn_telemetry::Registry) -> BTreeMap<String, u64> {
    let mut counters = BTreeMap::new();
    for name in [
        "shed_requests",
        "shed_degraded_requests",
        "retry_attempts",
        "retry_successes",
        "retry_exhausted",
        "breaker_transitions",
        "breaker_forced_exact",
        "deadline_expired",
        "engine_lost_samples",
        "engine_canary_trips",
        "watchdog_requeues",
        "watchdog_abandoned",
    ] {
        counters.insert(name.to_string(), registry.counter_total(name));
    }
    counters.insert(
        "breaker_probes_issued".to_string(),
        registry
            .counter_value("breaker_probes", &[("phase", "issued")])
            .unwrap_or(0),
    );
    counters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_campaign_reconciles_and_types_every_loss() {
        let report = run_chaos(&ChaosConfig::quick(5));
        assert_eq!(
            report.requests_total,
            ChaosConfig::quick(5).offered_requests()
        );
        assert!(report.round_reconcile_errors.is_empty(), "{report:?}");
        report.reconcile().unwrap();
        assert!(report.classes.len() >= 5);
        // Every class left a footprint: panics healed by retry, poisoned
        // rounds failed typed, deadline rounds expired, overload shed.
        assert!(report.totals.retries > 0, "sample_panic retried");
        assert!(report.totals.expired > 0, "deadline rounds expired");
        assert!(
            report.totals.shed > 0,
            "overload round shed under RejectNewest"
        );
        assert!(report.loss_reasons.contains_key("thresholds"));
        assert!(report.loss_reasons.contains_key("numeric"));
    }

    #[test]
    fn campaigns_replay_exactly_from_their_seed() {
        let a = run_chaos(&ChaosConfig::deterministic(9));
        let b = run_chaos(&ChaosConfig::deterministic(9));
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.final_breaker_state, b.final_breaker_state);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.loss_reasons, b.loss_reasons);
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(
                (ra.ok, ra.failed, ra.expired, ra.shed, ra.retries),
                (rb.ok, rb.failed, rb.expired, rb.shed, rb.retries),
            );
        }
    }

    #[test]
    fn chaos_into_reuses_an_installed_recorder_and_reports_deltas() {
        let registry = Arc::new(fbcnn_telemetry::Registry::new());
        let guard =
            fbcnn_telemetry::install(Arc::clone(&registry) as Arc<dyn fbcnn_telemetry::Recorder>);
        // Pre-existing counts in the caller's registry must not leak
        // into the campaign's reported counters.
        fbcnn_telemetry::counter_add("retry_attempts", &[], 17);
        let report = run_chaos_into(&ChaosConfig::quick(5), &registry);
        drop(guard);
        report.reconcile().unwrap();
        let fresh = run_chaos(&ChaosConfig::quick(5));
        assert_eq!(report.counters, fresh.counters);
    }

    #[test]
    fn swap_under_fire_loses_nothing_and_reconciles_exactly() {
        let report = run_swap_chaos(&SwapChaosConfig::quick(7)).unwrap();
        report.reconcile().unwrap();
        assert_eq!(
            report.requests_total,
            SwapChaosConfig::quick(7).offered_requests()
        );
        // Two healthy rounds promoted, two crashing rounds rolled back.
        assert_eq!(report.promotions, 2);
        assert_eq!(report.rollbacks, 2);
        assert_eq!(report.deploys, 4);
        // The last good deploy (round 2 → version 4) ends up active.
        assert_eq!(report.final_version, 4);
        // Failures only ever came from the crashing candidates.
        for r in &report.rounds {
            if r.action == "rollout_good" {
                assert_eq!(r.failed, 0, "healthy round {} lost requests", r.round);
                assert!(r.promoted && !r.rolled_back);
            } else {
                assert!(r.rolled_back && !r.promoted);
            }
        }
        assert!(report.compared_outputs > 0, "bit-identity sweep never ran");
        assert_eq!(report.mismatched_outputs, 0);
    }

    #[test]
    fn swap_campaigns_replay_exactly_from_their_seed() {
        let a = run_swap_chaos(&SwapChaosConfig::quick(11)).unwrap();
        let b = run_swap_chaos(&SwapChaosConfig::quick(11)).unwrap();
        assert_eq!(a.version_requests, b.version_requests);
        assert_eq!(a.counters, b.counters);
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(
                (ra.ok, ra.failed, ra.rolled_back, ra.promoted),
                (rb.ok, rb.failed, rb.rolled_back, rb.promoted)
            );
        }
    }

    #[test]
    fn deterministic_campaign_walks_the_breaker_through_a_full_cycle() {
        let report = run_chaos(&ChaosConfig::deterministic(5));
        report.reconcile().unwrap();
        let seq = &report.transitions;
        assert!(
            seq.iter().any(|(f, t)| f == "closed" && t == "open"),
            "breaker never opened: {seq:?}"
        );
        assert!(
            seq.iter().any(|(f, t)| f == "open" && t == "half_open"),
            "breaker never half-opened: {seq:?}"
        );
        assert!(
            seq.iter().any(|(f, t)| f == "half_open" && t == "closed"),
            "breaker never recovered: {seq:?}"
        );
    }
}
