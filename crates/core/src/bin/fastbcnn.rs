//! `fastbcnn` — the workspace's command-line front end.
//!
//! ```text
//! fastbcnn demo         [--model lenet|vgg|googlenet|alexnet] [--samples N] [--full]
//! fastbcnn simulate     [--model ...] [--samples N] [--full]
//! fastbcnn characterize [--model ...] [--samples N] [--full]
//! fastbcnn train        [--epochs N] [--train-size N]
//! fastbcnn observe      [--model ...] [--samples N] [--full]
//! fastbcnn serve-batch  [--model ...] [--samples N] [--requests N] [--threads N] [--full]
//!                       [--deadline-ms N] [--retry-max N] [--breaker-threshold X]
//! fastbcnn export-model --out <path> [--model ...] [--samples N] [--model-version N] [--label S]
//! fastbcnn serve        [--artifact <path>] [--requests N] [--shards N] [--canary-percent N]
//! fastbcnn serve-net    [--artifact <path>] [--addr host:port] [--connections N]
//!                       [--requests N] [--shards N] [--supervise]
//! fastbcnn swap         [--artifact <path>] [--next <path>] [--requests N] [--shards N]
//!                       [--canary-percent N]
//! fastbcnn watch        [--windows N] [--window-ms N] [--requests N] [--chaos]
//!                       [--supervise] [--postmortem-out <path>]
//! fastbcnn postmortem   <file> [--id N]
//! ```
//!
//! Every command additionally accepts `--trace-out <path>` and
//! `--metrics-out <path>` to export the run's telemetry as a JSONL trace
//! and a Prometheus-style text dump (see `docs/OBSERVABILITY.md`);
//! `observe` records a fast + robust inference and prints the per-layer
//! skip/fallback table. `serve-batch` serves through the resilient layer
//! (see `docs/RESILIENCE.md`): `--deadline-ms` bounds each request's
//! wall-clock (expired requests return flagged partial-T means and are
//! excluded from the bit-identity check), `--retry-max` caps retries of
//! transient failures and `--breaker-threshold` sets the circuit
//! breaker's error-rate trip point. `--supervise` (on `serve-net` and
//! `watch`) enables per-shard health supervision (see
//! `docs/REGISTRY.md`): sick shards are quarantined out of the routing
//! ring, their traffic fails over deterministically, and a background
//! rebuild re-admits them through a probe gate; both commands print the
//! per-shard health/ledger table.

use fast_bcnn::report::{format_table, pct, speedup};
use fast_bcnn::{
    synth_input, BaselineSim, BatchConfig, BatchEngine, BatchRequest, CnvlutinSim, Engine,
    EngineConfig, FastBcnnSim, HwConfig, IdealSim, ModelArtifact, ModelRegistry, RegistryConfig,
    ResilienceConfig, ResilientBatchEngine, SkipMode,
};
use fbcnn_nn::models::{ModelKind, ModelScale};

struct Args {
    command: String,
    model: ModelKind,
    samples: usize,
    scale: ModelScale,
    epochs: usize,
    train_size: usize,
    requests: usize,
    threads: usize,
    deadline_ms: Option<u64>,
    retry_max: Option<u32>,
    breaker_threshold: Option<f64>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    artifact: Option<String>,
    next: Option<String>,
    out: Option<String>,
    model_version: u64,
    label: Option<String>,
    shards: usize,
    canary_percent: u32,
    addr: String,
    connections: usize,
    windows: usize,
    window_ms: u64,
    chaos: bool,
    supervise: bool,
    postmortem_out: Option<String>,
    input: Option<String>,
    id: Option<u64>,
}

fn parse() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = argv.first().cloned().unwrap_or_else(|| "help".into());
    let mut args = Args {
        command,
        model: ModelKind::LeNet5,
        samples: 16,
        scale: ModelScale::BENCH,
        epochs: 6,
        train_size: 400,
        requests: 8,
        threads: 1,
        deadline_ms: None,
        retry_max: None,
        breaker_threshold: None,
        trace_out: None,
        metrics_out: None,
        artifact: None,
        next: None,
        out: None,
        model_version: 1,
        label: None,
        shards: 2,
        canary_percent: 20,
        addr: "127.0.0.1:0".to_string(),
        connections: 2,
        windows: 6,
        window_ms: 1_000,
        chaos: false,
        supervise: false,
        postmortem_out: None,
        input: None,
        id: None,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--model" => {
                let v = argv.get(i + 1).ok_or("--model needs a value")?;
                args.model = match v.as_str() {
                    "lenet" => ModelKind::LeNet5,
                    "vgg" => ModelKind::Vgg16,
                    "googlenet" => ModelKind::GoogLeNet,
                    "alexnet" => ModelKind::AlexNet,
                    other => return Err(format!("unknown model {other}")),
                };
                i += 1;
            }
            "--samples" => {
                args.samples = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--samples needs a number")?;
                i += 1;
            }
            "--epochs" => {
                args.epochs = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--epochs needs a number")?;
                i += 1;
            }
            "--train-size" => {
                args.train_size = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--train-size needs a number")?;
                i += 1;
            }
            "--requests" => {
                args.requests = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--requests needs a number")?;
                i += 1;
            }
            "--threads" => {
                args.threads = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &usize| t > 0)
                    .ok_or("--threads needs a number > 0")?;
                i += 1;
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    argv.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|&ms: &u64| ms > 0)
                        .ok_or("--deadline-ms needs a number > 0")?,
                );
                i += 1;
            }
            "--retry-max" => {
                args.retry_max = Some(
                    argv.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--retry-max needs a number")?,
                );
                i += 1;
            }
            "--breaker-threshold" => {
                args.breaker_threshold = Some(
                    argv.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|&x: &f64| x > 0.0 && x <= 1.0)
                        .ok_or("--breaker-threshold needs a number in (0, 1]")?,
                );
                i += 1;
            }
            "--artifact" => {
                args.artifact = Some(
                    argv.get(i + 1)
                        .ok_or("--artifact needs a path")?
                        .to_string(),
                );
                i += 1;
            }
            "--next" => {
                args.next = Some(argv.get(i + 1).ok_or("--next needs a path")?.to_string());
                i += 1;
            }
            "--out" => {
                args.out = Some(argv.get(i + 1).ok_or("--out needs a path")?.to_string());
                i += 1;
            }
            "--model-version" => {
                args.model_version = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &u64| v > 0)
                    .ok_or("--model-version needs a number > 0")?;
                i += 1;
            }
            "--label" => {
                args.label = Some(argv.get(i + 1).ok_or("--label needs a value")?.to_string());
                i += 1;
            }
            "--shards" => {
                args.shards = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&s: &usize| s > 0)
                    .ok_or("--shards needs a number > 0")?;
                i += 1;
            }
            "--canary-percent" => {
                args.canary_percent = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&p: &u32| p <= 100)
                    .ok_or("--canary-percent needs a number in 0..=100")?;
                i += 1;
            }
            "--full" => args.scale = ModelScale::FULL,
            "--trace-out" => {
                args.trace_out = Some(
                    argv.get(i + 1)
                        .ok_or("--trace-out needs a path")?
                        .to_string(),
                );
                i += 1;
            }
            "--metrics-out" => {
                args.metrics_out = Some(
                    argv.get(i + 1)
                        .ok_or("--metrics-out needs a path")?
                        .to_string(),
                );
                i += 1;
            }
            "--windows" => {
                args.windows = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&w: &usize| w > 0)
                    .ok_or("--windows needs a number > 0")?;
                i += 1;
            }
            "--window-ms" => {
                args.window_ms = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&ms: &u64| ms > 0)
                    .ok_or("--window-ms needs a number > 0")?;
                i += 1;
            }
            "--addr" => {
                args.addr = argv.get(i + 1).ok_or("--addr needs host:port")?.to_string();
                i += 1;
            }
            "--connections" => {
                args.connections = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&c: &usize| c > 0)
                    .ok_or("--connections needs a number > 0")?;
                i += 1;
            }
            "--chaos" => args.chaos = true,
            "--supervise" => args.supervise = true,
            "--postmortem-out" => {
                args.postmortem_out = Some(
                    argv.get(i + 1)
                        .ok_or("--postmortem-out needs a path")?
                        .to_string(),
                );
                i += 1;
            }
            "--id" => {
                args.id = Some(
                    argv.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--id needs a number")?,
                );
                i += 1;
            }
            other if !other.starts_with("--") && args.input.is_none() => {
                args.input = Some(other.to_string());
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn engine_for(args: &Args) -> Engine {
    let defaults = EngineConfig::for_model(args.model);
    Engine::new(EngineConfig {
        model: args.model,
        scale: args.scale,
        samples: args.samples,
        deadline_ms: args.deadline_ms.or(defaults.deadline_ms),
        retry_max: args.retry_max.unwrap_or(defaults.retry_max),
        breaker_threshold: args.breaker_threshold.unwrap_or(defaults.breaker_threshold),
        ..defaults
    })
}

fn cmd_demo(args: &Args) {
    let engine = engine_for(args);
    let input = synth_input(engine.network().input_shape(), 7);
    let exact = engine.predict_exact(&input);
    let (fast, stats) = engine.predict_fast(&input);
    print!("{}", engine.network().summary());
    println!(
        "{} | T = {} | {} parameters",
        args.model.bayesian_name(),
        args.samples,
        engine.network().total_params()
    );
    println!(
        "exact:    class {} entropy {:.3}",
        exact.class, exact.predictive_entropy
    );
    println!(
        "skipping: class {} entropy {:.3} | skipped {} of neuron work",
        fast.class,
        fast.predictive_entropy,
        pct(stats.skip_rate())
    );
}

fn cmd_simulate(args: &Args) {
    let engine = engine_for(args);
    let input = synth_input(engine.network().input_shape(), 7);
    let w = engine.workload(&input);
    let base = BaselineSim::new(HwConfig::baseline()).run(&w);
    let mut rows = Vec::new();
    let mut push = |r: &fast_bcnn::RunReport| {
        rows.push(vec![
            r.name.clone(),
            r.total_cycles.to_string(),
            speedup(r.speedup_over(&base)),
            pct(r.energy_reduction_vs(&base)),
        ]);
    };
    push(&base);
    push(&CnvlutinSim::new().run(&w));
    for tm in [8, 16, 32, 64] {
        push(&FastBcnnSim::new(HwConfig::fast_bcnn(tm), SkipMode::Both).run(&w));
    }
    push(&IdealSim::new(HwConfig::fast_bcnn(64)).run(&w));
    println!(
        "{} | T = {} | skip rate {}",
        args.model.bayesian_name(),
        w.t(),
        pct(w.total_skip_stats().skip_rate())
    );
    println!(
        "{}",
        format_table(&["design", "cycles", "speedup", "energy red."], &rows)
    );
}

fn cmd_characterize(args: &Args) {
    let cfg = fast_bcnn::experiments::ExpConfig {
        t: args.samples,
        scale: args.scale,
        ..Default::default()
    };
    let c = fast_bcnn::experiments::characterization::characterize_model(args.model, &cfg);
    let rows: Vec<Vec<String>> = c
        .layers
        .iter()
        .map(|l| {
            vec![
                l.layer.clone(),
                pct(l.zero_ratio),
                pct(l.unaffected_ratio),
                pct(l.unaffected_share_of_zeros),
            ]
        })
        .collect();
    println!("{} characterization (T = {}):", c.model, args.samples);
    println!(
        "{}",
        format_table(&["layer", "zero", "unaffected", "unaffected/zero"], &rows)
    );
}

fn cmd_train(args: &Args) {
    let cfg = fast_bcnn::experiments::accuracy::TrainedAccuracyConfig {
        train_size: args.train_size,
        epochs: args.epochs,
        samples: args.samples.min(24),
        ..Default::default()
    };
    let results = fast_bcnn::experiments::accuracy::run(&[0.68], &cfg);
    let r = &results[0];
    println!(
        "trained LeNet-5 on SynthDigits ({} images, {} epochs):",
        args.train_size, args.epochs
    );
    println!(
        "  deterministic accuracy: {}",
        pct(r.deterministic_accuracy)
    );
    println!("  exact BCNN accuracy:    {}", pct(r.exact_bcnn_accuracy));
    println!(
        "  skipping BCNN accuracy: {}",
        pct(r.skipping_bcnn_accuracy)
    );
    println!("  accuracy loss:          {}", pct(r.accuracy_loss));
}

/// Records one fast and one robust inference into a private registry and
/// prints the per-layer skip table plus the fallback summary — the
/// source of the EXPERIMENTS.md Fig. 5-style skip-rate table.
fn cmd_observe(args: &Args) {
    let registry = std::sync::Arc::new(fast_bcnn::telemetry::Registry::new());
    let guard = fast_bcnn::telemetry::install(registry.clone());
    let engine = engine_for(args);
    let input = synth_input(engine.network().input_shape(), 7);
    let (fast, stats) = engine.predict_fast(&input);
    let robust = engine.predict_robust(&input);
    drop(guard);

    println!(
        "{} | T = {} | skip rate {}",
        args.model.bayesian_name(),
        args.samples,
        pct(stats.skip_rate())
    );
    println!(
        "fast: class {} entropy {:.3}",
        fast.class, fast.predictive_entropy
    );
    match robust {
        Ok((pred, report)) => println!(
            "robust: class {} mode {} ({}/{} samples used)",
            pred.class,
            report.mode.name(),
            report.used_samples,
            report.requested_samples
        ),
        Err(e) => println!("robust: failed — {e}"),
    }
    println!();
    print!(
        "{}",
        fast_bcnn::TelemetryReport::from_registry(&registry).render()
    );

    if let Some(path) = &args.trace_out {
        match registry.write_jsonl(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics_out {
        match registry.write_prometheus(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Serves a synthetic request queue through the resilient serving layer
/// ([`ResilientBatchEngine`] over a [`BatchEngine`]) and checks it
/// against sequential `predict_robust_seeded` calls — a smoke-testable
/// demonstration of the serving path's bit-identity contract. Requests
/// whose `--deadline-ms` budget expired return flagged partial-T means
/// and are excluded from the comparison (a partial mean cannot equal a
/// full-T one).
fn cmd_serve_batch(args: &Args) {
    let registry = std::sync::Arc::new(fast_bcnn::telemetry::Registry::new());
    let guard = fast_bcnn::telemetry::install(registry.clone());
    let engine = engine_for(args);
    // Cycle a few distinct inputs so repeated ones exercise the
    // pre-inference cache, as a real serving queue would.
    let distinct = args.requests.clamp(1, 4);
    let requests: Vec<BatchRequest> = (0..args.requests)
        .map(|i| {
            BatchRequest::new(
                i as u64,
                synth_input(engine.network().input_shape(), 7 + (i % distinct) as u64),
            )
        })
        .collect();

    let sequential_start = std::time::Instant::now();
    let sequential: Vec<_> = requests
        .iter()
        .map(|r| engine.predict_robust_seeded(&r.input, r.resolved_seed(engine.config().seed)))
        .collect();
    let sequential_ns = sequential_start.elapsed().as_nanos() as u64;

    let rcfg = ResilienceConfig::from_engine_config(engine.config());
    let batch = BatchEngine::new(
        engine,
        BatchConfig {
            threads: args.threads,
            ..BatchConfig::default()
        },
    );
    let resilient = ResilientBatchEngine::new(batch, rcfg);
    let report = resilient.run_batch(&requests);
    drop(guard);

    let mut matched = 0usize;
    let mut compared = 0usize;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    for (r, s) in report.outcomes.iter().zip(&sequential) {
        if r.outcome.cache_hit {
            cache_hits += 1;
        } else {
            cache_misses += 1;
        }
        if r.expired {
            continue;
        }
        compared += 1;
        match (&r.outcome.result, s) {
            (Ok(a), Ok(b)) if a == b => matched += 1,
            (Err(_), Err(_)) => matched += 1,
            _ => {}
        }
    }
    let t = &report.totals;
    println!(
        "{} | T = {} | {} requests | {} threads",
        args.model.bayesian_name(),
        args.samples,
        args.requests,
        args.threads
    );
    println!(
        "sequential: {:.1} ms | batch: {:.1} ms ({:.1} req/s)",
        sequential_ns as f64 / 1e6,
        report.elapsed_ns as f64 / 1e6,
        if report.elapsed_ns == 0 {
            0.0
        } else {
            report.outcomes.len() as f64 / (report.elapsed_ns as f64 / 1e9)
        }
    );
    println!(
        "bit-identical to sequential: {matched}/{compared}{} | cache hits {cache_hits} / \
         misses {cache_misses}",
        if compared < report.outcomes.len() {
            format!(" ({} expired, excluded)", report.outcomes.len() - compared)
        } else {
            String::new()
        }
    );
    println!(
        "resilience: retries {} (healed {}, exhausted {}) | deadline expiries {} | \
         breaker {}",
        t.retries,
        t.retry_successes,
        t.retry_exhausted,
        t.expired,
        report.breaker_state.name()
    );
    for r in &report.outcomes {
        if let Err(e) = &r.outcome.result {
            println!("request {} failed: {e}", r.outcome.id);
        }
    }
    println!();
    print!(
        "{}",
        fast_bcnn::TelemetryReport::from_registry(&registry).render()
    );

    if let Some(path) = &args.trace_out {
        match registry.write_jsonl(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics_out {
        match registry.write_prometheus(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if matched != compared {
        eprintln!("error: batch results diverged from sequential");
        std::process::exit(1);
    }
}

/// Label for a freshly exported artifact when `--label` was not given.
fn default_label(args: &Args) -> String {
    args.label
        .clone()
        .unwrap_or_else(|| format!("{:?}-T{}", args.model, args.samples))
}

/// The serving model: the `--artifact` file when given (any load or
/// validation failure is a typed [`fast_bcnn::ArtifactError`], printed
/// and fatal), otherwise a fresh export of the `--model` engine.
fn base_artifact(args: &Args) -> ModelArtifact {
    match &args.artifact {
        Some(path) => match ModelArtifact::load(path) {
            Ok(artifact) => artifact,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            ModelArtifact::from_engine(&engine_for(args), args.model_version, default_label(args))
        }
    }
}

/// Registry configuration from the CLI flags and the artifact's own
/// engine configuration (deadline/retry/breaker travel with the model).
fn registry_cfg(args: &Args, engine_cfg: &EngineConfig) -> RegistryConfig {
    RegistryConfig {
        shards: args.shards,
        canary_percent: args.canary_percent,
        batch: BatchConfig {
            threads: args.threads,
            ..BatchConfig::default()
        },
        resilience: ResilienceConfig::from_engine_config(engine_cfg),
        supervise: args.supervise.then(fast_bcnn::SuperviseConfig::default),
        ..RegistryConfig::default()
    }
}

/// Per-shard supervision standing: health, ledger and healing counters
/// (only meaningful when the registry was built with `--supervise`).
fn print_shard_health_table(registry: &ModelRegistry) {
    let Some(sup) = registry.supervisor() else {
        return;
    };
    let snap = sup.snapshot();
    let rows: Vec<Vec<String>> = snap
        .shards
        .iter()
        .enumerate()
        .map(|(shard, l)| {
            vec![
                shard.to_string(),
                snap.health
                    .get(shard)
                    .map_or_else(|| "?".to_string(), |h| h.name().to_string()),
                l.served.to_string(),
                l.ok.to_string(),
                l.failed.to_string(),
                l.abandoned.to_string(),
                l.failovers_out.to_string(),
                l.failovers_in.to_string(),
                l.quarantines.to_string(),
                l.rebuilds.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "shard",
                "health",
                "served",
                "ok",
                "failed",
                "abandoned",
                "fo-out",
                "fo-in",
                "quar",
                "rebuilds"
            ],
            &rows
        )
    );
    if !snap.transitions.is_empty() {
        let walk: Vec<String> = snap
            .transitions
            .iter()
            .map(|t| format!("{}:{}→{}", t.shard, t.from.name(), t.to.name()))
            .collect();
        println!("  transitions: {}", walk.join(" "));
    }
}

fn print_version_table(registry: &ModelRegistry) {
    let rows: Vec<Vec<String>> = registry
        .version_counters()
        .iter()
        .map(|(v, c)| {
            vec![
                format!("v{v}"),
                c.requests.to_string(),
                c.ok.to_string(),
                c.failed.to_string(),
                c.canary.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["version", "requests", "ok", "failed", "canary"], &rows)
    );
}

/// Exports the configured engine as a versioned model artifact and
/// immediately proves the round trip by reloading and validating it.
fn cmd_export_model(args: &Args) {
    let Some(out) = &args.out else {
        eprintln!("error: export-model needs --out <path>");
        std::process::exit(2);
    };
    let engine = engine_for(args);
    let artifact = ModelArtifact::from_engine(&engine, args.model_version, default_label(args));
    let digest = artifact.digest;
    if let Err(e) = artifact.save(out) {
        eprintln!("error: {out}: {e}");
        std::process::exit(1);
    }
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "exported {} v{} (label `{}`) to {out}: {bytes} bytes, digest {digest:016x}",
        args.model.bayesian_name(),
        args.model_version,
        default_label(args),
    );
    match ModelArtifact::load(out) {
        Ok(back) if back.digest == digest => println!("verified: artifact reloads and validates"),
        Ok(back) => {
            eprintln!(
                "error: reloaded digest {:016x} != exported {digest:016x}",
                back.digest
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: exported artifact does not reload: {e}");
            std::process::exit(1);
        }
    }
}

/// Serves a synthetic request queue through a [`ModelRegistry`] booted
/// from an artifact (`--artifact`, or a fresh in-memory export) and
/// prints the per-version request accounting.
fn cmd_serve(args: &Args) {
    let registry_telemetry = std::sync::Arc::new(fast_bcnn::telemetry::Registry::new());
    let guard = fast_bcnn::telemetry::install(registry_telemetry.clone());
    let artifact = base_artifact(args);
    let shape = artifact.network.input_shape();
    let seed = artifact.config.seed;
    let version = artifact.model_version;
    let label = artifact.label.clone();
    let cfg = registry_cfg(args, &artifact.config);
    let registry = match ModelRegistry::new(artifact, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: refusing to serve: {e}");
            std::process::exit(1);
        }
    };
    let requests: Vec<BatchRequest> = (0..args.requests)
        .map(|i| {
            BatchRequest::new(
                i as u64,
                synth_input(shape, seed ^ (i as u64).wrapping_mul(41)),
            )
        })
        .collect();
    let report = registry.run_batch(&requests);
    drop(guard);

    println!(
        "serving v{version} (label `{label}`) over {} shards, {}% canary fraction",
        args.shards, args.canary_percent
    );
    let ok = report
        .outcomes
        .iter()
        .filter(|o| o.outcome.outcome.result.is_ok())
        .count();
    println!(
        "{} requests: {ok} ok / {} failed in {:.1} ms",
        report.outcomes.len(),
        report.outcomes.len() - ok,
        report.elapsed_ns as f64 / 1e6
    );
    print_version_table(&registry);
    match report.reconcile() {
        Ok(()) => println!("accounting reconciled exactly"),
        Err(e) => {
            eprintln!("error: accounting did not reconcile: {e}");
            std::process::exit(1);
        }
    }
    println!();
    print!(
        "{}",
        fast_bcnn::TelemetryReport::from_registry(&registry_telemetry).render()
    );
    if let Some(path) = &args.trace_out {
        match registry_telemetry.write_jsonl(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics_out {
        match registry_telemetry.write_prometheus(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Boots a [`ModelRegistry`] from an artifact, serves it over TCP
/// (length-prefixed JSON frames, see `docs/SERVING.md`), self-drives it
/// with the seeded closed-loop load generator — including deliberate
/// sheds, expiring deadlines and malformed frames — then reconciles the
/// load-generator, server and registry ledgers exactly.
fn cmd_serve_net(args: &Args) {
    use fast_bcnn::serve as net;
    let registry_telemetry = std::sync::Arc::new(fast_bcnn::telemetry::Registry::new());
    let guard = fast_bcnn::telemetry::install(registry_telemetry.clone());
    let started = std::time::Instant::now();
    let artifact = base_artifact(args);
    let version = artifact.model_version;
    let label = artifact.label.clone();
    let samples = artifact.config.samples.max(2);
    let seed = artifact.config.seed;
    let reference = match artifact.clone().into_engine() {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("error: artifact does not boot: {e}");
            std::process::exit(1);
        }
    };
    let cfg = registry_cfg(args, &artifact.config);
    let registry = match ModelRegistry::new(artifact, cfg) {
        Ok(r) => std::sync::Arc::new(r),
        Err(e) => {
            eprintln!("error: refusing to serve: {e}");
            std::process::exit(1);
        }
    };
    let before = registry.version_counters();
    let classes = net::soak_classes(samples);
    let class_names: Vec<String> = classes.iter().map(|c| c.name.clone()).collect();
    let server = match net::serve(
        std::sync::Arc::clone(&registry),
        net::ServeConfig {
            addr: args.addr.clone(),
            classes,
            ..net::ServeConfig::default()
        },
    ) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: cannot serve on {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "serving v{version} (label `{label}`) on {} over {} shards, classes [{}]{}",
        server.addr(),
        args.shards,
        class_names.join(", "),
        if args.supervise { " [supervised]" } else { "" },
    );
    // With --supervise, a background poller folds breaker state into the
    // shard health machine and rebuilds whatever it quarantines.
    let supervisor_thread = args
        .supervise
        .then(|| registry.spawn_supervisor(std::time::Duration::from_millis(5)))
        .flatten();
    let lg_cfg = net::LoadgenConfig {
        seed,
        connections: args.connections,
        requests_per_connection: args.requests,
        classes: vec![
            "interactive".to_string(),
            "batch".to_string(),
            "degraded".to_string(),
        ],
        shed_class: Some("reject".to_string()),
        shed_every: 7,
        expiring_every: 11,
        malformed_every: 13,
        bit_check_every: 5,
        time_limit: Some(std::time::Duration::from_secs(60)),
        ..net::LoadgenConfig::default()
    };
    let loadgen = net::run_loadgen(server.addr(), &reference, &lg_cfg);
    drop(supervisor_thread);
    let totals = server.shutdown();
    let after = registry.version_counters();
    let mut registry_requests = 0;
    let mut registry_ok = 0;
    let mut registry_failed = 0;
    for (v, counters) in &after {
        let base = before.get(v).copied().unwrap_or_default();
        registry_requests += counters.requests - base.requests;
        registry_ok += counters.ok - base.ok;
        registry_failed += counters.failed - base.failed;
    }
    drop(guard);

    let report = net::ServeSoakReport {
        seed,
        mode: lg_cfg.mode.name().to_string(),
        connections: args.connections,
        requests_per_connection: args.requests,
        samples,
        shards: args.shards,
        loadgen,
        server: totals,
        registry_requests,
        registry_ok,
        registry_failed,
        elapsed_ns: started.elapsed().as_nanos() as u64,
    };
    let lg = &report.loadgen.totals;
    println!(
        "{} frames over {} connections in {:.1} ms: {} ok / {} failed / {} shed / \
         {} wire errors / {} unknown class ({} expired, {} bit-checked)",
        lg.offered,
        args.connections,
        report.elapsed_ns as f64 / 1e6,
        lg.ok,
        lg.failed,
        lg.shed,
        lg.wire_error_responses,
        lg.unknown_class,
        lg.expired,
        lg.bit_checked,
    );
    print_version_table(&registry);
    print_shard_health_table(&registry);
    match report.reconcile() {
        Ok(()) => println!("loadgen/server/registry ledgers reconciled exactly"),
        Err(e) => {
            eprintln!("error: ledgers did not reconcile: {e}");
            std::process::exit(1);
        }
    }
    println!();
    print!(
        "{}",
        fast_bcnn::TelemetryReport::from_registry(&registry_telemetry).render()
    );
    if let Some(path) = &args.trace_out {
        match registry_telemetry.write_jsonl(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics_out {
        match registry_telemetry.write_prometheus(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Demonstrates a drain-free hot swap: serves traffic on the base
/// artifact, deploys the `--next` artifact mid-stream (or a version bump
/// of the base when `--next` is omitted), keeps serving while the canary
/// fraction exercises the candidate, then promotes it on every shard.
fn cmd_swap(args: &Args) {
    let registry_telemetry = std::sync::Arc::new(fast_bcnn::telemetry::Registry::new());
    let guard = fast_bcnn::telemetry::install(registry_telemetry.clone());
    let base = base_artifact(args);
    let shape = base.network.input_shape();
    let seed = base.config.seed;
    let base_version = base.model_version;
    let next = match &args.next {
        Some(path) => match ModelArtifact::load(path) {
            Ok(artifact) => artifact,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            // The digest covers weights/thresholds/indicators but not the
            // version or label, so a relabeled version bump stays valid.
            let mut bump = base.clone();
            bump.model_version = base_version + 1;
            bump.label = format!("{}-next", bump.label);
            bump
        }
    };
    let next_version = next.model_version;
    let cfg = registry_cfg(args, &base.config);
    let registry = match ModelRegistry::new(base, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: refusing to serve: {e}");
            std::process::exit(1);
        }
    };

    let per_phase = (args.requests / 3).max(1);
    let serve = |phase: u64, n: usize| -> fast_bcnn::RegistryReport {
        let requests: Vec<BatchRequest> = (0..n)
            .map(|i| {
                let id = phase * 10_000 + i as u64;
                BatchRequest::new(id, synth_input(shape, seed ^ id.wrapping_mul(41)))
            })
            .collect();
        registry.run_batch(&requests)
    };

    println!("phase 1: {per_phase} requests on v{base_version}");
    let mut reports = vec![serve(0, per_phase)];
    if let Err(e) = registry.deploy(next) {
        eprintln!("error: deploy refused: {e}");
        std::process::exit(1);
    }
    println!("deployed v{next_version} as rollout candidate (canary fraction serving)");
    println!("phase 2: {per_phase} requests with the rollout in flight");
    reports.push(serve(1, per_phase));
    if let Some(status) = registry.rollout_status() {
        println!(
            "canary: {} observed, {} failures, {} trips",
            status.observed, status.failures, status.canary_trips
        );
    }
    match registry.promote() {
        Some(v) => println!("promoted v{v} on all {} shards", args.shards),
        None => println!(
            "rollout was already resolved (rolled back automatically); still on v{}",
            registry.active_version()
        ),
    }
    println!(
        "phase 3: {per_phase} requests on v{}",
        registry.active_version()
    );
    reports.push(serve(2, per_phase));
    drop(guard);

    println!();
    print_version_table(&registry);
    println!(
        "deploys {} | promotions {} | rollbacks {} | active v{}",
        registry.deploys(),
        registry.promotions(),
        registry.rollbacks(),
        registry.active_version()
    );
    for (i, report) in reports.iter().enumerate() {
        if let Err(e) = report.reconcile() {
            eprintln!("error: phase {} accounting did not reconcile: {e}", i + 1);
            std::process::exit(1);
        }
    }
    println!("accounting reconciled exactly across all phases");
    println!();
    print!(
        "{}",
        fast_bcnn::TelemetryReport::from_registry(&registry_telemetry).render()
    );
    if let Some(path) = &args.trace_out {
        match registry_telemetry.write_jsonl(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics_out {
        match registry_telemetry.write_prometheus(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Serves traffic window by window under a [`WindowedRegistry`] and an
/// SLO policy, rendering the operator view after every window: latency
/// quantiles, error-budget burn, and breaker/shed/swap activity. A
/// healthy version bump is swapped in mid-watch, and `--chaos` runs a
/// quick fault campaign (deadline class `default`) through the same
/// windowed recorder. `--postmortem-out` arms the flight recorder: the
/// first `Critical` window freezes the flight log to that path.
///
/// [`WindowedRegistry`]: fast_bcnn::telemetry::WindowedRegistry
fn cmd_watch(args: &Args) {
    use fast_bcnn::telemetry::{
        HealthStatus, LatencyObjective, ManualClock, SloPolicy, WindowedRegistry,
        REQUEST_LATENCY_METRIC, STANDARD_QUANTILES,
    };
    use std::sync::Arc;

    let clock = Arc::new(ManualClock::new());
    let width_ns = args.window_ms.saturating_mul(1_000_000).max(1);
    let windowed = Arc::new(WindowedRegistry::new(
        width_ns,
        args.windows + 8,
        Arc::clone(&clock) as Arc<dyn fast_bcnn::telemetry::Clock>,
    ));
    let guard = fast_bcnn::telemetry::install(
        Arc::clone(&windowed) as Arc<dyn fast_bcnn::telemetry::Recorder>
    );

    let base = base_artifact(args);
    let shape = base.network.input_shape();
    let seed = base.config.seed;
    let base_version = base.model_version;
    let flight = Arc::new(fast_bcnn::FlightRecorder::default());
    if let Some(path) = &args.postmortem_out {
        flight.arm_postmortem(path);
    }
    let mut cfg = registry_cfg(args, &base.config);
    cfg.resilience.deadline_class = "serve".to_string();
    cfg.flight = Some(Arc::clone(&flight));
    let bump = {
        let mut bump = base.clone();
        bump.model_version = base_version + 1;
        bump.label = format!("{}-next", bump.label);
        bump
    };
    let registry = match ModelRegistry::new(base, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: refusing to serve: {e}");
            std::process::exit(1);
        }
    };
    let policy = SloPolicy {
        objectives: vec![LatencyObjective {
            class: "serve".to_string(),
            quantile: 0.99,
            // Tie the objective to the serving deadline when one is
            // set; otherwise keep it above the histogram's top bucket.
            threshold_ns: args.deadline_ms.map(|ms| ms as f64 * 1e6).unwrap_or(4e9),
        }],
        classes: Some(vec!["serve".to_string(), "default".to_string()]),
        ..SloPolicy::default()
    };

    println!(
        "watching {} windows of {} requests ({} ms windows, fast span {}, slow span {})",
        args.windows, args.requests, args.window_ms, policy.fast_windows, policy.slow_windows
    );
    for w in 0..args.windows as u64 {
        clock.set(w * width_ns);
        if w == 1 && args.windows >= 3 {
            match registry.deploy(bump.clone()) {
                Ok(()) => println!("-- deployed v{} as rollout candidate", base_version + 1),
                Err(e) => println!("-- deploy refused: {e}"),
            }
        }
        if w == 2 && args.windows >= 3 {
            if let Some(v) = registry.promote() {
                println!("-- promoted v{v}");
            }
        }
        if args.chaos && w == args.windows as u64 / 2 {
            println!("-- chaos campaign running in this window (class `default`)");
            let report = fast_bcnn::chaos::run_chaos_into(
                &fast_bcnn::chaos::ChaosConfig::quick(seed),
                windowed.total(),
            );
            println!(
                "-- chaos: {} requests, {} ok / {} failed",
                report.requests_total, report.ok_total, report.failed_total
            );
        }
        for i in 0..args.requests {
            let id = w * 10_000 + i as u64;
            registry.handle(&BatchRequest::new(
                id,
                synth_input(shape, seed ^ id.wrapping_mul(41)),
            ));
        }

        if args.supervise {
            // Fold breaker state into the shard health machine and
            // rebuild whatever this window's traffic got quarantined.
            registry.supervise_tick();
        }

        let health = policy.evaluate(&windowed);
        println!("window {w}: health {}", health.status.name().to_uppercase());
        print_shard_health_table(&registry);
        let mut rows = Vec::new();
        for class in ["serve", "default"] {
            let qs: Vec<f64> = STANDARD_QUANTILES.iter().map(|&(_, q)| q).collect();
            if let Some(est) = windowed.windowed_quantiles(
                policy.fast_windows,
                REQUEST_LATENCY_METRIC,
                &[("class", class)],
                &qs,
            ) {
                let mut row = vec![class.to_string()];
                row.extend(est.iter().map(|ns| format!("{:.2}", ns / 1e6)));
                rows.push(row);
            }
        }
        if !rows.is_empty() {
            let mut headers = vec!["class"];
            headers.extend(STANDARD_QUANTILES.iter().map(|&(name, _)| name));
            print!("{}", format_table(&headers, &rows));
            println!("  (bucket-edge estimates over the fast span, ms)");
        }
        for b in &health.burns {
            println!(
                "  burn {}: fast {:.2}x ({}/{} failed) | slow {:.2}x ({}/{} failed)",
                b.class,
                b.fast_burn,
                b.failed_fast,
                b.total_fast,
                b.slow_burn,
                b.failed_slow,
                b.total_slow
            );
        }
        let activity: Vec<String> = [
            (
                "forced exact",
                windowed.windowed_counter_total(1, "breaker_forced_exact"),
            ),
            (
                "breaker moves",
                windowed.windowed_counter_total(1, "breaker_transitions"),
            ),
            ("shed", windowed.windowed_counter_total(1, "shed_requests")),
            (
                "retries",
                windowed.windowed_counter_total(1, "retry_attempts"),
            ),
            (
                "deploys",
                windowed.windowed_counter_total(1, "swap_deploys"),
            ),
            (
                "promotions",
                windowed.windowed_counter_total(1, "swap_promotions"),
            ),
            (
                "rollbacks",
                windowed.windowed_counter_total(1, "rollback_total"),
            ),
        ]
        .iter()
        .filter(|(_, n)| *n > 0)
        .map(|(name, n)| format!("{name} {n}"))
        .collect();
        if !activity.is_empty() {
            println!("  activity: {}", activity.join(" | "));
        }
        for v in &health.violations {
            println!("  !! {}", v.render());
        }
        if health.status == HealthStatus::Critical {
            if let Some(result) = flight.trigger_postmortem("slo_critical") {
                match result {
                    Ok(path) => println!("  postmortem dump written to {}", path.display()),
                    Err(e) => println!("  postmortem dump failed: {e}"),
                }
            }
        }
    }
    drop(guard);
    println!();
    print!(
        "{}",
        fast_bcnn::TelemetryReport::from_registry(windowed.total()).render()
    );
    if let Some(path) = &args.trace_out {
        match windowed.total().write_jsonl(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics_out {
        match windowed.total().write_prometheus(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// One record's flag summary for the postmortem table.
fn record_flags(r: &fast_bcnn::FlightRecord) -> String {
    let mut flags = Vec::new();
    if r.canary {
        flags.push("canary");
    }
    if r.rolled_back {
        flags.push("rolled-back");
    }
    if r.shed {
        flags.push("shed");
    }
    if r.expired {
        flags.push("expired");
    }
    if r.forced_exact {
        flags.push("forced-exact");
    }
    if r.probe {
        flags.push("probe");
    }
    if r.retry_exhausted {
        flags.push("retry-exhausted");
    }
    if r.cache_hit {
        flags.push("cache-hit");
    }
    if flags.is_empty() {
        "-".to_string()
    } else {
        flags.join(",")
    }
}

/// Prints one request's decision timeline: every choice the serving
/// stack made, in the order it made them.
fn print_timeline(r: &fast_bcnn::FlightRecord) {
    println!(
        "request {} (seed {}, class `{}`, v{} shard {}{}):",
        r.id,
        r.seed,
        r.class,
        r.version,
        r.shard,
        if r.canary { ", canary traffic" } else { "" }
    );
    if r.shed {
        println!("  1. admission: SHED — the queue was full; the request never executed");
        return;
    }
    match r.degraded_to {
        Some(n) => println!("  1. admission: admitted with a degraded sample cap of {n}"),
        None => println!("  1. admission: admitted"),
    }
    println!(
        "  2. queued {:.3} ms before execution",
        r.queue_wait_ns as f64 / 1e6
    );
    let mut attempt_notes = Vec::new();
    if r.attempts > 1 {
        attempt_notes.push(format!(
            "{} retries, {:.3} ms deterministic backoff",
            r.attempts - 1,
            r.backoff_ns as f64 / 1e6
        ));
    }
    if r.requeues > 0 {
        attempt_notes.push(format!("{} watchdog requeues", r.requeues));
    }
    if r.forced_exact {
        attempt_notes.push("breaker forced the exact path".to_string());
    }
    if r.probe {
        attempt_notes.push("served as a half-open probe".to_string());
    }
    println!(
        "  3. executed {} attempt(s){}{}",
        r.attempts,
        if attempt_notes.is_empty() {
            ""
        } else {
            " — "
        },
        attempt_notes.join(", ")
    );
    if r.cache_hit {
        println!("  4. pre-inference served from cache");
    }
    if r.ok {
        let skip = if r.skip_total == 0 {
            0.0
        } else {
            r.skip_skipped as f64 * 100.0 / r.skip_total as f64
        };
        println!(
            "  5. outcome: OK in {:.3} ms — mode {}, {}/{} samples used ({} fallback, {} lost), {skip:.1}% neuron work skipped",
            r.latency_ns as f64 / 1e6,
            r.mode,
            r.used_samples,
            r.requested_samples,
            r.fallback_samples,
            r.lost_samples,
        );
    } else {
        println!(
            "  5. outcome: FAILED in {:.3} ms — typed reason `{}`{}",
            r.latency_ns as f64 / 1e6,
            r.reason,
            if r.expired { " (deadline expired)" } else { "" }
        );
    }
    if r.rolled_back {
        println!("  6. canary verdict: tripped the version breaker — rollout rolled back");
    }
}

/// Reconstructs a postmortem dump: the summary, the degraded-request
/// table, and (with `--id`) one request's full decision timeline.
fn cmd_postmortem(args: &Args) {
    let Some(path) = &args.input else {
        eprintln!("error: postmortem needs a flight-log file: fastbcnn postmortem <file> [--id N]");
        std::process::exit(2);
    };
    let log = match fast_bcnn::io::read_flight_log(path) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "flight log {path}: trigger `{}` | {} recorded | ring {}/{} | {} pinned failures ({} dropped) | {} ok evicted",
        log.trigger,
        log.recorded,
        log.records.len(),
        log.capacity,
        log.failed_exemplars.len(),
        log.dropped_failed,
        log.evicted_ok,
    );
    if let Some(worst) = &log.worst_latency {
        println!(
            "worst latency: request {} at {:.3} ms ({})",
            worst.id,
            worst.latency_ns as f64 / 1e6,
            if worst.ok {
                "ok"
            } else {
                worst.reason.as_str()
            }
        );
    }
    println!();

    if let Some(id) = args.id {
        let found = log
            .failed_exemplars
            .iter()
            .chain(log.records.iter())
            .find(|r| r.id == id)
            .or(log.worst_latency.as_ref().filter(|r| r.id == id));
        match found {
            Some(r) => print_timeline(r),
            None => {
                eprintln!("error: request {id} is not in this flight log");
                std::process::exit(1);
            }
        }
        return;
    }

    let degraded = log.degraded();
    let rows: Vec<Vec<String>> = degraded
        .iter()
        .map(|r| {
            vec![
                r.id.to_string(),
                r.class.clone(),
                format!("v{}", r.version),
                r.shard.to_string(),
                format!("{:.2}", r.latency_ns as f64 / 1e6),
                r.attempts.to_string(),
                if r.ok { "ok".into() } else { r.reason.clone() },
                r.mode.clone(),
                record_flags(r),
            ]
        })
        .collect();
    if rows.is_empty() {
        println!("no degraded requests — every replayable request served cleanly");
    } else {
        print!(
            "{}",
            format_table(
                &["id", "class", "ver", "shard", "ms", "att", "outcome", "mode", "flags"],
                &rows
            )
        );
        println!(
            "{} degraded of {} replayable requests (use --id <n> for one request's timeline)",
            degraded.len(),
            log.records.len() + log.failed_exemplars.len(),
        );
    }
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // `observe`, `serve-batch`, `serve`, `swap` and `watch` manage
    // their own registry (they print the digest before the exporters
    // run); `postmortem` only reads a dump; every other command uses
    // the drop-to-export sink.
    let own_registry = matches!(
        args.command.as_str(),
        "observe" | "serve-batch" | "serve" | "serve-net" | "swap" | "watch" | "postmortem"
    );
    let _telemetry = if own_registry {
        None
    } else {
        fast_bcnn::telemetry::FileSink::new(args.trace_out.as_deref(), args.metrics_out.as_deref())
    };
    match args.command.as_str() {
        "demo" => cmd_demo(&args),
        "simulate" => cmd_simulate(&args),
        "characterize" => cmd_characterize(&args),
        "train" => cmd_train(&args),
        "observe" => cmd_observe(&args),
        "serve-batch" => cmd_serve_batch(&args),
        "export-model" => cmd_export_model(&args),
        "serve" => cmd_serve(&args),
        "serve-net" => cmd_serve_net(&args),
        "swap" => cmd_swap(&args),
        "watch" => cmd_watch(&args),
        "postmortem" => cmd_postmortem(&args),
        _ => {
            println!(
                "usage: fastbcnn <demo|simulate|characterize|train|observe|serve-batch\
                 |export-model|serve|serve-net|swap|watch|postmortem> \
                 [--model lenet|vgg|googlenet|alexnet] [--samples N] [--full] \
                 [--epochs N] [--train-size N] [--requests N] [--threads N] \
                 [--deadline-ms N] [--retry-max N] [--breaker-threshold X] \
                 [--trace-out <path>] [--metrics-out <path>]"
            );
            println!(
                "serve-batch resilience defaults: no deadline (--deadline-ms unset), \
                 --retry-max 2, --breaker-threshold 0.5"
            );
            println!(
                "artifact flags: export-model --out <path> [--model-version N] [--label S]; \
                 serve/swap [--artifact <path>] [--next <path>] [--shards N] \
                 [--canary-percent N] (no --artifact: a fresh in-memory export; \
                 no --next: a version bump of the base)"
            );
            println!(
                "observability: watch [--windows N] [--window-ms N] [--requests N] \
                 [--chaos] [--supervise] [--postmortem-out <path>]; \
                 postmortem <file> [--id N]"
            );
            println!(
                "network serving: serve-net [--artifact <path>] [--addr host:port] \
                 [--connections N] [--requests N] [--supervise] (self-drives a seeded \
                 loadgen mix against the TCP server and reconciles the ledgers; \
                 --supervise adds shard health supervision with quarantine, failover \
                 and rebuild; see docs/SERVING.md and docs/REGISTRY.md)"
            );
        }
    }
}
