//! `fastbcnn` — the workspace's command-line front end.
//!
//! ```text
//! fastbcnn demo         [--model lenet|vgg|googlenet|alexnet] [--samples N] [--full]
//! fastbcnn simulate     [--model ...] [--samples N] [--full]
//! fastbcnn characterize [--model ...] [--samples N] [--full]
//! fastbcnn train        [--epochs N] [--train-size N]
//! fastbcnn observe      [--model ...] [--samples N] [--full]
//! fastbcnn serve-batch  [--model ...] [--samples N] [--requests N] [--threads N] [--full]
//!                       [--deadline-ms N] [--retry-max N] [--breaker-threshold X]
//! fastbcnn export-model --out <path> [--model ...] [--samples N] [--model-version N] [--label S]
//! fastbcnn serve        [--artifact <path>] [--requests N] [--shards N] [--canary-percent N]
//! fastbcnn swap         [--artifact <path>] [--next <path>] [--requests N] [--shards N]
//!                       [--canary-percent N]
//! ```
//!
//! Every command additionally accepts `--trace-out <path>` and
//! `--metrics-out <path>` to export the run's telemetry as a JSONL trace
//! and a Prometheus-style text dump (see `docs/OBSERVABILITY.md`);
//! `observe` records a fast + robust inference and prints the per-layer
//! skip/fallback table. `serve-batch` serves through the resilient layer
//! (see `docs/RESILIENCE.md`): `--deadline-ms` bounds each request's
//! wall-clock (expired requests return flagged partial-T means and are
//! excluded from the bit-identity check), `--retry-max` caps retries of
//! transient failures and `--breaker-threshold` sets the circuit
//! breaker's error-rate trip point.

use fast_bcnn::report::{format_table, pct, speedup};
use fast_bcnn::{
    synth_input, BaselineSim, BatchConfig, BatchEngine, BatchRequest, CnvlutinSim, Engine,
    EngineConfig, FastBcnnSim, HwConfig, IdealSim, ModelArtifact, ModelRegistry, RegistryConfig,
    ResilienceConfig, ResilientBatchEngine, SkipMode,
};
use fbcnn_nn::models::{ModelKind, ModelScale};

struct Args {
    command: String,
    model: ModelKind,
    samples: usize,
    scale: ModelScale,
    epochs: usize,
    train_size: usize,
    requests: usize,
    threads: usize,
    deadline_ms: Option<u64>,
    retry_max: Option<u32>,
    breaker_threshold: Option<f64>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    artifact: Option<String>,
    next: Option<String>,
    out: Option<String>,
    model_version: u64,
    label: Option<String>,
    shards: usize,
    canary_percent: u32,
}

fn parse() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = argv.first().cloned().unwrap_or_else(|| "help".into());
    let mut args = Args {
        command,
        model: ModelKind::LeNet5,
        samples: 16,
        scale: ModelScale::BENCH,
        epochs: 6,
        train_size: 400,
        requests: 8,
        threads: 1,
        deadline_ms: None,
        retry_max: None,
        breaker_threshold: None,
        trace_out: None,
        metrics_out: None,
        artifact: None,
        next: None,
        out: None,
        model_version: 1,
        label: None,
        shards: 2,
        canary_percent: 20,
    };
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--model" => {
                let v = argv.get(i + 1).ok_or("--model needs a value")?;
                args.model = match v.as_str() {
                    "lenet" => ModelKind::LeNet5,
                    "vgg" => ModelKind::Vgg16,
                    "googlenet" => ModelKind::GoogLeNet,
                    "alexnet" => ModelKind::AlexNet,
                    other => return Err(format!("unknown model {other}")),
                };
                i += 1;
            }
            "--samples" => {
                args.samples = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--samples needs a number")?;
                i += 1;
            }
            "--epochs" => {
                args.epochs = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--epochs needs a number")?;
                i += 1;
            }
            "--train-size" => {
                args.train_size = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--train-size needs a number")?;
                i += 1;
            }
            "--requests" => {
                args.requests = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--requests needs a number")?;
                i += 1;
            }
            "--threads" => {
                args.threads = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&t: &usize| t > 0)
                    .ok_or("--threads needs a number > 0")?;
                i += 1;
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(
                    argv.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|&ms: &u64| ms > 0)
                        .ok_or("--deadline-ms needs a number > 0")?,
                );
                i += 1;
            }
            "--retry-max" => {
                args.retry_max = Some(
                    argv.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .ok_or("--retry-max needs a number")?,
                );
                i += 1;
            }
            "--breaker-threshold" => {
                args.breaker_threshold = Some(
                    argv.get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .filter(|&x: &f64| x > 0.0 && x <= 1.0)
                        .ok_or("--breaker-threshold needs a number in (0, 1]")?,
                );
                i += 1;
            }
            "--artifact" => {
                args.artifact = Some(
                    argv.get(i + 1)
                        .ok_or("--artifact needs a path")?
                        .to_string(),
                );
                i += 1;
            }
            "--next" => {
                args.next = Some(argv.get(i + 1).ok_or("--next needs a path")?.to_string());
                i += 1;
            }
            "--out" => {
                args.out = Some(argv.get(i + 1).ok_or("--out needs a path")?.to_string());
                i += 1;
            }
            "--model-version" => {
                args.model_version = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v: &u64| v > 0)
                    .ok_or("--model-version needs a number > 0")?;
                i += 1;
            }
            "--label" => {
                args.label = Some(argv.get(i + 1).ok_or("--label needs a value")?.to_string());
                i += 1;
            }
            "--shards" => {
                args.shards = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&s: &usize| s > 0)
                    .ok_or("--shards needs a number > 0")?;
                i += 1;
            }
            "--canary-percent" => {
                args.canary_percent = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&p: &u32| p <= 100)
                    .ok_or("--canary-percent needs a number in 0..=100")?;
                i += 1;
            }
            "--full" => args.scale = ModelScale::FULL,
            "--trace-out" => {
                args.trace_out = Some(
                    argv.get(i + 1)
                        .ok_or("--trace-out needs a path")?
                        .to_string(),
                );
                i += 1;
            }
            "--metrics-out" => {
                args.metrics_out = Some(
                    argv.get(i + 1)
                        .ok_or("--metrics-out needs a path")?
                        .to_string(),
                );
                i += 1;
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(args)
}

fn engine_for(args: &Args) -> Engine {
    let defaults = EngineConfig::for_model(args.model);
    Engine::new(EngineConfig {
        model: args.model,
        scale: args.scale,
        samples: args.samples,
        deadline_ms: args.deadline_ms.or(defaults.deadline_ms),
        retry_max: args.retry_max.unwrap_or(defaults.retry_max),
        breaker_threshold: args.breaker_threshold.unwrap_or(defaults.breaker_threshold),
        ..defaults
    })
}

fn cmd_demo(args: &Args) {
    let engine = engine_for(args);
    let input = synth_input(engine.network().input_shape(), 7);
    let exact = engine.predict_exact(&input);
    let (fast, stats) = engine.predict_fast(&input);
    print!("{}", engine.network().summary());
    println!(
        "{} | T = {} | {} parameters",
        args.model.bayesian_name(),
        args.samples,
        engine.network().total_params()
    );
    println!(
        "exact:    class {} entropy {:.3}",
        exact.class, exact.predictive_entropy
    );
    println!(
        "skipping: class {} entropy {:.3} | skipped {} of neuron work",
        fast.class,
        fast.predictive_entropy,
        pct(stats.skip_rate())
    );
}

fn cmd_simulate(args: &Args) {
    let engine = engine_for(args);
    let input = synth_input(engine.network().input_shape(), 7);
    let w = engine.workload(&input);
    let base = BaselineSim::new(HwConfig::baseline()).run(&w);
    let mut rows = Vec::new();
    let mut push = |r: &fast_bcnn::RunReport| {
        rows.push(vec![
            r.name.clone(),
            r.total_cycles.to_string(),
            speedup(r.speedup_over(&base)),
            pct(r.energy_reduction_vs(&base)),
        ]);
    };
    push(&base);
    push(&CnvlutinSim::new().run(&w));
    for tm in [8, 16, 32, 64] {
        push(&FastBcnnSim::new(HwConfig::fast_bcnn(tm), SkipMode::Both).run(&w));
    }
    push(&IdealSim::new(HwConfig::fast_bcnn(64)).run(&w));
    println!(
        "{} | T = {} | skip rate {}",
        args.model.bayesian_name(),
        w.t(),
        pct(w.total_skip_stats().skip_rate())
    );
    println!(
        "{}",
        format_table(&["design", "cycles", "speedup", "energy red."], &rows)
    );
}

fn cmd_characterize(args: &Args) {
    let cfg = fast_bcnn::experiments::ExpConfig {
        t: args.samples,
        scale: args.scale,
        ..Default::default()
    };
    let c = fast_bcnn::experiments::characterization::characterize_model(args.model, &cfg);
    let rows: Vec<Vec<String>> = c
        .layers
        .iter()
        .map(|l| {
            vec![
                l.layer.clone(),
                pct(l.zero_ratio),
                pct(l.unaffected_ratio),
                pct(l.unaffected_share_of_zeros),
            ]
        })
        .collect();
    println!("{} characterization (T = {}):", c.model, args.samples);
    println!(
        "{}",
        format_table(&["layer", "zero", "unaffected", "unaffected/zero"], &rows)
    );
}

fn cmd_train(args: &Args) {
    let cfg = fast_bcnn::experiments::accuracy::TrainedAccuracyConfig {
        train_size: args.train_size,
        epochs: args.epochs,
        samples: args.samples.min(24),
        ..Default::default()
    };
    let results = fast_bcnn::experiments::accuracy::run(&[0.68], &cfg);
    let r = &results[0];
    println!(
        "trained LeNet-5 on SynthDigits ({} images, {} epochs):",
        args.train_size, args.epochs
    );
    println!(
        "  deterministic accuracy: {}",
        pct(r.deterministic_accuracy)
    );
    println!("  exact BCNN accuracy:    {}", pct(r.exact_bcnn_accuracy));
    println!(
        "  skipping BCNN accuracy: {}",
        pct(r.skipping_bcnn_accuracy)
    );
    println!("  accuracy loss:          {}", pct(r.accuracy_loss));
}

/// Records one fast and one robust inference into a private registry and
/// prints the per-layer skip table plus the fallback summary — the
/// source of the EXPERIMENTS.md Fig. 5-style skip-rate table.
fn cmd_observe(args: &Args) {
    let registry = std::sync::Arc::new(fast_bcnn::telemetry::Registry::new());
    let guard = fast_bcnn::telemetry::install(registry.clone());
    let engine = engine_for(args);
    let input = synth_input(engine.network().input_shape(), 7);
    let (fast, stats) = engine.predict_fast(&input);
    let robust = engine.predict_robust(&input);
    drop(guard);

    println!(
        "{} | T = {} | skip rate {}",
        args.model.bayesian_name(),
        args.samples,
        pct(stats.skip_rate())
    );
    println!(
        "fast: class {} entropy {:.3}",
        fast.class, fast.predictive_entropy
    );
    match robust {
        Ok((pred, report)) => println!(
            "robust: class {} mode {} ({}/{} samples used)",
            pred.class,
            report.mode.name(),
            report.used_samples,
            report.requested_samples
        ),
        Err(e) => println!("robust: failed — {e}"),
    }
    println!();
    print!(
        "{}",
        fast_bcnn::TelemetryReport::from_registry(&registry).render()
    );

    if let Some(path) = &args.trace_out {
        match registry.write_jsonl(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics_out {
        match registry.write_prometheus(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Serves a synthetic request queue through the resilient serving layer
/// ([`ResilientBatchEngine`] over a [`BatchEngine`]) and checks it
/// against sequential `predict_robust_seeded` calls — a smoke-testable
/// demonstration of the serving path's bit-identity contract. Requests
/// whose `--deadline-ms` budget expired return flagged partial-T means
/// and are excluded from the comparison (a partial mean cannot equal a
/// full-T one).
fn cmd_serve_batch(args: &Args) {
    let registry = std::sync::Arc::new(fast_bcnn::telemetry::Registry::new());
    let guard = fast_bcnn::telemetry::install(registry.clone());
    let engine = engine_for(args);
    // Cycle a few distinct inputs so repeated ones exercise the
    // pre-inference cache, as a real serving queue would.
    let distinct = args.requests.clamp(1, 4);
    let requests: Vec<BatchRequest> = (0..args.requests)
        .map(|i| {
            BatchRequest::new(
                i as u64,
                synth_input(engine.network().input_shape(), 7 + (i % distinct) as u64),
            )
        })
        .collect();

    let sequential_start = std::time::Instant::now();
    let sequential: Vec<_> = requests
        .iter()
        .map(|r| engine.predict_robust_seeded(&r.input, r.resolved_seed(engine.config().seed)))
        .collect();
    let sequential_ns = sequential_start.elapsed().as_nanos() as u64;

    let rcfg = ResilienceConfig::from_engine_config(engine.config());
    let batch = BatchEngine::new(
        engine,
        BatchConfig {
            threads: args.threads,
            ..BatchConfig::default()
        },
    );
    let resilient = ResilientBatchEngine::new(batch, rcfg);
    let report = resilient.run_batch(&requests);
    drop(guard);

    let mut matched = 0usize;
    let mut compared = 0usize;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    for (r, s) in report.outcomes.iter().zip(&sequential) {
        if r.outcome.cache_hit {
            cache_hits += 1;
        } else {
            cache_misses += 1;
        }
        if r.expired {
            continue;
        }
        compared += 1;
        match (&r.outcome.result, s) {
            (Ok(a), Ok(b)) if a == b => matched += 1,
            (Err(_), Err(_)) => matched += 1,
            _ => {}
        }
    }
    let t = &report.totals;
    println!(
        "{} | T = {} | {} requests | {} threads",
        args.model.bayesian_name(),
        args.samples,
        args.requests,
        args.threads
    );
    println!(
        "sequential: {:.1} ms | batch: {:.1} ms ({:.1} req/s)",
        sequential_ns as f64 / 1e6,
        report.elapsed_ns as f64 / 1e6,
        if report.elapsed_ns == 0 {
            0.0
        } else {
            report.outcomes.len() as f64 / (report.elapsed_ns as f64 / 1e9)
        }
    );
    println!(
        "bit-identical to sequential: {matched}/{compared}{} | cache hits {cache_hits} / \
         misses {cache_misses}",
        if compared < report.outcomes.len() {
            format!(" ({} expired, excluded)", report.outcomes.len() - compared)
        } else {
            String::new()
        }
    );
    println!(
        "resilience: retries {} (healed {}, exhausted {}) | deadline expiries {} | \
         breaker {}",
        t.retries,
        t.retry_successes,
        t.retry_exhausted,
        t.expired,
        report.breaker_state.name()
    );
    for r in &report.outcomes {
        if let Err(e) = &r.outcome.result {
            println!("request {} failed: {e}", r.outcome.id);
        }
    }
    println!();
    print!(
        "{}",
        fast_bcnn::TelemetryReport::from_registry(&registry).render()
    );

    if let Some(path) = &args.trace_out {
        match registry.write_jsonl(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics_out {
        match registry.write_prometheus(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if matched != compared {
        eprintln!("error: batch results diverged from sequential");
        std::process::exit(1);
    }
}

/// Label for a freshly exported artifact when `--label` was not given.
fn default_label(args: &Args) -> String {
    args.label
        .clone()
        .unwrap_or_else(|| format!("{:?}-T{}", args.model, args.samples))
}

/// The serving model: the `--artifact` file when given (any load or
/// validation failure is a typed [`fast_bcnn::ArtifactError`], printed
/// and fatal), otherwise a fresh export of the `--model` engine.
fn base_artifact(args: &Args) -> ModelArtifact {
    match &args.artifact {
        Some(path) => match ModelArtifact::load(path) {
            Ok(artifact) => artifact,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            ModelArtifact::from_engine(&engine_for(args), args.model_version, default_label(args))
        }
    }
}

/// Registry configuration from the CLI flags and the artifact's own
/// engine configuration (deadline/retry/breaker travel with the model).
fn registry_cfg(args: &Args, engine_cfg: &EngineConfig) -> RegistryConfig {
    RegistryConfig {
        shards: args.shards,
        canary_percent: args.canary_percent,
        batch: BatchConfig {
            threads: args.threads,
            ..BatchConfig::default()
        },
        resilience: ResilienceConfig::from_engine_config(engine_cfg),
        ..RegistryConfig::default()
    }
}

fn print_version_table(registry: &ModelRegistry) {
    let rows: Vec<Vec<String>> = registry
        .version_counters()
        .iter()
        .map(|(v, c)| {
            vec![
                format!("v{v}"),
                c.requests.to_string(),
                c.ok.to_string(),
                c.failed.to_string(),
                c.canary.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(&["version", "requests", "ok", "failed", "canary"], &rows)
    );
}

/// Exports the configured engine as a versioned model artifact and
/// immediately proves the round trip by reloading and validating it.
fn cmd_export_model(args: &Args) {
    let Some(out) = &args.out else {
        eprintln!("error: export-model needs --out <path>");
        std::process::exit(2);
    };
    let engine = engine_for(args);
    let artifact = ModelArtifact::from_engine(&engine, args.model_version, default_label(args));
    let digest = artifact.digest;
    if let Err(e) = artifact.save(out) {
        eprintln!("error: {out}: {e}");
        std::process::exit(1);
    }
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "exported {} v{} (label `{}`) to {out}: {bytes} bytes, digest {digest:016x}",
        args.model.bayesian_name(),
        args.model_version,
        default_label(args),
    );
    match ModelArtifact::load(out) {
        Ok(back) if back.digest == digest => println!("verified: artifact reloads and validates"),
        Ok(back) => {
            eprintln!(
                "error: reloaded digest {:016x} != exported {digest:016x}",
                back.digest
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: exported artifact does not reload: {e}");
            std::process::exit(1);
        }
    }
}

/// Serves a synthetic request queue through a [`ModelRegistry`] booted
/// from an artifact (`--artifact`, or a fresh in-memory export) and
/// prints the per-version request accounting.
fn cmd_serve(args: &Args) {
    let registry_telemetry = std::sync::Arc::new(fast_bcnn::telemetry::Registry::new());
    let guard = fast_bcnn::telemetry::install(registry_telemetry.clone());
    let artifact = base_artifact(args);
    let shape = artifact.network.input_shape();
    let seed = artifact.config.seed;
    let version = artifact.model_version;
    let label = artifact.label.clone();
    let cfg = registry_cfg(args, &artifact.config);
    let registry = match ModelRegistry::new(artifact, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: refusing to serve: {e}");
            std::process::exit(1);
        }
    };
    let requests: Vec<BatchRequest> = (0..args.requests)
        .map(|i| {
            BatchRequest::new(
                i as u64,
                synth_input(shape, seed ^ (i as u64).wrapping_mul(41)),
            )
        })
        .collect();
    let report = registry.run_batch(&requests);
    drop(guard);

    println!(
        "serving v{version} (label `{label}`) over {} shards, {}% canary fraction",
        args.shards, args.canary_percent
    );
    let ok = report
        .outcomes
        .iter()
        .filter(|o| o.outcome.outcome.result.is_ok())
        .count();
    println!(
        "{} requests: {ok} ok / {} failed in {:.1} ms",
        report.outcomes.len(),
        report.outcomes.len() - ok,
        report.elapsed_ns as f64 / 1e6
    );
    print_version_table(&registry);
    match report.reconcile() {
        Ok(()) => println!("accounting reconciled exactly"),
        Err(e) => {
            eprintln!("error: accounting did not reconcile: {e}");
            std::process::exit(1);
        }
    }
    println!();
    print!(
        "{}",
        fast_bcnn::TelemetryReport::from_registry(&registry_telemetry).render()
    );
    if let Some(path) = &args.trace_out {
        match registry_telemetry.write_jsonl(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics_out {
        match registry_telemetry.write_prometheus(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Demonstrates a drain-free hot swap: serves traffic on the base
/// artifact, deploys the `--next` artifact mid-stream (or a version bump
/// of the base when `--next` is omitted), keeps serving while the canary
/// fraction exercises the candidate, then promotes it on every shard.
fn cmd_swap(args: &Args) {
    let registry_telemetry = std::sync::Arc::new(fast_bcnn::telemetry::Registry::new());
    let guard = fast_bcnn::telemetry::install(registry_telemetry.clone());
    let base = base_artifact(args);
    let shape = base.network.input_shape();
    let seed = base.config.seed;
    let base_version = base.model_version;
    let next = match &args.next {
        Some(path) => match ModelArtifact::load(path) {
            Ok(artifact) => artifact,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            // The digest covers weights/thresholds/indicators but not the
            // version or label, so a relabeled version bump stays valid.
            let mut bump = base.clone();
            bump.model_version = base_version + 1;
            bump.label = format!("{}-next", bump.label);
            bump
        }
    };
    let next_version = next.model_version;
    let cfg = registry_cfg(args, &base.config);
    let registry = match ModelRegistry::new(base, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: refusing to serve: {e}");
            std::process::exit(1);
        }
    };

    let per_phase = (args.requests / 3).max(1);
    let serve = |phase: u64, n: usize| -> fast_bcnn::RegistryReport {
        let requests: Vec<BatchRequest> = (0..n)
            .map(|i| {
                let id = phase * 10_000 + i as u64;
                BatchRequest::new(id, synth_input(shape, seed ^ id.wrapping_mul(41)))
            })
            .collect();
        registry.run_batch(&requests)
    };

    println!("phase 1: {per_phase} requests on v{base_version}");
    let mut reports = vec![serve(0, per_phase)];
    if let Err(e) = registry.deploy(next) {
        eprintln!("error: deploy refused: {e}");
        std::process::exit(1);
    }
    println!("deployed v{next_version} as rollout candidate (canary fraction serving)");
    println!("phase 2: {per_phase} requests with the rollout in flight");
    reports.push(serve(1, per_phase));
    if let Some(status) = registry.rollout_status() {
        println!(
            "canary: {} observed, {} failures, {} trips",
            status.observed, status.failures, status.canary_trips
        );
    }
    match registry.promote() {
        Some(v) => println!("promoted v{v} on all {} shards", args.shards),
        None => println!(
            "rollout was already resolved (rolled back automatically); still on v{}",
            registry.active_version()
        ),
    }
    println!(
        "phase 3: {per_phase} requests on v{}",
        registry.active_version()
    );
    reports.push(serve(2, per_phase));
    drop(guard);

    println!();
    print_version_table(&registry);
    println!(
        "deploys {} | promotions {} | rollbacks {} | active v{}",
        registry.deploys(),
        registry.promotions(),
        registry.rollbacks(),
        registry.active_version()
    );
    for (i, report) in reports.iter().enumerate() {
        if let Err(e) = report.reconcile() {
            eprintln!("error: phase {} accounting did not reconcile: {e}", i + 1);
            std::process::exit(1);
        }
    }
    println!("accounting reconciled exactly across all phases");
    println!();
    print!(
        "{}",
        fast_bcnn::TelemetryReport::from_registry(&registry_telemetry).render()
    );
    if let Some(path) = &args.trace_out {
        match registry_telemetry.write_jsonl(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
    if let Some(path) = &args.metrics_out {
        match registry_telemetry.write_prometheus(path) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    // `observe`, `serve-batch`, `serve` and `swap` manage their own
    // registry (they print the digest before the exporters run); every
    // other command uses the drop-to-export sink.
    let own_registry = matches!(
        args.command.as_str(),
        "observe" | "serve-batch" | "serve" | "swap"
    );
    let _telemetry = if own_registry {
        None
    } else {
        fast_bcnn::telemetry::FileSink::new(args.trace_out.as_deref(), args.metrics_out.as_deref())
    };
    match args.command.as_str() {
        "demo" => cmd_demo(&args),
        "simulate" => cmd_simulate(&args),
        "characterize" => cmd_characterize(&args),
        "train" => cmd_train(&args),
        "observe" => cmd_observe(&args),
        "serve-batch" => cmd_serve_batch(&args),
        "export-model" => cmd_export_model(&args),
        "serve" => cmd_serve(&args),
        "swap" => cmd_swap(&args),
        _ => {
            println!(
                "usage: fastbcnn <demo|simulate|characterize|train|observe|serve-batch\
                 |export-model|serve|swap> \
                 [--model lenet|vgg|googlenet|alexnet] [--samples N] [--full] \
                 [--epochs N] [--train-size N] [--requests N] [--threads N] \
                 [--deadline-ms N] [--retry-max N] [--breaker-threshold X] \
                 [--trace-out <path>] [--metrics-out <path>]"
            );
            println!(
                "serve-batch resilience defaults: no deadline (--deadline-ms unset), \
                 --retry-max 2, --breaker-threshold 0.5"
            );
            println!(
                "artifact flags: export-model --out <path> [--model-version N] [--label S]; \
                 serve/swap [--artifact <path>] [--next <path>] [--shards N] \
                 [--canary-percent N] (no --artifact: a fresh in-memory export; \
                 no --next: a version bump of the base)"
            );
        }
    }
}
