//! Shard health supervision: detect sick registry shards, route around
//! them, rebuild them from the pinned artifact, and re-admit them
//! through a probe gate.
//!
//! Every shard walks a four-state machine
//!
//! ```text
//! Healthy ──bad window──▶ Suspect ──strikes──▶ Quarantined
//!    ▲                       │                      │
//!    │◀──────good window─────┘                 (rebuild from the
//!    │                                          retained artifact)
//!    └──probes pass── Rebuilding ◀──────────────────┘
//!            (probes fail ▶ back to Quarantined)
//! ```
//!
//! driven by windowed per-shard signals the resilience layer already
//! emits — typed-failure rate, deadline-expiry rate, watchdog
//! abandonment and breaker-open dwell — over an injectable
//! [`Clock`], so every transition sequence is deterministic under a
//! [`ManualClock`](fbcnn_telemetry::ManualClock) and golden-pinnable.
//!
//! Quarantined shards leave the routing ring: requests whose primary
//! shard is quarantined re-route via deterministic rendezvous hashing
//! ([`failover_route`]) to a live shard. The primary route stays the
//! plain mod-hash ([`shard_route`]), so restoring a shard restores the
//! original routing bit-for-bit — the property
//! `crates/core/tests/supervise_props.rs` pins. Re-admission mirrors the
//! circuit breaker's half-open phase: a rebuilt shard serves a bounded
//! number of probe requests and only rejoins the ring when enough of
//! them succeed.
//!
//! The serve tier hosts the supervision soak harness
//! ([`crate::serve::run_supervise_soak_into`]): a TCP serve campaign
//! with three injected shard-poisoning fault classes and adversarial
//! clients, reconciled exactly across the loadgen, server and
//! supervision ledgers. See `docs/REGISTRY.md` for thresholds and
//! semantics.

use crate::error::EngineError;
use fbcnn_telemetry::Clock;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Counter metric: supervision state transitions, labelled `from`/`to`.
pub const SHARD_HEALTH_TRANSITIONS_METRIC: &str = "shard_health_transitions";
/// Counter metric: requests re-routed off their primary shard, labelled
/// `shard` (the sick primary).
pub const FAILOVER_REQUESTS_METRIC: &str = "failover_requests";
/// Counter metric: shard rebuilds attempted.
pub const REBUILD_ATTEMPTS_METRIC: &str = "rebuild_attempts";
/// Counter metric: rebuilt shards that passed the probe gate.
pub const REBUILD_SUCCESSES_METRIC: &str = "rebuild_successes";
/// Counter metric: rebuilt shards sent back to quarantine by the probe
/// gate.
pub const REBUILD_PROBE_REJECTS_METRIC: &str = "rebuild_probe_rejects";

const FAILOVER_SALT: u64 = 0xFA_17_0E_55;

/// A late-bound handle to a [`Supervisor`], for fault injectors built
/// before the registry (and thus the supervisor) exists. The chaos
/// harness fills the slot after boot; a hook holding the gate consults
/// the supervisor's live health on every fire, so a shard poison dies
/// with its shard's quarantine instead of chasing failed-over requests
/// onto healthy shards.
pub type SupervisorGate = Arc<Mutex<Option<Arc<Supervisor>>>>;

/// Poison-tolerant lock on a [`SupervisorGate`].
pub fn lock_gate(gate: &SupervisorGate) -> MutexGuard<'_, Option<Arc<Supervisor>>> {
    gate.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `splitmix64` finalizer — the deterministic mixer behind the shard
/// route, the canary split and the rendezvous failover weights.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The primary id → shard route (seeded mod-hash), shared by
/// [`crate::ModelRegistry::shard_of`], the failover router and the
/// shard-scoped fault injectors.
pub fn shard_route(routing_seed: u64, shards: usize, id: u64) -> usize {
    (mix64(id ^ routing_seed) % shards.max(1) as u64) as usize
}

/// Deterministic rendezvous failover: returns the primary shard when it
/// is live, else the highest-weight live shard under rendezvous (HRW)
/// hashing. Pure in all its inputs, so for a fixed quarantine set the
/// mapping is stable (same id → same target) and restoring a shard
/// restores the original mod-hash routing bit-for-bit.
///
/// With no live shard at all the primary is returned unchanged — the
/// supervisor never quarantines the last live shard, so that case only
/// arises from a caller handing in an all-false mask.
pub fn failover_route(routing_seed: u64, shards: usize, live: &[bool], id: u64) -> usize {
    let primary = shard_route(routing_seed, shards, id);
    if live.get(primary).copied().unwrap_or(false) {
        return primary;
    }
    let mut best: Option<(u64, usize)> = None;
    for (shard, alive) in live.iter().enumerate().take(shards.max(1)) {
        if !*alive {
            continue;
        }
        let weight = mix64(id ^ routing_seed ^ FAILOVER_SALT.wrapping_mul(shard as u64 + 1));
        if best.is_none_or(|(w, _)| weight > w) {
            best = Some((weight, shard));
        }
    }
    best.map_or(primary, |(_, shard)| shard)
}

/// One shard's position in the supervision state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving normally; in the routing ring.
    Healthy,
    /// One or more bad signal windows; still in the ring, accumulating
    /// strikes toward quarantine.
    Suspect,
    /// Out of the ring; traffic fails over while the supervisor rebuilds
    /// the shard from the retained artifact.
    Quarantined,
    /// Rebuilt and serving a bounded number of probe requests; the probe
    /// verdict either re-admits the shard or sends it back to
    /// quarantine.
    Rebuilding,
}

impl ShardHealth {
    /// Stable lowercase name (telemetry labels, reports, CLI tables).
    pub fn name(&self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Suspect => "suspect",
            ShardHealth::Quarantined => "quarantined",
            ShardHealth::Rebuilding => "rebuilding",
        }
    }

    /// Whether the shard is in the routing ring (primary-eligible).
    pub fn is_live(&self) -> bool {
        matches!(self, ShardHealth::Healthy | ShardHealth::Suspect)
    }
}

/// Knobs of the per-shard supervision state machine.
#[derive(Clone)]
pub struct SuperviseConfig {
    /// Time source of the signal windows and breaker dwell. Tests pin
    /// [`fbcnn_telemetry::ManualClock`]; production uses
    /// [`fbcnn_telemetry::MonotonicClock`].
    pub clock: Arc<dyn Clock>,
    /// Signal-window width in nanoseconds; each shard's counters fold
    /// into one good/bad verdict per window.
    pub window_ns: u64,
    /// Observations required in a window before its verdict binds;
    /// thinner windows are discarded without a verdict.
    pub min_observations: u64,
    /// Typed-failure rate at or above which a window is bad, in (0, 1].
    pub failure_rate_threshold: f64,
    /// Fatal deadline-expiry rate at or above which a window is bad, in
    /// (0, 1]. Only expiries that killed the request count; a served
    /// partial whose price class expired its budget is normal degraded
    /// operation.
    pub expiry_rate_threshold: f64,
    /// Watchdog abandonments in a window at or above which the window is
    /// bad regardless of rates.
    pub abandon_threshold: u64,
    /// Continuous breaker-open dwell (nanoseconds) that counts as one
    /// bad signal; re-arms after firing, so a jammed breaker keeps
    /// striking.
    pub breaker_open_dwell_ns: u64,
    /// Consecutive bad signals (the first of which moves the shard to
    /// Suspect) required to quarantine.
    pub suspect_strikes: u32,
    /// Probe requests a Rebuilding shard serves before its verdict.
    pub probe_requests: u64,
    /// Probe failures tolerated while still re-admitting the shard.
    pub probe_max_failures: u64,
    /// Minimum dwell in Quarantined (nanoseconds) before
    /// [`Supervisor::tick`] offers the shard for rebuild. The cooling-off
    /// period keeps a flapping shard out of the ring long enough for the
    /// failover path to drain its in-flight damage; `0` rebuilds at the
    /// next tick.
    pub rebuild_backoff_ns: u64,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        Self {
            clock: Arc::new(fbcnn_telemetry::MonotonicClock::new()),
            window_ns: 50_000_000,
            min_observations: 8,
            failure_rate_threshold: 0.5,
            expiry_rate_threshold: 0.5,
            abandon_threshold: 1,
            breaker_open_dwell_ns: 100_000_000,
            suspect_strikes: 2,
            probe_requests: 4,
            probe_max_failures: 0,
            rebuild_backoff_ns: 0,
        }
    }
}

impl fmt::Debug for SuperviseConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SuperviseConfig")
            .field("window_ns", &self.window_ns)
            .field("min_observations", &self.min_observations)
            .field("failure_rate_threshold", &self.failure_rate_threshold)
            .field("expiry_rate_threshold", &self.expiry_rate_threshold)
            .field("abandon_threshold", &self.abandon_threshold)
            .field("breaker_open_dwell_ns", &self.breaker_open_dwell_ns)
            .field("suspect_strikes", &self.suspect_strikes)
            .field("probe_requests", &self.probe_requests)
            .field("probe_max_failures", &self.probe_max_failures)
            .field("rebuild_backoff_ns", &self.rebuild_backoff_ns)
            .finish()
    }
}

impl SuperviseConfig {
    /// Checks every field against its legal range.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] naming the violated constraint.
    pub fn validate(&self) -> Result<(), EngineError> {
        let fail = |reason: String| Err(EngineError::InvalidConfig { reason });
        if self.window_ns == 0 {
            return fail("supervise window_ns must be > 0".into());
        }
        if self.min_observations == 0 {
            return fail("supervise min_observations must be > 0".into());
        }
        for (name, rate) in [
            ("failure_rate_threshold", self.failure_rate_threshold),
            ("expiry_rate_threshold", self.expiry_rate_threshold),
        ] {
            if !(rate > 0.0 && rate <= 1.0) {
                return fail(format!("supervise {name} {rate} out of (0, 1]"));
            }
        }
        if self.breaker_open_dwell_ns == 0 {
            return fail("supervise breaker_open_dwell_ns must be > 0".into());
        }
        if self.suspect_strikes == 0 {
            return fail("supervise suspect_strikes must be > 0".into());
        }
        if self.probe_requests == 0 {
            return fail("supervise probe_requests must be > 0".into());
        }
        if self.probe_max_failures >= self.probe_requests {
            return fail(format!(
                "supervise probe_max_failures {} must be < probe_requests {}",
                self.probe_max_failures, self.probe_requests
            ));
        }
        Ok(())
    }
}

/// One recorded supervision state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthTransition {
    /// Shard that moved.
    pub shard: usize,
    /// State it left.
    pub from: ShardHealth,
    /// State it entered.
    pub to: ShardHealth,
    /// Clock timestamp of the transition, nanoseconds.
    pub at_ns: u64,
}

/// Where the supervisor routed one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteDecision {
    /// The mod-hash primary shard of the request id.
    pub primary: usize,
    /// The shard that actually serves it.
    pub serve: usize,
    /// Whether the request left its primary (`serve != primary`).
    pub failed_over: bool,
    /// Whether the request was admitted as a probe of a Rebuilding
    /// primary.
    pub probe: bool,
}

/// The supervisor-relevant facts of one served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeSignal {
    /// The request produced a prediction.
    pub ok: bool,
    /// A deadline or sample budget expired it.
    pub expired: bool,
    /// The watchdog abandoned it (typed `worker_hung`).
    pub abandoned: bool,
    /// It was admitted as a probe of a Rebuilding shard.
    pub probe: bool,
}

/// Cumulative per-shard supervision ledger — the third side of the
/// soak's three-way reconciliation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardLedger {
    /// Requests this shard served (primaries plus failed-over arrivals
    /// plus probes).
    pub served: u64,
    /// Served requests that produced a prediction.
    pub ok: u64,
    /// Served requests that ended in a typed error.
    pub failed: u64,
    /// Served requests a deadline/budget expired.
    pub expired: u64,
    /// Served requests the watchdog abandoned.
    pub abandoned: u64,
    /// Probe requests served while Rebuilding.
    pub probes_served: u64,
    /// Requests whose primary was this shard but which served elsewhere.
    pub failovers_out: u64,
    /// Requests served here on behalf of a sick primary.
    pub failovers_in: u64,
    /// Times this shard entered Quarantined.
    pub quarantines: u64,
    /// Times this shard entered Rebuilding.
    pub rebuilds: u64,
}

/// A point-in-time snapshot of the whole supervision layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperviseSnapshot {
    /// Current health per shard.
    pub health: Vec<ShardHealth>,
    /// Cumulative ledger per shard.
    pub shards: Vec<ShardLedger>,
    /// Every transition since boot, in order.
    pub transitions: Vec<HealthTransition>,
    /// Rebuilds attempted.
    pub rebuild_attempts: u64,
    /// Rebuilds whose probe gate re-admitted the shard.
    pub rebuild_successes: u64,
    /// Rebuilds whose probe gate sent the shard back to quarantine.
    pub rebuild_probe_rejects: u64,
}

impl SuperviseSnapshot {
    /// Whether `shard` has walked the full self-healing cycle
    /// Healthy → Suspect → Quarantined → Rebuilding → Healthy (in order,
    /// possibly with other transitions interleaved).
    pub fn full_walk(&self, shard: usize) -> bool {
        let want = [
            ShardHealth::Suspect,
            ShardHealth::Quarantined,
            ShardHealth::Rebuilding,
            ShardHealth::Healthy,
        ];
        let mut next = 0;
        for t in self.transitions.iter().filter(|t| t.shard == shard) {
            if next < want.len() && t.to == want[next] {
                next += 1;
            }
        }
        next == want.len()
    }

    /// Internal consistency of the failover accounting: the fold of
    /// per-shard `failovers_out` must equal the fold of `failovers_in`.
    ///
    /// # Errors
    ///
    /// A description of the drifted fold.
    pub fn reconcile_failovers(&self) -> Result<(), String> {
        let out: u64 = self.shards.iter().map(|s| s.failovers_out).sum();
        let inn: u64 = self.shards.iter().map(|s| s.failovers_in).sum();
        if out != inn {
            return Err(format!(
                "failover folds drifted: {out} routed out, {inn} absorbed"
            ));
        }
        Ok(())
    }
}

struct ShardState {
    health: ShardHealth,
    strikes: u32,
    window_start_ns: u64,
    observed: u64,
    failed: u64,
    expired: u64,
    abandoned: u64,
    breaker_open_since: Option<u64>,
    quarantined_at_ns: u64,
    probe_issued: u64,
    probe_ok: u64,
    probe_failed: u64,
    totals: ShardLedger,
}

impl ShardState {
    fn new(now: u64) -> Self {
        Self {
            health: ShardHealth::Healthy,
            strikes: 0,
            window_start_ns: now,
            observed: 0,
            failed: 0,
            expired: 0,
            abandoned: 0,
            breaker_open_since: None,
            quarantined_at_ns: 0,
            probe_issued: 0,
            probe_ok: 0,
            probe_failed: 0,
            totals: ShardLedger::default(),
        }
    }

    fn reset_window(&mut self, now: u64) {
        self.window_start_ns = now;
        self.observed = 0;
        self.failed = 0;
        self.expired = 0;
        self.abandoned = 0;
    }
}

/// The per-shard health supervisor a [`crate::ModelRegistry`] drives;
/// see the module docs for the state machine.
pub struct Supervisor {
    cfg: SuperviseConfig,
    routing_seed: u64,
    states: Vec<Mutex<ShardState>>,
    /// Lock-free mirror of each shard's ring membership, so routing and
    /// the never-quarantine-the-last-shard guard read health without
    /// taking every shard lock.
    live: Vec<AtomicBool>,
    /// Serializes quarantine decisions so two shards cannot each see the
    /// other live and quarantine simultaneously.
    quarantine_gate: Mutex<()>,
    ledger: Mutex<Vec<HealthTransition>>,
    rebuild_attempts: AtomicU64,
    rebuild_successes: AtomicU64,
    rebuild_probe_rejects: AtomicU64,
}

impl fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("shards", &self.states.len())
            .field("health", &self.health_snapshot())
            .finish()
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Supervisor {
    /// A supervisor over `shards` shards, all Healthy.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] for an invalid configuration or a
    /// zero shard count.
    pub fn new(
        shards: usize,
        routing_seed: u64,
        cfg: SuperviseConfig,
    ) -> Result<Self, EngineError> {
        cfg.validate()?;
        if shards == 0 {
            return Err(EngineError::InvalidConfig {
                reason: "supervisor needs at least one shard".into(),
            });
        }
        let now = cfg.clock.now_ns();
        Ok(Self {
            cfg,
            routing_seed,
            states: (0..shards)
                .map(|_| Mutex::new(ShardState::new(now)))
                .collect(),
            live: (0..shards).map(|_| AtomicBool::new(true)).collect(),
            quarantine_gate: Mutex::new(()),
            ledger: Mutex::new(Vec::new()),
            rebuild_attempts: AtomicU64::new(0),
            rebuild_successes: AtomicU64::new(0),
            rebuild_probe_rejects: AtomicU64::new(0),
        })
    }

    /// The supervision configuration.
    pub fn config(&self) -> &SuperviseConfig {
        &self.cfg
    }

    /// Shards supervised.
    pub fn shards(&self) -> usize {
        self.states.len()
    }

    /// Current health of one shard.
    pub fn health(&self, shard: usize) -> ShardHealth {
        lock(&self.states[shard]).health
    }

    /// Current health of every shard.
    pub fn health_snapshot(&self) -> Vec<ShardHealth> {
        self.states.iter().map(|s| lock(s).health).collect()
    }

    /// The routing-ring membership mask (Healthy | Suspect).
    pub fn live_mask(&self) -> Vec<bool> {
        self.live
            .iter()
            .map(|l| l.load(Ordering::Acquire))
            .collect()
    }

    /// Routes one request id: primary when live, probe admission when the
    /// primary is Rebuilding with probe budget left, rendezvous failover
    /// otherwise.
    pub fn route(&self, id: u64) -> RouteDecision {
        let shards = self.states.len();
        let primary = shard_route(self.routing_seed, shards, id);
        {
            let mut st = lock(&self.states[primary]);
            match st.health {
                ShardHealth::Healthy | ShardHealth::Suspect => {
                    return RouteDecision {
                        primary,
                        serve: primary,
                        failed_over: false,
                        probe: false,
                    };
                }
                ShardHealth::Rebuilding if st.probe_issued < self.cfg.probe_requests => {
                    st.probe_issued += 1;
                    return RouteDecision {
                        primary,
                        serve: primary,
                        failed_over: false,
                        probe: true,
                    };
                }
                ShardHealth::Rebuilding | ShardHealth::Quarantined => {}
            }
        }
        let live = self.live_mask();
        let serve = failover_route(self.routing_seed, shards, &live, id);
        let failed_over = serve != primary;
        if failed_over {
            lock(&self.states[primary]).totals.failovers_out += 1;
            lock(&self.states[serve]).totals.failovers_in += 1;
            let shard_label = primary.to_string();
            fbcnn_telemetry::counter_add(FAILOVER_REQUESTS_METRIC, &[("shard", &shard_label)], 1);
        }
        RouteDecision {
            primary,
            serve,
            failed_over,
            probe: false,
        }
    }

    /// Feeds one served request's outcome back to the shard that served
    /// it. Probe outcomes feed the probe gate; everything else feeds the
    /// current signal window (closing it first when it has aged out).
    pub fn observe(&self, serve: usize, signal: OutcomeSignal) {
        let now = self.cfg.clock.now_ns();
        let mut st = lock(&self.states[serve]);
        st.totals.served += 1;
        if signal.ok {
            st.totals.ok += 1;
        } else {
            st.totals.failed += 1;
        }
        if signal.expired {
            st.totals.expired += 1;
        }
        if signal.abandoned {
            st.totals.abandoned += 1;
        }
        if signal.probe {
            st.totals.probes_served += 1;
        }
        if signal.probe && st.health == ShardHealth::Rebuilding {
            if signal.ok {
                // A prediction came back — even a budget-expired
                // partial: the shard computed; the expiry priced the
                // request.
                st.probe_ok += 1;
            } else if signal.abandoned || !signal.expired {
                st.probe_failed += 1;
            } else {
                // A probe the request's *own* deadline killed (dead on
                // arrival or mid-run) is neutral evidence about the
                // rebuilt shard. Return its admission slot so a later
                // request re-probes instead of wedging the gate.
                st.probe_issued = st.probe_issued.saturating_sub(1);
            }
            if st.probe_ok + st.probe_failed >= self.cfg.probe_requests {
                if st.probe_failed <= self.cfg.probe_max_failures {
                    self.transition(&mut st, serve, ShardHealth::Healthy, now);
                    st.strikes = 0;
                    st.reset_window(now);
                    st.breaker_open_since = None;
                    self.rebuild_successes.fetch_add(1, Ordering::Relaxed);
                    fbcnn_telemetry::counter_add(REBUILD_SUCCESSES_METRIC, &[], 1);
                } else {
                    self.transition(&mut st, serve, ShardHealth::Quarantined, now);
                    st.quarantined_at_ns = now;
                    st.totals.quarantines += 1;
                    self.rebuild_probe_rejects.fetch_add(1, Ordering::Relaxed);
                    fbcnn_telemetry::counter_add(REBUILD_PROBE_REJECTS_METRIC, &[], 1);
                }
            }
            return;
        }
        st.observed += 1;
        if !signal.ok {
            st.failed += 1;
            // Only *fatal* expiries feed the expiry-rate verdict: a
            // served prediction whose price class expired its sample
            // budget is normal degraded operation, not shard sickness.
            // The cumulative ledger above still counts every expiry.
            if signal.expired {
                st.expired += 1;
            }
        }
        if signal.abandoned {
            st.abandoned += 1;
        }
        self.maybe_close_window(&mut st, serve, now);
    }

    /// One supervision tick: fold breaker dwell per shard, close aged
    /// windows, and return the shards currently Quarantined (the caller
    /// rebuilds them and reports back via
    /// [`Supervisor::note_rebuild_attempt`] /
    /// [`Supervisor::begin_probation`]).
    pub fn tick(&self, breaker_open: &[bool]) -> Vec<usize> {
        let now = self.cfg.clock.now_ns();
        let mut quarantined = Vec::new();
        for (shard, state) in self.states.iter().enumerate() {
            let mut st = lock(state);
            if st.health.is_live() {
                if breaker_open.get(shard).copied().unwrap_or(false) {
                    match st.breaker_open_since {
                        None => st.breaker_open_since = Some(now),
                        Some(since)
                            if now.saturating_sub(since) >= self.cfg.breaker_open_dwell_ns =>
                        {
                            self.bad_signal(&mut st, shard, now);
                            // Re-arm: a breaker that stays open keeps
                            // striking, one strike per dwell period.
                            st.breaker_open_since = Some(now);
                        }
                        Some(_) => {}
                    }
                } else {
                    st.breaker_open_since = None;
                }
                self.maybe_close_window(&mut st, shard, now);
            }
            if st.health == ShardHealth::Quarantined
                && now.saturating_sub(st.quarantined_at_ns) >= self.cfg.rebuild_backoff_ns
            {
                quarantined.push(shard);
            }
        }
        quarantined
    }

    /// Records one rebuild attempt (call before rebuilding a quarantined
    /// shard).
    pub fn note_rebuild_attempt(&self) {
        self.rebuild_attempts.fetch_add(1, Ordering::Relaxed);
        fbcnn_telemetry::counter_add(REBUILD_ATTEMPTS_METRIC, &[], 1);
    }

    /// Moves a freshly rebuilt shard from Quarantined to Rebuilding and
    /// opens its probe gate.
    pub fn begin_probation(&self, shard: usize) {
        let now = self.cfg.clock.now_ns();
        let mut st = lock(&self.states[shard]);
        if st.health != ShardHealth::Quarantined {
            return;
        }
        self.transition(&mut st, shard, ShardHealth::Rebuilding, now);
        st.probe_issued = 0;
        st.probe_ok = 0;
        st.probe_failed = 0;
        st.totals.rebuilds += 1;
        st.reset_window(now);
        st.breaker_open_since = None;
    }

    /// Rebuilds attempted so far.
    pub fn rebuild_attempts(&self) -> u64 {
        self.rebuild_attempts.load(Ordering::Relaxed)
    }

    /// A full snapshot of health, ledgers and the transition history.
    pub fn snapshot(&self) -> SuperviseSnapshot {
        let mut health = Vec::with_capacity(self.states.len());
        let mut shards = Vec::with_capacity(self.states.len());
        for state in &self.states {
            let st = lock(state);
            health.push(st.health);
            shards.push(st.totals);
        }
        SuperviseSnapshot {
            health,
            shards,
            transitions: lock(&self.ledger).clone(),
            rebuild_attempts: self.rebuild_attempts.load(Ordering::Relaxed),
            rebuild_successes: self.rebuild_successes.load(Ordering::Relaxed),
            rebuild_probe_rejects: self.rebuild_probe_rejects.load(Ordering::Relaxed),
        }
    }

    fn transition(&self, st: &mut ShardState, shard: usize, to: ShardHealth, now: u64) {
        let from = st.health;
        st.health = to;
        self.live[shard].store(to.is_live(), Ordering::Release);
        lock(&self.ledger).push(HealthTransition {
            shard,
            from,
            to,
            at_ns: now,
        });
        fbcnn_telemetry::counter_add(
            SHARD_HEALTH_TRANSITIONS_METRIC,
            &[("from", from.name()), ("to", to.name())],
            1,
        );
    }

    fn bad_signal(&self, st: &mut ShardState, shard: usize, now: u64) {
        match st.health {
            ShardHealth::Healthy => {
                st.strikes = 1;
                self.transition(st, shard, ShardHealth::Suspect, now);
            }
            ShardHealth::Suspect => {
                st.strikes += 1;
                if st.strikes >= self.cfg.suspect_strikes {
                    // Never quarantine the last live shard: with nowhere
                    // to fail over, a degraded shard beats no shard. The
                    // gate serializes the check so two sick shards cannot
                    // each see the other live and both leave the ring.
                    let _gate = lock(&self.quarantine_gate);
                    let others_live = self
                        .live
                        .iter()
                        .enumerate()
                        .any(|(i, l)| i != shard && l.load(Ordering::Acquire));
                    if others_live {
                        self.transition(st, shard, ShardHealth::Quarantined, now);
                        st.quarantined_at_ns = now;
                        st.totals.quarantines += 1;
                    }
                }
            }
            ShardHealth::Quarantined | ShardHealth::Rebuilding => {}
        }
    }

    fn maybe_close_window(&self, st: &mut ShardState, shard: usize, now: u64) {
        if now.saturating_sub(st.window_start_ns) < self.cfg.window_ns {
            return;
        }
        if st.observed >= self.cfg.min_observations {
            let observed = st.observed as f64;
            let bad = st.failed as f64 / observed >= self.cfg.failure_rate_threshold
                || st.expired as f64 / observed >= self.cfg.expiry_rate_threshold
                || st.abandoned >= self.cfg.abandon_threshold;
            if bad {
                self.bad_signal(st, shard, now);
            } else if st.health == ShardHealth::Suspect {
                st.strikes = 0;
                self.transition(st, shard, ShardHealth::Healthy, now);
            } else {
                st.strikes = 0;
            }
        }
        st.reset_window(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_telemetry::ManualClock;

    fn manual_cfg(clock: &Arc<ManualClock>) -> SuperviseConfig {
        SuperviseConfig {
            clock: Arc::clone(clock) as Arc<dyn Clock>,
            window_ns: 100,
            min_observations: 4,
            failure_rate_threshold: 0.5,
            expiry_rate_threshold: 0.5,
            abandon_threshold: 2,
            breaker_open_dwell_ns: 250,
            suspect_strikes: 2,
            probe_requests: 3,
            probe_max_failures: 0,
            ..SuperviseConfig::default()
        }
    }

    fn signal(ok: bool) -> OutcomeSignal {
        OutcomeSignal {
            ok,
            expired: false,
            abandoned: false,
            probe: false,
        }
    }

    fn feed_window(sup: &Supervisor, clock: &ManualClock, shard_target: usize, ok: bool, n: u64) {
        // Ids are irrelevant here; observe() attributes by shard index.
        for _ in 0..n {
            sup.observe(shard_target, signal(ok));
        }
        clock.advance(101);
        sup.observe(shard_target, signal(true)); // closes the aged window
    }

    /// The golden transition walk under a ManualClock: a shard fed two
    /// consecutive bad windows walks Healthy → Suspect → Quarantined at
    /// exactly the pinned timestamps, rebuilds, passes its probes and
    /// returns to Healthy — while its sibling never moves.
    #[test]
    fn golden_manual_clock_walk_is_pinned() {
        let clock = Arc::new(ManualClock::new());
        clock.set(1_000);
        let sup = Supervisor::new(2, 0x5EED, manual_cfg(&clock)).unwrap();

        // Window 1: 6 typed failures → bad → Suspect at t=1101.
        for _ in 0..6 {
            sup.observe(0, signal(false));
        }
        clock.set(1_101);
        sup.observe(0, signal(false));
        assert_eq!(sup.health(0), ShardHealth::Suspect);

        // Window 2: more failures → second strike → Quarantined at
        // t=1202.
        for _ in 0..6 {
            sup.observe(0, signal(false));
        }
        clock.set(1_202);
        sup.observe(0, signal(false));
        assert_eq!(sup.health(0), ShardHealth::Quarantined);

        // The tick reports the quarantined shard; the registry rebuilds
        // it and opens probation at t=1300.
        assert_eq!(sup.tick(&[false, false]), vec![0]);
        sup.note_rebuild_attempt();
        clock.set(1_300);
        sup.begin_probation(0);
        assert_eq!(sup.health(0), ShardHealth::Rebuilding);

        // Exactly probe_requests probes are admitted, the rest fail over.
        let mut probes = 0;
        let mut failovers = 0;
        for id in 0..64u64 {
            let d = sup.route(id);
            if d.primary != 0 {
                assert_eq!(d.serve, d.primary, "healthy primary must not move");
                continue;
            }
            if d.probe {
                probes += 1;
                assert_eq!(d.serve, 0);
            } else {
                assert!(d.failed_over);
                assert_eq!(d.serve, 1);
                failovers += 1;
            }
        }
        assert_eq!(probes, 3);
        assert!(failovers > 0);

        // Probes pass → re-admitted at t=1400.
        clock.set(1_400);
        for _ in 0..3 {
            sup.observe(
                0,
                OutcomeSignal {
                    ok: true,
                    expired: false,
                    abandoned: false,
                    probe: true,
                },
            );
        }
        assert_eq!(sup.health(0), ShardHealth::Healthy);

        let snap = sup.snapshot();
        assert!(snap.full_walk(0));
        assert!(!snap.full_walk(1));
        snap.reconcile_failovers().unwrap();
        assert_eq!(snap.rebuild_attempts, 1);
        assert_eq!(snap.rebuild_successes, 1);
        assert_eq!(snap.rebuild_probe_rejects, 0);
        let pinned: Vec<(usize, ShardHealth, ShardHealth, u64)> = snap
            .transitions
            .iter()
            .map(|t| (t.shard, t.from, t.to, t.at_ns))
            .collect();
        assert_eq!(
            pinned,
            vec![
                (0, ShardHealth::Healthy, ShardHealth::Suspect, 1_101),
                (0, ShardHealth::Suspect, ShardHealth::Quarantined, 1_202),
                (0, ShardHealth::Quarantined, ShardHealth::Rebuilding, 1_300),
                (0, ShardHealth::Rebuilding, ShardHealth::Healthy, 1_400),
            ]
        );
    }

    #[test]
    fn failed_probes_send_the_shard_back_to_quarantine() {
        let clock = Arc::new(ManualClock::new());
        clock.set(0);
        let sup = Supervisor::new(2, 1, manual_cfg(&clock)).unwrap();
        feed_window(&sup, &clock, 0, false, 5);
        feed_window(&sup, &clock, 0, false, 5);
        assert_eq!(sup.health(0), ShardHealth::Quarantined);
        sup.note_rebuild_attempt();
        sup.begin_probation(0);
        for _ in 0..3 {
            sup.observe(
                0,
                OutcomeSignal {
                    ok: false,
                    expired: false,
                    abandoned: false,
                    probe: true,
                },
            );
        }
        assert_eq!(sup.health(0), ShardHealth::Quarantined);
        let snap = sup.snapshot();
        assert_eq!(snap.rebuild_probe_rejects, 1);
        assert_eq!(snap.rebuild_successes, 0);
        // And the tick offers it up for another rebuild.
        assert_eq!(sup.tick(&[false, false]), vec![0]);
    }

    #[test]
    fn a_good_window_clears_suspicion() {
        let clock = Arc::new(ManualClock::new());
        clock.set(0);
        let sup = Supervisor::new(2, 1, manual_cfg(&clock)).unwrap();
        feed_window(&sup, &clock, 0, false, 5);
        assert_eq!(sup.health(0), ShardHealth::Suspect);
        feed_window(&sup, &clock, 0, true, 8);
        assert_eq!(sup.health(0), ShardHealth::Healthy);
        assert_eq!(sup.snapshot().transitions.len(), 2);
    }

    #[test]
    fn a_quarantined_shard_dwells_for_the_rebuild_backoff() {
        let clock = Arc::new(ManualClock::new());
        clock.set(0);
        let cfg = SuperviseConfig {
            rebuild_backoff_ns: 1_000,
            ..manual_cfg(&clock)
        };
        let sup = Supervisor::new(2, 1, cfg).unwrap();
        feed_window(&sup, &clock, 0, false, 5);
        feed_window(&sup, &clock, 0, false, 5);
        assert_eq!(sup.health(0), ShardHealth::Quarantined);
        // Inside the backoff the tick withholds the shard, so its traffic
        // keeps failing over instead of racing straight back into probation.
        assert!(sup.tick(&[false, false]).is_empty());
        clock.advance(500);
        assert!(sup.tick(&[false, false]).is_empty());
        // Once the dwell elapses the shard is offered for rebuild.
        clock.advance(1_000);
        assert_eq!(sup.tick(&[false, false]), vec![0]);
    }

    #[test]
    fn breaker_dwell_strikes_without_any_traffic() {
        let clock = Arc::new(ManualClock::new());
        clock.set(0);
        let sup = Supervisor::new(2, 1, manual_cfg(&clock)).unwrap();
        // Open breaker noticed at t=0; dwell threshold is 250 ns.
        assert!(sup.tick(&[true, false]).is_empty());
        clock.set(100);
        assert!(sup.tick(&[true, false]).is_empty());
        assert_eq!(sup.health(0), ShardHealth::Healthy, "dwell not reached");
        clock.set(250);
        sup.tick(&[true, false]);
        assert_eq!(sup.health(0), ShardHealth::Suspect);
        // Still open one dwell period later: second strike → quarantine.
        clock.set(500);
        assert_eq!(sup.tick(&[true, false]), vec![0]);
        assert_eq!(sup.health(0), ShardHealth::Quarantined);
        // A breaker that closes in time clears the dwell arming on the
        // sibling, which never moved.
        clock.set(600);
        sup.tick(&[false, false]);
        assert_eq!(sup.health(1), ShardHealth::Healthy);
    }

    #[test]
    fn the_last_live_shard_is_never_quarantined() {
        let clock = Arc::new(ManualClock::new());
        clock.set(0);
        let sup = Supervisor::new(2, 1, manual_cfg(&clock)).unwrap();
        for shard in 0..2 {
            feed_window(&sup, &clock, shard, false, 5);
            feed_window(&sup, &clock, shard, false, 5);
        }
        let health = sup.health_snapshot();
        assert_eq!(health[0], ShardHealth::Quarantined);
        assert_eq!(health[1], ShardHealth::Suspect, "last live shard stays");
        // Every id still routes to the one live shard.
        for id in 0..50 {
            let d = sup.route(id);
            assert_eq!(d.serve, 1);
        }
    }

    #[test]
    fn failover_is_deterministic_and_restores_bit_for_bit() {
        let seed = 0xABCD;
        let shards = 5;
        let live_all = vec![true; shards];
        let mut live = live_all.clone();
        live[2] = false;
        live[4] = false;
        for id in 0..500u64 {
            let primary = shard_route(seed, shards, id);
            let a = failover_route(seed, shards, &live, id);
            let b = failover_route(seed, shards, &live, id);
            assert_eq!(a, b, "mapping must be stable");
            assert!(live[a], "failover landed on a dead shard");
            if live[primary] {
                assert_eq!(a, primary);
            }
            // Restoring every shard restores the original routing.
            assert_eq!(failover_route(seed, shards, &live_all, id), primary);
        }
    }

    #[test]
    fn thin_windows_carry_no_verdict() {
        let clock = Arc::new(ManualClock::new());
        clock.set(0);
        let sup = Supervisor::new(2, 1, manual_cfg(&clock)).unwrap();
        // 2 failures + the closing ok = 3 observations, under
        // min_observations=4 → the window is discarded silently.
        for _ in 0..2 {
            sup.observe(0, signal(false));
        }
        clock.set(101);
        sup.observe(0, signal(true));
        assert_eq!(sup.health(0), ShardHealth::Healthy);
        assert!(sup.snapshot().transitions.is_empty());
    }

    #[test]
    fn config_validation_names_the_violation() {
        let bad = SuperviseConfig {
            probe_requests: 0,
            ..SuperviseConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = SuperviseConfig {
            probe_max_failures: 4,
            probe_requests: 4,
            ..SuperviseConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = SuperviseConfig {
            failure_rate_threshold: 0.0,
            ..SuperviseConfig::default()
        };
        assert!(bad.validate().is_err());
        assert!(SuperviseConfig::default().validate().is_ok());
        assert!(Supervisor::new(0, 1, SuperviseConfig::default()).is_err());
    }
}
