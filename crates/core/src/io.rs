//! Persistence for the expensive artifacts: trained/calibrated networks,
//! threshold sets and extracted workloads.
//!
//! Everything serializes as JSON via serde — human-inspectable and
//! version-control friendly. The offline stage (training, Algorithm 1)
//! can therefore run once and be reused across experiment sweeps.
//!
//! Each file is wrapped in a small envelope,
//! `{"artifact":"<kind>","version":N,"payload":…}`, so that loading a
//! stale or mislabeled artifact fails with a typed [`IoError`] instead of
//! a confusing payload parse error — or worse, a silently wrong
//! deserialization driving a calibrated engine with foreign thresholds.
//!
//! # Examples
//!
//! ```no_run
//! use fast_bcnn::{io, models};
//!
//! let net = models::lenet5(1);
//! io::save_network("lenet.json", &net)?;
//! let back = io::load_network("lenet.json")?;
//! assert_eq!(net, back);
//! # Ok::<(), fast_bcnn::io::IoError>(())
//! ```

use fbcnn_accel::Workload;
use fbcnn_nn::Network;
use fbcnn_predictor::ThresholdSet;
use serde::{de::DeserializeOwned, Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// The envelope format version written by this build. Bump on any
/// breaking payload change; [`load_network`] & co. refuse other versions.
pub const FORMAT_VERSION: u32 = 1;

/// Errors from saving or loading artifacts.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed or incompatible payload JSON.
    Serde(serde_json::Error),
    /// The file is not a recognizable artifact envelope (truncated,
    /// corrupted, or predates the envelope format).
    Envelope(String),
    /// The envelope's format version is not this build's
    /// [`FORMAT_VERSION`].
    Version {
        /// Version recorded in the file.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The file holds a different artifact kind than requested (e.g. a
    /// workload passed to [`load_thresholds`]).
    Kind {
        /// Kind recorded in the file.
        found: String,
        /// Kind the caller asked for.
        expected: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o failure: {e}"),
            IoError::Serde(e) => write!(f, "serialization failure: {e}"),
            IoError::Envelope(msg) => write!(f, "malformed artifact envelope: {msg}"),
            IoError::Version { found, expected } => {
                write!(f, "artifact format version {found}, expected {expected}")
            }
            IoError::Kind { found, expected } => {
                write!(f, "artifact holds a {found}, expected a {expected}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Serde(e)
    }
}

/// Artifact kind of a versioned model artifact
/// ([`crate::ModelArtifact`]): network, thresholds, indicators and
/// engine configuration in one envelope.
pub const MODEL_KIND: &str = "model";

pub(crate) fn save<T: Serialize>(
    path: impl AsRef<Path>,
    kind: &str,
    value: &T,
) -> Result<(), IoError> {
    let payload = serde_json::to_string(value)?;
    let json =
        format!("{{\"artifact\":\"{kind}\",\"version\":{FORMAT_VERSION},\"payload\":{payload}}}");
    std::fs::write(path, json)?;
    Ok(())
}

/// Splits an envelope into `(kind, version, payload)`. The parser is
/// deliberately strict — it accepts exactly what [`save`] writes — so any
/// corruption of the header bytes lands here as [`IoError::Envelope`]
/// rather than deep inside the payload parse.
pub(crate) fn parse_envelope(json: &str) -> Result<(&str, u32, &str), IoError> {
    let envelope = |msg: &str| IoError::Envelope(msg.into());
    let body = json
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| envelope("not a JSON object"))?;
    let rest = body
        .strip_prefix("\"artifact\":\"")
        .ok_or_else(|| envelope("missing artifact field"))?;
    let (kind, rest) = rest
        .split_once('"')
        .ok_or_else(|| envelope("unterminated artifact kind"))?;
    let rest = rest
        .strip_prefix(",\"version\":")
        .ok_or_else(|| envelope("missing version field"))?;
    let (version, payload) = rest
        .split_once(",\"payload\":")
        .ok_or_else(|| envelope("missing payload field"))?;
    let version = version
        .parse()
        .map_err(|_| envelope("version is not an integer"))?;
    Ok((kind, version, payload))
}

pub(crate) fn load<T: DeserializeOwned>(path: impl AsRef<Path>, kind: &str) -> Result<T, IoError> {
    let json = std::fs::read_to_string(path)?;
    let (found_kind, version, payload) = parse_envelope(&json)?;
    if found_kind != kind {
        return Err(IoError::Kind {
            found: found_kind.to_string(),
            expected: kind.to_string(),
        });
    }
    if version != FORMAT_VERSION {
        return Err(IoError::Version {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    Ok(serde_json::from_str(payload)?)
}

/// Saves a network (topology + weights) as JSON.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or serialization failure.
pub fn save_network(path: impl AsRef<Path>, net: &Network) -> Result<(), IoError> {
    save(path, "network", net)
}

/// Loads a network saved by [`save_network`].
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or deserialization failure, and the
/// envelope errors ([`IoError::Envelope`] / [`IoError::Version`] /
/// [`IoError::Kind`]) on a corrupted, stale or mislabeled artifact.
pub fn load_network(path: impl AsRef<Path>) -> Result<Network, IoError> {
    load(path, "network")
}

/// Saves a calibrated threshold set.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or serialization failure.
pub fn save_thresholds(path: impl AsRef<Path>, t: &ThresholdSet) -> Result<(), IoError> {
    save(path, "thresholds", t)
}

/// Loads a threshold set saved by [`save_thresholds`].
///
/// # Errors
///
/// As [`load_network`].
pub fn load_thresholds(path: impl AsRef<Path>) -> Result<ThresholdSet, IoError> {
    load(path, "thresholds")
}

/// Saves an extracted workload.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or serialization failure.
pub fn save_workload(path: impl AsRef<Path>, w: &Workload) -> Result<(), IoError> {
    save(path, "workload", w)
}

/// Loads a workload saved by [`save_workload`].
///
/// # Errors
///
/// As [`load_network`].
pub fn load_workload(path: impl AsRef<Path>) -> Result<Workload, IoError> {
    load(path, "workload")
}

/// Artifact kind of a flight-recorder postmortem dump
/// ([`crate::FlightLog`]).
pub const FLIGHT_LOG_KIND: &str = "flight-log";

/// Saves a flight-recorder log (postmortem dump) in the versioned
/// artifact envelope.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or serialization failure.
pub fn save_flight_log(path: impl AsRef<Path>, log: &crate::FlightLog) -> Result<(), IoError> {
    save(path, FLIGHT_LOG_KIND, log)
}

/// Loads a flight log saved by [`save_flight_log`] (or auto-emitted by
/// the SLO monitor / canary rollback path).
///
/// # Errors
///
/// As [`load_network`].
pub fn read_flight_log(path: impl AsRef<Path>) -> Result<crate::FlightLog, IoError> {
    load(path, FLIGHT_LOG_KIND)
}

/// One decoded line of a JSONL telemetry trace
/// ([`fbcnn_telemetry::Registry::to_jsonl`]). Every line carries the full
/// field set; fields irrelevant to the event's `kind` are zero/empty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event kind: `"span"`, `"counter"` or `"histogram"`.
    pub kind: String,
    /// Span or metric name.
    pub name: String,
    /// Label pairs, sorted by key.
    pub labels: Vec<(String, String)>,
    /// Span id (`0` for metric events).
    pub id: u64,
    /// Enclosing span id (`0` = root).
    pub parent: u64,
    /// Recording thread id (`0` for metric events; never `0` for
    /// spans). Span nesting and ordering invariants hold per thread.
    pub thread: u64,
    /// Span start in nanoseconds since the registry's epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
    /// Counter value / histogram sum of observations.
    pub value: f64,
    /// Counter value / histogram observation count.
    pub count: u64,
    /// Histogram `(upper_bound, cumulative_count)` pairs.
    pub buckets: Vec<(f64, u64)>,
}

/// Parses a JSONL telemetry trace: one [`TraceEvent`] envelope per line
/// (blank lines are skipped). Each line reuses the artifact envelope, so
/// corruption, stale versions and mislabeled files all fail typed.
///
/// # Errors
///
/// [`IoError::Envelope`] on a malformed line, [`IoError::Kind`] /
/// [`IoError::Version`] on a foreign or stale artifact, and
/// [`IoError::Serde`] on a payload that is not a trace event.
pub fn read_trace_str(text: &str) -> Result<Vec<TraceEvent>, IoError> {
    let mut events = Vec::new();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let (kind, version, payload) = parse_envelope(line)?;
        if kind != fbcnn_telemetry::TRACE_ARTIFACT {
            return Err(IoError::Kind {
                found: kind.to_string(),
                expected: fbcnn_telemetry::TRACE_ARTIFACT.to_string(),
            });
        }
        if version != fbcnn_telemetry::TRACE_FORMAT_VERSION {
            return Err(IoError::Version {
                found: version,
                expected: fbcnn_telemetry::TRACE_FORMAT_VERSION,
            });
        }
        events.push(serde_json::from_str(payload)?);
    }
    Ok(events)
}

/// Reads and parses a JSONL telemetry trace file written via
/// `--trace-out` (see [`read_trace_str`]).
///
/// # Errors
///
/// [`IoError::Io`] on filesystem failure, plus everything
/// [`read_trace_str`] reports.
pub fn read_trace(path: impl AsRef<Path>) -> Result<Vec<TraceEvent>, IoError> {
    read_trace_str(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synth_input, Engine, EngineConfig};
    use fbcnn_nn::models::ModelKind;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fbcnn_io_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn network_roundtrip_preserves_weights_and_behavior() {
        let net = fbcnn_nn::models::lenet5(9);
        let path = tmp("net");
        save_network(&path, &net).unwrap();
        let back = load_network(&path).unwrap();
        assert_eq!(net, back);
        let input = synth_input(net.input_shape(), 4);
        assert_eq!(net.forward(&input), back.forward(&input));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn thresholds_and_workload_roundtrip() {
        let engine = Engine::new(EngineConfig {
            samples: 3,
            calibration_samples: 2,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        });
        let tp = tmp("thresholds");
        save_thresholds(&tp, engine.thresholds()).unwrap();
        assert_eq!(&load_thresholds(&tp).unwrap(), engine.thresholds());

        let input = synth_input(engine.network().input_shape(), 2);
        let w = engine.workload(&input);
        let wp = tmp("workload");
        save_workload(&wp, &w).unwrap();
        let back = load_workload(&wp).unwrap();
        assert_eq!(w, back);
        // A reloaded workload drives the simulators identically.
        let a = engine.simulate_fast(&w, 64);
        let b = engine.simulate_fast(&back, 64);
        assert_eq!(a, b);
        let _ = std::fs::remove_file(tp);
        let _ = std::fs::remove_file(wp);
    }

    #[test]
    fn load_rejects_garbage_and_missing_files() {
        let p = tmp("garbage");
        std::fs::write(&p, "{not json").unwrap();
        assert!(matches!(load_network(&p), Err(IoError::Envelope(_))));
        let _ = std::fs::remove_file(p);
        assert!(matches!(
            load_network("/nonexistent/path.json"),
            Err(IoError::Io(_))
        ));
    }

    #[test]
    fn load_rejects_truncated_artifacts() {
        let net = fbcnn_nn::models::lenet5(2);
        let path = tmp("truncated");
        save_network(&path, &net).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        // Cut mid-payload: the envelope header survives, the payload does
        // not — the failure must be a typed Serde/Envelope error.
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(matches!(
            load_network(&path),
            Err(IoError::Envelope(_) | IoError::Serde(_))
        ));
        // Cut mid-header.
        std::fs::write(&path, &full[..20]).unwrap();
        assert!(matches!(load_network(&path), Err(IoError::Envelope(_))));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_rejects_corrupted_payload_bytes() {
        let net = fbcnn_nn::models::lenet5(2);
        let path = tmp("corrupt");
        save_network(&path, &net).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        let corrupted = full.replacen("[", "[!!", 1);
        std::fs::write(&path, corrupted).unwrap();
        assert!(matches!(load_network(&path), Err(IoError::Serde(_))));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_rejects_version_and_kind_mismatches() {
        let engine = Engine::new(EngineConfig {
            samples: 3,
            calibration_samples: 2,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        });
        let path = tmp("versioned");
        save_thresholds(&path, engine.thresholds()).unwrap();

        // A future format version must be refused, not misparsed.
        let full = std::fs::read_to_string(&path).unwrap();
        let stale = full.replacen("\"version\":1", "\"version\":99", 1);
        std::fs::write(&path, stale).unwrap();
        match load_thresholds(&path) {
            Err(IoError::Version { found, expected }) => {
                assert_eq!((found, expected), (99, FORMAT_VERSION));
            }
            other => panic!("unexpected outcome {other:?}"),
        }

        // The right version under the wrong loader is a kind error.
        save_thresholds(&path, engine.thresholds()).unwrap();
        match load_network(&path) {
            Err(IoError::Kind { found, expected }) => {
                assert_eq!(
                    (found.as_str(), expected.as_str()),
                    ("thresholds", "network")
                );
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trace_roundtrips_via_registry() {
        use fbcnn_telemetry::Recorder as _;
        let r = fbcnn_telemetry::Registry::new();
        r.counter_add("skips", &[("layer", "conv2")], 7);
        r.histogram_batch("nd", &[], &[1.0, 3.0]);
        let events = read_trace_str(&r.to_jsonl()).unwrap();
        let skip = events
            .iter()
            .find(|e| e.kind == "counter" && e.name == "skips")
            .unwrap();
        assert_eq!(skip.count, 7);
        assert_eq!(skip.labels, vec![("layer".into(), "conv2".into())]);
        let nd = events
            .iter()
            .find(|e| e.kind == "histogram" && e.name == "nd")
            .unwrap();
        assert_eq!(nd.count, 2);
        assert_eq!(nd.value, 4.0);
        assert_eq!(nd.buckets.last().map(|b| b.1), Some(2));
    }

    #[test]
    fn read_trace_rejects_foreign_and_stale_lines() {
        let good = "{\"artifact\":\"trace-event\",\"version\":1,\"payload\":{\"kind\":\"counter\",\
                    \"name\":\"x\",\"labels\":[],\"id\":0,\"parent\":0,\"thread\":0,\
                    \"start_ns\":0,\"duration_ns\":0,\"value\":1.0,\"count\":1,\"buckets\":[]}}";
        assert_eq!(read_trace_str(good).unwrap().len(), 1);
        let foreign = good.replacen("trace-event", "network", 1);
        assert!(matches!(
            read_trace_str(&foreign),
            Err(IoError::Kind { .. })
        ));
        let stale = good.replacen("\"version\":1", "\"version\":9", 1);
        assert!(matches!(
            read_trace_str(&stale),
            Err(IoError::Version { found: 9, .. })
        ));
        assert!(read_trace_str("not an envelope\n").is_err());
    }

    #[test]
    fn pre_envelope_files_fail_with_envelope_error() {
        // A bare payload (the format before envelopes) is refused with a
        // message pointing at the envelope, not a payload parse error.
        let path = tmp("legacy");
        std::fs::write(&path, "{\"nodes\":[]}").unwrap();
        assert!(matches!(load_network(&path), Err(IoError::Envelope(_))));
        let _ = std::fs::remove_file(path);
    }
}
