//! Persistence for the expensive artifacts: trained/calibrated networks,
//! threshold sets and extracted workloads.
//!
//! Everything serializes as JSON via serde — human-inspectable and
//! version-control friendly. The offline stage (training, Algorithm 1)
//! can therefore run once and be reused across experiment sweeps.
//!
//! # Examples
//!
//! ```no_run
//! use fast_bcnn::{io, models};
//!
//! let net = models::lenet5(1);
//! io::save_network("lenet.json", &net)?;
//! let back = io::load_network("lenet.json")?;
//! assert_eq!(net, back);
//! # Ok::<(), fast_bcnn::io::IoError>(())
//! ```

use fbcnn_accel::Workload;
use fbcnn_nn::Network;
use fbcnn_predictor::ThresholdSet;
use serde::{de::DeserializeOwned, Serialize};
use std::fmt;
use std::path::Path;

/// Errors from saving or loading artifacts.
#[derive(Debug)]
pub enum IoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed or incompatible JSON.
    Serde(serde_json::Error),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o failure: {e}"),
            IoError::Serde(e) => write!(f, "serialization failure: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Serde(e)
    }
}

fn save<T: Serialize>(path: impl AsRef<Path>, value: &T) -> Result<(), IoError> {
    let json = serde_json::to_string(value)?;
    std::fs::write(path, json)?;
    Ok(())
}

fn load<T: DeserializeOwned>(path: impl AsRef<Path>) -> Result<T, IoError> {
    let json = std::fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

/// Saves a network (topology + weights) as JSON.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or serialization failure.
pub fn save_network(path: impl AsRef<Path>, net: &Network) -> Result<(), IoError> {
    save(path, net)
}

/// Loads a network saved by [`save_network`].
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or deserialization failure.
pub fn load_network(path: impl AsRef<Path>) -> Result<Network, IoError> {
    load(path)
}

/// Saves a calibrated threshold set.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or serialization failure.
pub fn save_thresholds(path: impl AsRef<Path>, t: &ThresholdSet) -> Result<(), IoError> {
    save(path, t)
}

/// Loads a threshold set saved by [`save_thresholds`].
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or deserialization failure.
pub fn load_thresholds(path: impl AsRef<Path>) -> Result<ThresholdSet, IoError> {
    load(path)
}

/// Saves an extracted workload.
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or serialization failure.
pub fn save_workload(path: impl AsRef<Path>, w: &Workload) -> Result<(), IoError> {
    save(path, w)
}

/// Loads a workload saved by [`save_workload`].
///
/// # Errors
///
/// Returns [`IoError`] on filesystem or deserialization failure.
pub fn load_workload(path: impl AsRef<Path>) -> Result<Workload, IoError> {
    load(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synth_input, Engine, EngineConfig};
    use fbcnn_nn::models::ModelKind;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("fbcnn_io_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn network_roundtrip_preserves_weights_and_behavior() {
        let net = fbcnn_nn::models::lenet5(9);
        let path = tmp("net");
        save_network(&path, &net).unwrap();
        let back = load_network(&path).unwrap();
        assert_eq!(net, back);
        let input = synth_input(net.input_shape(), 4);
        assert_eq!(net.forward(&input), back.forward(&input));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn thresholds_and_workload_roundtrip() {
        let engine = Engine::new(EngineConfig {
            samples: 3,
            calibration_samples: 2,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        });
        let tp = tmp("thresholds");
        save_thresholds(&tp, engine.thresholds()).unwrap();
        assert_eq!(&load_thresholds(&tp).unwrap(), engine.thresholds());

        let input = synth_input(engine.network().input_shape(), 2);
        let w = engine.workload(&input);
        let wp = tmp("workload");
        save_workload(&wp, &w).unwrap();
        let back = load_workload(&wp).unwrap();
        assert_eq!(w, back);
        // A reloaded workload drives the simulators identically.
        let a = engine.simulate_fast(&w, 64);
        let b = engine.simulate_fast(&back, 64);
        assert_eq!(a, b);
        let _ = std::fs::remove_file(tp);
        let _ = std::fs::remove_file(wp);
    }

    #[test]
    fn load_rejects_garbage() {
        let p = tmp("garbage");
        std::fs::write(&p, "{not json").unwrap();
        assert!(matches!(load_network(&p), Err(IoError::Serde(_))));
        let _ = std::fs::remove_file(p);
        assert!(matches!(
            load_network("/nonexistent/path.json"),
            Err(IoError::Io(_))
        ));
    }
}
