//! Property-based tests pinning the failover router's determinism
//! contract: for any quarantine subset that leaves at least one shard
//! live, every request id maps to exactly one live shard, the mapping
//! is a pure function of its inputs, requests whose primary is live
//! never move, and restoring the full ring restores the original
//! mod-hash routing bit-for-bit.

use fast_bcnn::{failover_route, shard_route};
use proptest::prelude::*;

/// A ring size, a live-mask over it with at least one live shard, and a
/// routing seed — the full input space of one failover decision.
fn ring_strategy() -> impl Strategy<Value = (u64, Vec<bool>)> {
    (any::<u64>(), 1usize..=8)
        .prop_flat_map(|(seed, shards)| {
            (Just(seed), proptest::collection::vec(any::<bool>(), shards))
        })
        .prop_map(|(seed, mut live)| {
            if !live.iter().any(|l| *l) {
                live[0] = true; // the supervisor never drains the whole ring
            }
            (seed, live)
        })
}

proptest! {
    /// Every id lands on exactly one shard, and that shard is live.
    #[test]
    fn every_id_maps_to_exactly_one_live_shard(
        (seed, live) in ring_strategy(),
        ids in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        for id in ids {
            let target = failover_route(seed, live.len(), &live, id);
            prop_assert!(target < live.len());
            prop_assert!(live[target], "id {id} routed to dead shard {target}");
        }
    }

    /// The route is a pure function of (seed, ring, mask, id): repeated
    /// evaluation never drifts, so two replicas holding the same view of
    /// the ring agree on every request without coordination.
    #[test]
    fn the_mapping_is_stable_across_evaluations(
        (seed, live) in ring_strategy(),
        id in any::<u64>(),
    ) {
        let first = failover_route(seed, live.len(), &live, id);
        for _ in 0..8 {
            prop_assert_eq!(failover_route(seed, live.len(), &live, id), first);
        }
    }

    /// An id whose primary shard is live routes to that primary —
    /// quarantining *other* shards never moves healthy traffic.
    #[test]
    fn healthy_traffic_never_moves(
        (seed, live) in ring_strategy(),
        ids in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        for id in ids {
            let primary = shard_route(seed, live.len(), id);
            if live[primary] {
                prop_assert_eq!(failover_route(seed, live.len(), &live, id), primary);
            }
        }
    }

    /// Restoring every shard restores the original mod-hash routing
    /// bit-for-bit: with a fully live ring the failover router *is*
    /// `shard_route`.
    #[test]
    fn a_restored_ring_recovers_the_original_routing(
        seed in any::<u64>(),
        shards in 1usize..=8,
        ids in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        let live = vec![true; shards];
        for id in ids {
            prop_assert_eq!(
                failover_route(seed, shards, &live, id),
                shard_route(seed, shards, id)
            );
        }
    }

    /// Deepening a quarantine only moves ids that were standing on the
    /// newly drained shard: everyone already failed over elsewhere (and
    /// everyone still on a live primary) keeps their assignment. This is
    /// the rendezvous-hashing minimal-disruption guarantee the rebuild
    /// path leans on — un-quarantining replays the same moves in reverse.
    #[test]
    fn deepening_a_quarantine_only_moves_the_drained_shards_ids(
        (seed, mut live) in ring_strategy(),
        extra_live in 0usize..8,
        ids in proptest::collection::vec(any::<u64>(), 1..64),
    ) {
        // Draining below requires a second live shard to fall back to.
        if live.len() < 2 {
            live.push(true);
        }
        if live.iter().filter(|l| **l).count() < 2 {
            let slot = extra_live % live.len();
            let idx = if live[slot] { (slot + 1) % live.len() } else { slot };
            live[idx] = true;
        }
        let drained = live
            .iter()
            .position(|l| *l)
            .expect("ring has a live shard");
        let mut deeper = live.clone();
        deeper[drained] = false;
        for id in ids {
            let before = failover_route(seed, live.len(), &live, id);
            let after = failover_route(seed, live.len(), &deeper, id);
            if before != drained {
                prop_assert_eq!(after, before, "id {} moved off live shard", id);
            } else {
                prop_assert!(deeper[after]);
            }
        }
    }
}
