//! Property-based tests for the observability layer: quantile
//! estimates stay inside the documented bucket error bound, the flight
//! recorder's exemplar retention never loses a failure, and the SLO
//! burn-rate walk is exactly the arithmetic the policy documents.

use fast_bcnn::telemetry::{
    histogram_quantile, Clock, HealthStatus, ManualClock, Recorder, Registry, SloPolicy,
    WindowedRegistry, QUANTILE_WIDTH_RATIO, REQUEST_OUTCOME_METRIC, STANDARD_QUANTILES,
};
use fast_bcnn::{FlightRecord, FlightRecorder};
use proptest::prelude::*;
use std::sync::Arc;

/// The exact same-rank quantile rule the bucket estimate approximates:
/// rank = ceil(q·total) clamped to [1, total], 1-based into the sorted
/// population.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let total = sorted.len() as f64;
    let rank = (q * total).ceil().clamp(1.0, total) as usize;
    sorted[rank - 1]
}

/// A baseline successful record; each property mutates the fields it
/// exercises.
fn base_record(id: u64) -> FlightRecord {
    FlightRecord {
        id,
        seed: 0,
        class: "prop".to_string(),
        version: 0,
        shard: 0,
        canary: false,
        rolled_back: false,
        primary_shard: 0,
        failed_over: false,
        rebuild_probe: false,
        latency_ns: 0,
        queue_wait_ns: 0,
        backoff_ns: 0,
        attempts: 1,
        requeues: 0,
        forced_exact: false,
        probe: false,
        shed: false,
        retry_exhausted: false,
        expired: false,
        degraded_to: None,
        cache_hit: false,
        ok: true,
        reason: "ok".to_string(),
        mode: "healthy".to_string(),
        requested_samples: 1,
        used_samples: 1,
        fallback_samples: 0,
        lost_samples: 0,
        skip_total: 0,
        skip_skipped: 0,
    }
}

proptest! {
    /// For any latency population, every standard quantile's
    /// bucket-edge estimate is within the documented error bound of the
    /// exact sorted quantile: never below it, and at most one bucket
    /// width (×`QUANTILE_WIDTH_RATIO`) above — clamping to the
    /// histogram's edge bounds for populations outside them.
    #[test]
    fn quantile_estimates_stay_inside_the_bucket_bound(
        values in proptest::collection::vec(1u64..8_000_000_000, 1..120),
    ) {
        let registry = Registry::new();
        for &v in &values {
            registry.histogram_record("lat", &[], v as f64);
        }
        let h = registry
            .histograms()
            .into_iter()
            .find(|h| h.name == "lat")
            .expect("recorded histogram");
        prop_assert_eq!(h.count, values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        let min_bound = h.bounds.first().copied().expect("bucketed histogram");
        let max_bound = h.bounds.last().copied().expect("bucketed histogram");
        for &(name, q) in STANDARD_QUANTILES {
            let estimate =
                histogram_quantile(&h.bounds, &h.counts, q).expect("non-empty histogram");
            let exact = exact_quantile(&sorted, q) as f64;
            if exact > max_bound {
                // Overflow rank: the estimate clamps to the top bound.
                prop_assert_eq!(estimate, max_bound, "{} overflow clamp", name);
            } else {
                prop_assert!(
                    estimate >= exact,
                    "{}: estimate {} below exact {}",
                    name, estimate, exact
                );
                prop_assert!(
                    estimate <= (exact * QUANTILE_WIDTH_RATIO).max(min_bound),
                    "{}: estimate {} beyond x{} of exact {}",
                    name, estimate, QUANTILE_WIDTH_RATIO, exact
                );
            }
        }
    }

    /// Whatever the traffic mix and however small the ring, eviction
    /// only ever forgets *successful* records: every failure stays
    /// replayable (ring or pinned exemplar), the worst-latency record
    /// survives, and the first of equal-latency maxima keeps the pin.
    #[test]
    fn ring_eviction_never_drops_a_failure_or_the_worst(
        outcomes in proptest::collection::vec((any::<bool>(), 0u64..1_000_000), 1..200),
        capacity in 1usize..8,
    ) {
        let recorder = FlightRecorder::new(capacity);
        let mut failed_ids = Vec::new();
        let mut worst: Option<(u64, u64)> = None;
        for (i, &(ok, latency_ns)) in outcomes.iter().enumerate() {
            let id = i as u64;
            let mut record = base_record(id);
            record.ok = ok;
            record.latency_ns = latency_ns;
            record.reason = if ok { "ok" } else { "numeric" }.to_string();
            if !ok {
                failed_ids.push(id);
            }
            // Strictly-greater comparison keeps the first of equal maxima.
            if worst.is_none_or(|(_, w)| latency_ns > w) {
                worst = Some((id, latency_ns));
            }
            recorder.record(record);
        }
        let log = recorder.snapshot("prop");
        prop_assert_eq!(log.recorded, outcomes.len() as u64);
        prop_assert_eq!(log.dropped_failed, 0);
        prop_assert!(log.records.len() <= capacity, "ring exceeded its bound");

        // failed() = evicted exemplars (older) then in-ring failures:
        // chronological, and exactly the failures we fed in.
        let replayed: Vec<u64> = log.failed().iter().map(|r| r.id).collect();
        prop_assert_eq!(replayed, failed_ids.clone());

        prop_assert_eq!(
            log.worst_latency.as_ref().map(|r| (r.id, r.latency_ns)),
            worst
        );

        // Eviction accounting: everything not in the ring is either a
        // retained failure or a counted evicted success.
        let ring_ok = log.records.iter().filter(|r| r.ok).count() as u64;
        let total_ok = (outcomes.len() - failed_ids.len()) as u64;
        prop_assert_eq!(log.evicted_ok, total_ok - ring_ok);
    }

    /// Feeding a synthetic per-window (ok, failed) stream through the
    /// windowed registry under an injected clock, the policy verdict
    /// after every window is exactly the documented burn arithmetic —
    /// including the Ok → Warning → Critical escalations and the decay
    /// back to Ok as a burst ages out of the spans.
    #[test]
    fn burn_rate_walk_matches_the_documented_arithmetic(
        stream in proptest::collection::vec((0u64..20, 0u64..6), 1..24),
        budget_permille in 5u64..200,
    ) {
        let clock = Arc::new(ManualClock::new());
        let width = 1_000u64;
        let windowed = WindowedRegistry::new(
            width,
            stream.len() + 4,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let policy = SloPolicy {
            error_budget: budget_permille as f64 / 1000.0,
            classes: Some(vec!["prop".to_string()]),
            ..SloPolicy::default()
        };

        for (w, &(ok, failed)) in stream.iter().enumerate() {
            clock.set(w as u64 * width);
            if ok > 0 {
                windowed.counter_add(
                    REQUEST_OUTCOME_METRIC,
                    &[("class", "prop"), ("result", "ok")],
                    ok,
                );
            }
            if failed > 0 {
                windowed.counter_add(
                    REQUEST_OUTCOME_METRIC,
                    &[("class", "prop"), ("result", "failed")],
                    failed,
                );
            }
            let got = policy.evaluate(&windowed).status;

            // Independent oracle: fold the stream prefix by hand. A
            // span of n windows covers [w-n+1, w] inclusive.
            let span = |n: usize| {
                let lo = (w + 1).saturating_sub(n);
                stream[lo..=w]
                    .iter()
                    .fold((0u64, 0u64), |(f, t), &(o, x)| (f + x, t + o + x))
            };
            let burn = |failed: u64, total: u64| {
                if total == 0 {
                    0.0
                } else {
                    (failed as f64 / total as f64) / policy.error_budget
                }
            };
            let (failed_fast, total_fast) = span(policy.fast_windows);
            let (failed_slow, total_slow) = span(policy.slow_windows);
            let expected = if total_fast >= policy.min_requests
                && burn(failed_fast, total_fast) >= policy.critical_burn
            {
                HealthStatus::Critical
            } else if total_slow >= policy.min_requests
                && burn(failed_slow, total_slow) >= policy.warning_burn
            {
                HealthStatus::Warning
            } else {
                HealthStatus::Ok
            };
            prop_assert_eq!(
                got,
                expected,
                "window {} of stream {:?} (budget {})",
                w,
                stream,
                policy.error_budget
            );
        }
    }
}
