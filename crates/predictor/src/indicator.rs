use fbcnn_nn::{Conv2d, Network, NodeId};
use fbcnn_tensor::{BitMask, Shape};
use serde::{Deserialize, Serialize};

/// Per-kernel weight-polarity indicator bits.
///
/// For every convolution node and every output channel `m`, a 1-bit map
/// over `(n, i, j)` with bit `1` where the weight is negative (or zero —
/// the paper's `GetIndex(w ≤ 0)`, Algorithm 1 line 4). In hardware these
/// are the compressed kernel images held in the prediction unit's
/// indicator mini-buffers.
///
/// # Examples
///
/// ```
/// use fbcnn_nn::models;
/// use fbcnn_predictor::PolarityIndicators;
///
/// let net = models::lenet5(1);
/// let ind = PolarityIndicators::from_network(&net);
/// let conv1 = net.conv_nodes()[0];
/// assert_eq!(ind.kernel(conv1, 0).shape().len(), 25); // 1x5x5
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolarityIndicators {
    /// Indexed by node id; `None` for non-conv nodes.
    per_node: Vec<Option<Vec<BitMask>>>,
}

impl PolarityIndicators {
    /// Profiles every convolution kernel of `net`.
    pub fn from_network(net: &Network) -> Self {
        let mut per_node: Vec<Option<Vec<BitMask>>> = vec![None; net.len()];
        for &node in &net.conv_nodes() {
            let conv = net
                .node(node)
                .layer()
                .and_then(|l| l.as_conv())
                .expect("conv node has a conv layer");
            per_node[node.0] = Some(Self::profile_conv(conv));
        }
        Self { per_node }
    }

    /// Profiles a single convolution: one indicator mask per kernel.
    pub fn profile_conv(conv: &Conv2d) -> Vec<BitMask> {
        let k = conv.kernel_size();
        let shape = Shape::new(conv.in_channels(), k, k);
        (0..conv.out_channels())
            .map(|m| {
                BitMask::from_fn(shape, |idx| {
                    let (n, i, j) = shape.unravel(idx);
                    conv.weight(m, n, i, j) <= 0.0
                })
            })
            .collect()
    }

    /// The indicator mask for kernel `m` of a convolution node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a convolution node or `m` is out of range.
    pub fn kernel(&self, node: NodeId, m: usize) -> &BitMask {
        &self.per_node[node.0]
            .as_ref()
            .expect("indicators exist only for conv nodes")[m]
    }

    /// All kernels of a convolution node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a convolution node.
    pub fn kernels(&self, node: NodeId) -> &[BitMask] {
        self.per_node[node.0]
            .as_ref()
            .expect("indicators exist only for conv nodes")
    }

    /// Whether a node has indicators (i.e. is a convolution node).
    pub fn covers(&self, node: NodeId) -> bool {
        self.per_node.get(node.0).is_some_and(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_nn::{NetworkBuilder, PoolKind};
    use fbcnn_tensor::Shape as TShape;

    #[test]
    fn indicator_bits_match_weight_signs() {
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, true);
        // Alternate positive/negative weights deterministically.
        for (i, w) in conv.weights_mut().iter_mut().enumerate() {
            *w = if i % 3 == 0 { -0.5 } else { 0.25 };
        }
        let kernels = PolarityIndicators::profile_conv(&conv);
        assert_eq!(kernels.len(), 2);
        let shape = TShape::new(2, 3, 3);
        for (m, mask) in kernels.iter().enumerate() {
            for idx in 0..shape.len() {
                let (n, i, j) = shape.unravel(idx);
                assert_eq!(mask.get(idx), conv.weight(m, n, i, j) <= 0.0);
            }
        }
    }

    #[test]
    fn zero_weights_count_as_negative() {
        // Algorithm 1 profiles w <= 0 into Idx_n.
        let conv = Conv2d::new(1, 1, 1, 1, 0, false); // all-zero weights
        let kernels = PolarityIndicators::profile_conv(&conv);
        assert_eq!(kernels[0].count_ones(), 1);
    }

    #[test]
    fn network_coverage_is_conv_only() {
        let mut b = NetworkBuilder::new(TShape::new(1, 8, 8));
        let x = b.input();
        let c = b.layer(x, Conv2d::new(1, 4, 3, 1, 1, true), "c").unwrap();
        let p = b
            .layer(c, fbcnn_nn::Pool2d::new(PoolKind::Max, 2, 2), "p")
            .unwrap();
        let _ = p;
        let net = b.build().unwrap();
        let ind = PolarityIndicators::from_network(&net);
        assert!(ind.covers(NodeId(1)));
        assert!(!ind.covers(NodeId(0)));
        assert!(!ind.covers(NodeId(2)));
        assert_eq!(ind.kernels(NodeId(1)).len(), 4);
    }
}
