use crate::counting::{count_dropped_nw_inputs, input_drop_mask};
use crate::PolarityIndicators;
use fbcnn_bayes::BayesianNetwork;
use fbcnn_nn::{Network, NodeId};
use fbcnn_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A structural defect found while validating a [`ThresholdSet`] against
/// a network — the typed form of the index panics a poisoned or
/// truncated set would otherwise cause inside the skip-map builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThresholdError {
    /// The set addresses a node id past the end of the network.
    UnknownNode {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the network.
        network_len: usize,
    },
    /// The set carries thresholds for a node that is not a convolution.
    NotAConvNode {
        /// The offending node id.
        node: usize,
    },
    /// A node's threshold vector does not match its kernel count.
    KernelCountMismatch {
        /// The offending node id.
        node: usize,
        /// The conv node's output-channel count.
        expected: usize,
        /// The threshold vector's length.
        actual: usize,
    },
}

impl fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThresholdError::UnknownNode { node, network_len } => write!(
                f,
                "thresholds address node {node}, but the network has {network_len} nodes"
            ),
            ThresholdError::NotAConvNode { node } => {
                write!(f, "thresholds attached to non-conv node {node}")
            }
            ThresholdError::KernelCountMismatch {
                node,
                expected,
                actual,
            } => write!(
                f,
                "node {node} has {expected} kernels but {actual} thresholds"
            ),
        }
    }
}

impl std::error::Error for ThresholdError {}

/// Per-kernel prediction thresholds `α` (Algorithm 1's output).
///
/// A zero neuron of kernel `m` in layer `l` is predicted *unaffected*
/// when its dropped-nw-input count satisfies `N_d < α(l, m)` (Eq. 5).
/// Thresholds exist for every convolution node whose input dropout mask
/// is resolvable (i.e. every BCNN layer past the first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThresholdSet {
    per_node: Vec<Option<Vec<u16>>>,
}

impl ThresholdSet {
    /// A set with no thresholds (no neuron is ever predicted).
    pub fn never_predict(n_nodes: usize) -> Self {
        Self {
            per_node: vec![None; n_nodes],
        }
    }

    /// Installs the kernel thresholds for a node.
    pub fn insert(&mut self, node: NodeId, thresholds: Vec<u16>) {
        self.per_node[node.0] = Some(thresholds);
    }

    /// The thresholds of a node, if it has any.
    pub fn get(&self, node: NodeId) -> Option<&[u16]> {
        self.per_node.get(node.0).and_then(|v| v.as_deref())
    }

    /// The threshold for kernel `m` of `node`, or `0` (never predict) if
    /// the node carries no thresholds.
    pub fn kernel(&self, node: NodeId, m: usize) -> u16 {
        self.get(node).map_or(0, |t| t[m])
    }

    /// Nodes that carry thresholds.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.per_node
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|_| NodeId(i)))
    }

    /// Validates the set against a network: every threshold vector must
    /// belong to a convolution node and carry exactly one entry per
    /// kernel.
    ///
    /// A set that passes is structurally safe to use in
    /// [`crate::build_skip_maps`] — threshold *values* are not judged
    /// (any value is a legal, if unwise, operating point; value-level
    /// poisoning is caught behaviorally by the engine's canary check).
    ///
    /// # Errors
    ///
    /// Returns the first [`ThresholdError`] found.
    pub fn validate(&self, net: &Network) -> Result<(), ThresholdError> {
        for (node_idx, thresholds) in self.per_node.iter().enumerate() {
            let Some(thresholds) = thresholds else {
                continue;
            };
            if node_idx >= net.len() {
                return Err(ThresholdError::UnknownNode {
                    node: node_idx,
                    network_len: net.len(),
                });
            }
            let node = NodeId(node_idx);
            let Some(conv) = net.node(node).layer().and_then(|l| l.as_conv()) else {
                return Err(ThresholdError::NotAConvNode { node: node_idx });
            };
            if thresholds.len() != conv.out_channels() {
                return Err(ThresholdError::KernelCountMismatch {
                    node: node_idx,
                    expected: conv.out_channels(),
                    actual: thresholds.len(),
                });
            }
        }
        Ok(())
    }

    /// Mean threshold over all kernels (diagnostic).
    pub fn mean(&self) -> f64 {
        let mut sum = 0u64;
        let mut n = 0u64;
        for t in self.per_node.iter().flatten() {
            sum += t.iter().map(|&v| v as u64).sum::<u64>();
            n += t.len() as u64;
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }
}

/// Algorithm 1: per-kernel threshold optimization.
///
/// The optimizer runs `samples` dropout inferences on an optimization
/// input, records for every pre-inference zero neuron its dropped-nw-input
/// count `N_d` and whether it was actually *affected* (non-zero before its
/// own dropout mask), then — exactly as Algorithm 1's loop — starts each
/// kernel's `α` at `init_threshold` and decreases it by `step` until the
/// *confidence level* is met.
///
/// **Confidence-level semantics.** We follow the paper's literal
/// definition (§IV-A2): `p_cf` is "the percentage of correctly predicted
/// neurons *over all neurons in the feature map*" — a kernel's threshold
/// is lowered until the mispredicted (truly affected) neurons fall below
/// `1 − p_cf` of its feature-map slots. Precision/recall over the
/// predicted subset are additionally reported by
/// [`crate::evaluate_predictions`]. Because our synthetic-weight
/// substitution yields somewhat higher affected rates than trained
/// checkpoints, the sweep's active region sits at higher `p_cf` than the
/// paper's 60–90 % axis; `EXPERIMENTS.md` records both.
///
/// # Examples
///
/// ```
/// use fbcnn_bayes::BayesianNetwork;
/// use fbcnn_nn::models;
/// use fbcnn_predictor::ThresholdOptimizer;
/// use fbcnn_tensor::Tensor;
///
/// let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
/// let input = Tensor::full(bnet.network().input_shape(), 0.4);
/// let set = ThresholdOptimizer::default().optimize(&bnet, &input, 5);
/// assert!(set.nodes().count() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThresholdOptimizer {
    /// Calibration sample count `T`.
    pub samples: usize,
    /// Required confidence level `p_cf` (fraction of correctly predicted
    /// neurons over the feature map).
    pub confidence: f64,
    /// Initial threshold `Th` (Algorithm 1 line 9).
    pub init_threshold: u16,
    /// Adjustment step `Δs` (line 19).
    pub step: u16,
    /// Relative tolerance below which a flipped zero neuron still counts
    /// as unaffected during calibration.
    ///
    /// A zero neuron whose dropout value rises only marginally (relative
    /// to the layer's mean positive activation) moves little signal when
    /// forced back to zero. Counting such small flips as prediction
    /// errors makes Algorithm 1 collapse thresholds for kernels whose
    /// pre-activations are dense near zero — our synthetic weights are
    /// denser there than trained checkpoints, whose zero neurons are
    /// decisively negative (the statistical root of the paper's >90 %
    /// unaffected share). The tolerance compensates for that substitution
    /// artifact *in calibration only*: the end-to-end accuracy
    /// experiments still score the exact outputs, so whatever error the
    /// tolerance admits shows up there, undiscounted.
    pub affected_tolerance: f32,
}

impl Default for ThresholdOptimizer {
    fn default() -> Self {
        Self {
            samples: 8,
            confidence: 0.68, // the paper's chosen operating point
            init_threshold: 1024,
            step: 1,
            affected_tolerance: 0.25,
        }
    }
}

impl ThresholdOptimizer {
    /// Creates an optimizer targeting confidence `p_cf` with the default
    /// calibration budget.
    pub fn with_confidence(confidence: f64) -> Self {
        Self {
            confidence,
            ..Self::default()
        }
    }

    /// Runs Algorithm 1 on one optimization input.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0` or `confidence` is outside `(0, 1]`.
    pub fn optimize(&self, bnet: &BayesianNetwork, input: &Tensor, seed: u64) -> ThresholdSet {
        self.optimize_batch(bnet, std::slice::from_ref(input), seed)
    }

    /// Runs Algorithm 1 over an optimization dataset (the paper's `D`).
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`, `inputs` is empty, or `confidence` is
    /// outside `(0, 1]`.
    pub fn optimize_batch(
        &self,
        bnet: &BayesianNetwork,
        inputs: &[Tensor],
        seed: u64,
    ) -> ThresholdSet {
        assert!(self.samples > 0, "calibration needs at least one sample");
        assert!(!inputs.is_empty(), "optimization dataset is empty");
        assert!(
            self.confidence > 0.0 && self.confidence <= 1.0,
            "confidence level {} out of (0, 1]",
            self.confidence
        );
        let net = bnet.network();
        let indicators = PolarityIndicators::from_network(net);

        // Per (node, kernel): observations of (N_d, affected) over every
        // pre-inference zero neuron not dropped by its own mask, plus the
        // total feature-map slots examined (the denominator of the
        // paper's confidence level).
        let mut observations: Vec<Option<Vec<KernelObs>>> = vec![None; net.len()];

        for (input_idx, input) in inputs.iter().enumerate() {
            // Preparation (Algorithm 1 lines 1-5): pre-inference zero
            // locations and kernel polarity profiles.
            let pre = bnet.forward_deterministic(input);
            let zero_masks: Vec<_> = net
                .conv_nodes()
                .iter()
                .map(|&id| (id, pre.activations[id.0].zero_mask()))
                .collect();

            for t in 0..self.samples {
                let mask_seed = seed ^ (input_idx as u64).wrapping_mul(0x0000_0100_0000_01B3);
                let masks = bnet.generate_masks(mask_seed, t);
                let (_, pre_mask_acts) = bnet.forward_sample_recording(input, &masks);
                for (node, zero_mask) in &zero_masks {
                    let Some(input_mask) = input_drop_mask(net, &masks, *node) else {
                        continue;
                    };
                    let conv = net
                        .node(*node)
                        .layer()
                        .and_then(|l| l.as_conv())
                        .expect("conv node");
                    let counts =
                        count_dropped_nw_inputs(conv, indicators.kernels(*node), &input_mask);
                    let own_mask = masks.get(*node).expect("conv carries dropout");
                    let truth = pre_mask_acts[node.0]
                        .as_ref()
                        .expect("recording run stores pre-mask conv outputs");
                    let shape = truth.shape();
                    // Activation scale for the micro-flip tolerance.
                    let mut pos_sum = 0.0f64;
                    let mut pos_n = 0u64;
                    for &v in truth.iter() {
                        if v > 0.0 {
                            pos_sum += v as f64;
                            pos_n += 1;
                        }
                    }
                    let tol = if pos_n > 0 {
                        self.affected_tolerance * (pos_sum / pos_n as f64) as f32
                    } else {
                        0.0
                    };
                    let slot = observations[node.0]
                        .get_or_insert_with(|| vec![KernelObs::default(); conv.out_channels()]);
                    let plane = shape.plane() as u64;
                    for kernel in slot.iter_mut() {
                        kernel.slots += plane;
                    }
                    for i in zero_mask.iter_set() {
                        if own_mask.get(i) {
                            // Dropped by its own mask: zero regardless,
                            // prediction outcome is immaterial.
                            continue;
                        }
                        let (m, _, _) = shape.unravel(i);
                        let affected = truth.at(i) > tol;
                        slot[m].obs.push((counts.at_linear(i), affected));
                    }
                }
            }
        }

        // Optimization (lines 7-23): per-kernel downward scan.
        let mut set = ThresholdSet::never_predict(net.len());
        for (node_idx, obs) in observations.into_iter().enumerate() {
            let Some(kernels) = obs else { continue };
            let thresholds = kernels
                .into_iter()
                .map(|samples| self.tune_kernel(samples))
                .collect();
            set.insert(NodeId(node_idx), thresholds);
        }
        set
    }

    /// The Algorithm 1 inner loop for one kernel: start at `Th`, decrease
    /// by `Δs` until the fraction of correctly predicted neurons over the
    /// whole feature map reaches `p_cf` (the paper's EvaluatePredict).
    fn tune_kernel(&self, kernel: KernelObs) -> u16 {
        let KernelObs { mut obs, slots } = kernel;
        if obs.is_empty() || slots == 0 {
            // Nothing observed: any threshold is vacuously confident; keep
            // the permissive initial value.
            return self.init_threshold;
        }
        obs.sort_unstable_by_key(|&(nd, _)| nd);
        // Prefix sums over the sorted N_d values let every candidate α be
        // evaluated in O(log n): predictions at α are exactly the
        // observations with N_d < α, and only affected predictions make a
        // neuron of the feature map incorrect.
        let n = obs.len();
        let mut affected_prefix = Vec::with_capacity(n + 1);
        affected_prefix.push(0u32);
        for &(_, affected) in &obs {
            affected_prefix
                .push(affected_prefix.last().expect("seeded with 0") + u32::from(affected));
        }

        let mut alpha = self.init_threshold;
        loop {
            let predicted = obs.partition_point(|&(nd, _)| nd < alpha);
            let wrong = affected_prefix[predicted];
            let correctness = 1.0 - wrong as f64 / slots as f64;
            if correctness >= self.confidence {
                return alpha;
            }
            if alpha <= self.step {
                return 0;
            }
            alpha -= self.step;
        }
    }
}

/// Per-kernel calibration evidence: `(N_d, affected)` observations over
/// zero neurons, plus the total feature-map slots examined.
#[derive(Debug, Clone, Default)]
struct KernelObs {
    obs: Vec<(u16, bool)>,
    slots: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fbcnn_nn::models;

    fn setup() -> (BayesianNetwork, Tensor) {
        let bnet = BayesianNetwork::new(models::lenet5(7), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            (((r * 13 + c * 7) % 17) as f32 / 17.0).powi(2)
        });
        (bnet, input)
    }

    #[test]
    fn thresholds_cover_layers_past_the_first() {
        let (bnet, input) = setup();
        let set = ThresholdOptimizer::default().optimize(&bnet, &input, 1);
        let convs = bnet.network().conv_nodes();
        assert_eq!(set.get(convs[0]), None, "layer 1 has no input dropout");
        assert!(set.get(convs[1]).is_some());
        assert!(set.get(convs[2]).is_some());
        assert_eq!(set.get(convs[1]).unwrap().len(), 16);
    }

    #[test]
    fn higher_confidence_never_raises_thresholds() {
        let (bnet, input) = setup();
        let loose = ThresholdOptimizer::with_confidence(0.60).optimize(&bnet, &input, 2);
        let strict = ThresholdOptimizer::with_confidence(0.95).optimize(&bnet, &input, 2);
        for node in loose.nodes() {
            let l = loose.get(node).unwrap();
            let s = strict.get(node).unwrap();
            for (a, b) in l.iter().zip(s) {
                assert!(b <= a, "strict threshold {b} exceeds loose {a}");
            }
        }
    }

    #[test]
    fn tune_kernel_respects_the_confidence_boundary() {
        let opt = ThresholdOptimizer {
            samples: 1,
            confidence: 0.75,
            init_threshold: 10,
            step: 1,
            ..ThresholdOptimizer::default()
        };
        // A 4-slot feature map whose zero neurons carry N_d 0..3; the
        // N_d = 3 neuron is affected.
        let kernel = KernelObs {
            obs: vec![(0u16, false), (1, false), (2, false), (3, true)],
            slots: 4,
        };
        // At α=10 the one wrong neuron costs 25% of the map: 75% correct
        // meets p_cf = 0.75.
        assert_eq!(opt.tune_kernel(kernel.clone()), 10);
        // A stricter requirement must cut the affected neuron out.
        let strict = ThresholdOptimizer {
            confidence: 0.9,
            ..opt
        };
        let alpha = strict.tune_kernel(kernel);
        assert!(
            alpha <= 3,
            "alpha {alpha} still includes the affected neuron"
        );
        assert!(alpha >= 1, "alpha {alpha} needlessly strict");
    }

    #[test]
    fn larger_feature_maps_absorb_more_errors() {
        // The same observations against a bigger map pass a stricter
        // confidence (the paper's denominator is the whole feature map).
        let opt = ThresholdOptimizer {
            confidence: 0.9,
            init_threshold: 10,
            ..ThresholdOptimizer::default()
        };
        let small = KernelObs {
            obs: vec![(0, false), (3, true)],
            slots: 4,
        };
        let large = KernelObs {
            obs: vec![(0, false), (3, true)],
            slots: 100,
        };
        assert!(opt.tune_kernel(small) < 4);
        assert_eq!(opt.tune_kernel(large), 10);
    }

    #[test]
    fn empty_observations_keep_initial_threshold() {
        let opt = ThresholdOptimizer::default();
        assert_eq!(opt.tune_kernel(KernelObs::default()), opt.init_threshold);
    }

    #[test]
    fn never_predict_set_returns_zero() {
        let set = ThresholdSet::never_predict(4);
        assert_eq!(set.kernel(NodeId(2), 0), 0);
        assert_eq!(set.nodes().count(), 0);
        assert_eq!(set.mean(), 0.0);
    }

    #[test]
    fn validate_accepts_a_calibrated_set() {
        let (bnet, input) = setup();
        let set = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        assert_eq!(set.validate(bnet.network()), Ok(()));
        assert_eq!(
            ThresholdSet::never_predict(bnet.network().len()).validate(bnet.network()),
            Ok(())
        );
    }

    #[test]
    fn validate_rejects_truncated_threshold_vectors() {
        let (bnet, input) = setup();
        let mut set = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        let node = bnet.network().conv_nodes()[1];
        let truncated = set.get(node).unwrap()[..3].to_vec();
        set.insert(node, truncated);
        assert_eq!(
            set.validate(bnet.network()),
            Err(ThresholdError::KernelCountMismatch {
                node: node.0,
                expected: 16,
                actual: 3,
            })
        );
    }

    #[test]
    fn validate_rejects_misplaced_and_out_of_range_nodes() {
        let (bnet, _) = setup();
        let net = bnet.network();
        // Thresholds attached to the input node (not a convolution).
        let mut misplaced = ThresholdSet::never_predict(net.len());
        misplaced.insert(NodeId(0), vec![4; 6]);
        assert_eq!(
            misplaced.validate(net),
            Err(ThresholdError::NotAConvNode { node: 0 })
        );
        // A set sized for a larger network addresses a phantom node.
        let mut phantom = ThresholdSet::never_predict(net.len() + 2);
        phantom.insert(NodeId(net.len() + 1), vec![4; 6]);
        assert_eq!(
            phantom.validate(net),
            Err(ThresholdError::UnknownNode {
                node: net.len() + 1,
                network_len: net.len(),
            })
        );
    }

    #[test]
    fn optimize_is_deterministic() {
        let (bnet, input) = setup();
        let a = ThresholdOptimizer::default().optimize(&bnet, &input, 5);
        let b = ThresholdOptimizer::default().optimize(&bnet, &input, 5);
        assert_eq!(a, b);
    }
}
