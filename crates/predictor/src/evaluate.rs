use crate::{PredictiveInference, ThresholdSet};
use fbcnn_bayes::{BayesianNetwork, McDropout};
use fbcnn_tensor::{stats, Tensor};
use serde::{Deserialize, Serialize};

/// Quality report comparing exact MC-dropout inference against the
/// skipping inference under *common random masks* — the paper's
/// `EvaluatePredict` generalized over a whole MC run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Samples evaluated (`T`).
    pub samples: usize,
    /// Precision of the unaffected prediction: of all predicted-unaffected
    /// neurons, the fraction that were truly zero (before their own mask).
    pub precision: f64,
    /// Recall: of all truly-unaffected zero neurons, the fraction that was
    /// predicted (and therefore skipped).
    pub recall: f64,
    /// Fraction of *all* neurons whose final value matches the exact run —
    /// the whole-feature-map reading of `EvaluatePredict`.
    pub neuron_agreement: f64,
    /// Overall skip rate (dropped ∪ predicted) across conv layers.
    pub skip_rate: f64,
    /// Whether the final averaged prediction picks the same class.
    pub class_agreement: bool,
    /// Mean absolute difference between the exact and skipping predictive
    /// mean distributions.
    pub mean_abs_prob_diff: f64,
}

/// Runs `t` samples both exactly and with skipping (same masks) and
/// reports prediction quality.
///
/// # Panics
///
/// Panics if `t == 0`.
pub fn evaluate_predictions(
    bnet: &BayesianNetwork,
    input: &Tensor,
    thresholds: &ThresholdSet,
    t: usize,
    seed: u64,
) -> EvalReport {
    assert!(t > 0, "need at least one sample");
    let engine = PredictiveInference::new(bnet, input, thresholds.clone());
    let net = bnet.network();

    let mut predicted_total = 0u64;
    let mut predicted_correct = 0u64;
    let mut unaffected_total = 0u64;
    let mut unaffected_caught = 0u64;
    let mut neurons_total = 0u64;
    let mut neurons_agree = 0u64;
    let mut skip_total = 0u64;

    let mut exact_probs = Vec::with_capacity(t);
    let mut skip_probs = Vec::with_capacity(t);

    for s in 0..t {
        let masks = bnet.generate_masks(seed, s);
        let (exact, pre_mask_acts) = bnet.forward_sample_recording(input, &masks);
        let skipped = engine.run_sample(&masks);
        for &node in &net.conv_nodes() {
            let map = skipped.skip_maps[node.0].as_ref().expect("skip map");
            let exact_act = &exact.activations[node.0];
            let skip_act = &skipped.activations[node.0];
            let own_mask = masks.get(node).expect("conv mask");
            let zeros = engine.zero_masks()[node.0].as_ref().expect("zero mask");
            let truth = pre_mask_acts[node.0].as_ref().expect("pre-mask record");
            for i in 0..exact_act.len() {
                neurons_total += 1;
                if exact_act.at(i) == skip_act.at(i) {
                    neurons_agree += 1;
                }
                if map.is_skipped(i) {
                    skip_total += 1;
                }
                // Prediction quality is defined over pre-inference zero
                // neurons not dropped by their own mask.
                if zeros.get(i) && !own_mask.get(i) {
                    let truly_unaffected = truth.at(i) == 0.0;
                    if truly_unaffected {
                        unaffected_total += 1;
                        if map.predicted.get(i) {
                            unaffected_caught += 1;
                        }
                    }
                    if map.predicted.get(i) {
                        predicted_total += 1;
                        if truly_unaffected {
                            predicted_correct += 1;
                        }
                    }
                }
            }
        }
        exact_probs.push(stats::softmax(exact.logits()));
        skip_probs.push(stats::softmax(skipped.logits()));
    }

    let exact_pred = McDropout::summarize(exact_probs);
    let skip_pred = McDropout::summarize(skip_probs);
    let mean_abs_prob_diff = exact_pred
        .mean
        .iter()
        .zip(&skip_pred.mean)
        .map(|(a, b)| (a - b).abs() as f64)
        .sum::<f64>()
        / exact_pred.mean.len() as f64;

    EvalReport {
        samples: t,
        precision: ratio(predicted_correct, predicted_total),
        recall: ratio(unaffected_caught, unaffected_total),
        neuron_agreement: ratio(neurons_agree, neurons_total),
        skip_rate: ratio(skip_total, neurons_total),
        class_agreement: exact_pred.class == skip_pred.class,
        mean_abs_prob_diff,
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThresholdOptimizer;
    use fbcnn_nn::models;

    fn setup() -> (BayesianNetwork, Tensor) {
        let bnet = BayesianNetwork::new(models::lenet5(6), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r * 11 + c * 5) % 19) as f32 / 19.0
        });
        (bnet, input)
    }

    #[test]
    fn never_predict_gives_perfect_agreement() {
        let (bnet, input) = setup();
        let thresholds = ThresholdSet::never_predict(bnet.network().len());
        let report = evaluate_predictions(&bnet, &input, &thresholds, 3, 1);
        assert_eq!(report.neuron_agreement, 1.0);
        assert_eq!(report.precision, 1.0); // vacuous
        assert_eq!(report.recall, 0.0);
        assert!(report.class_agreement);
        assert!(report.mean_abs_prob_diff < 1e-9);
    }

    #[test]
    fn optimizer_meets_its_confidence_target() {
        let (bnet, input) = setup();
        let opt = ThresholdOptimizer::default();
        let thresholds = opt.optimize(&bnet, &input, 5);
        // Evaluate on the same seed the optimizer calibrated with. The
        // paper's confidence level bounds the fraction of incorrectly
        // predicted neurons over the feature map, i.e. the whole-map
        // agreement must clear p_cf (a small slack absorbs the
        // calibration tolerance and cross-layer error compounding).
        let report = evaluate_predictions(&bnet, &input, &thresholds, opt.samples, 5);
        assert!(
            report.neuron_agreement >= opt.confidence - 0.05,
            "agreement {} below confidence target {}",
            report.neuron_agreement,
            opt.confidence
        );
        assert!(report.recall > 0.1, "recall {} too low", report.recall);
    }

    #[test]
    fn stricter_confidence_trades_recall_for_precision() {
        let (bnet, input) = setup();
        let loose = ThresholdOptimizer::with_confidence(0.55).optimize(&bnet, &input, 5);
        let strict = ThresholdOptimizer::with_confidence(0.97).optimize(&bnet, &input, 5);
        let r_loose = evaluate_predictions(&bnet, &input, &loose, 4, 7);
        let r_strict = evaluate_predictions(&bnet, &input, &strict, 4, 7);
        assert!(r_strict.precision >= r_loose.precision - 0.02);
        assert!(r_strict.recall <= r_loose.recall + 0.02);
        assert!(r_strict.skip_rate <= r_loose.skip_rate + 1e-9);
    }

    #[test]
    fn agreement_is_high_at_default_operating_point() {
        let (bnet, input) = setup();
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 5);
        let report = evaluate_predictions(&bnet, &input, &thresholds, 4, 11);
        assert!(
            report.neuron_agreement > 0.9,
            "neuron agreement {} too low",
            report.neuron_agreement
        );
    }
}
