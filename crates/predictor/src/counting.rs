use fbcnn_bayes::mask::{pool_mask, DropoutMasks};
use fbcnn_nn::{Conv2d, Layer, Network, NodeId, Op};
use fbcnn_tensor::{BitMask, Shape};
use serde::{Deserialize, Serialize};

/// The per-neuron count of dropped nw-inputs for one convolution layer —
/// the output of the prediction unit's counting lanes (Fig. 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NdCounts {
    shape: Shape,
    counts: Vec<u16>,
}

impl NdCounts {
    /// The output feature-map shape the counts are defined over.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The count `N_d` for neuron `(m, r, c)`.
    #[inline]
    pub fn at(&self, m: usize, r: usize, c: usize) -> u16 {
        self.counts[self.shape.index(m, r, c)]
    }

    /// The count for a linear neuron index.
    #[inline]
    pub fn at_linear(&self, i: usize) -> u16 {
        self.counts[i]
    }

    /// The raw count buffer in linear layout.
    pub fn as_slice(&self) -> &[u16] {
        &self.counts
    }

    /// The largest count present (drives the paper's 10-bit adder sizing).
    pub fn max(&self) -> u16 {
        self.counts.iter().copied().max().unwrap_or(0)
    }
}

/// Resolves the dropout mask describing which *inputs* of `node` (a
/// convolution) are dropped, walking the graph upstream:
///
/// * a convolution output carries its own dropout mask;
/// * a pooling layer pools the upstream mask with the all-dropped-window
///   rule (the mask pooling unit, §V-B2);
/// * a concat node concatenates its branch masks (branches without
///   dropout contribute all-zero masks);
/// * the network input carries no dropout, so the first layer resolves to
///   `None` — which is exactly why the paper gives layer 1 the shortcut
///   path instead of a prediction path.
pub fn input_drop_mask(net: &Network, masks: &DropoutMasks, node: NodeId) -> Option<BitMask> {
    let upstream = *net.node(node).inputs().first()?;
    resolve(net, masks, upstream)
}

fn resolve(net: &Network, masks: &DropoutMasks, id: NodeId) -> Option<BitMask> {
    if let Some(m) = masks.get(id) {
        return Some(m.clone());
    }
    let node = net.node(id);
    match node.op() {
        Op::Input => None,
        Op::Layer(Layer::Pool(p)) => {
            resolve(net, masks, node.inputs()[0]).map(|m| pool_mask(&m, p))
        }
        // A conv without a mask (non-Bayesian) or a dense layer breaks the
        // dropout chain.
        Op::Layer(_) => None,
        Op::Concat => {
            let resolved: Vec<Option<BitMask>> = node
                .inputs()
                .iter()
                .map(|&i| resolve(net, masks, i))
                .collect();
            if resolved.iter().all(Option::is_none) {
                return None;
            }
            let shape = net.shape(id);
            let mut out = BitMask::zeros(shape);
            let mut ch_offset = 0usize;
            for (branch, &input_id) in resolved.iter().zip(node.inputs()) {
                let branch_shape = net.shape(input_id);
                if let Some(m) = branch {
                    for i in m.iter_set() {
                        let (c, r, col) = branch_shape.unravel(i);
                        out.set_at(c + ch_offset, r, col, true);
                    }
                }
                ch_offset += branch_shape.channels();
            }
            Some(out)
        }
    }
}

/// Counts, for every output neuron of `conv`, how many of its inputs are
/// simultaneously dropped and multiply a non-positive weight — the binary
/// convolution of dropout bits with indicator bits (paper Fig. 9a).
///
/// This is the word-parallel kernel: for each output row it packs every
/// window's mask bits into `u64` lanes laid out like the indicator masks
/// (bit `(n·k + i)·k + j`), then reduces each `(kernel, window)` pair with
/// a word-wide AND + popcount — the software analogue of the prediction
/// unit's AND-gate/counting lanes. No per-call byte unpacking, and the one
/// scratch buffer lives outside the loops.
///
/// Falls back to [`count_dropped_nw_inputs_scalar`] (the bit-exact
/// reference) for kernels wider than 64 columns, where a row no longer
/// fits one word.
///
/// # Panics
///
/// Panics if `input_mask` does not match the convolution's input shape or
/// `indicators` does not hold one mask per output channel.
pub fn count_dropped_nw_inputs(
    conv: &Conv2d,
    indicators: &[BitMask],
    input_mask: &BitMask,
) -> NdCounts {
    let k = conv.kernel_size();
    if k > 64 {
        let counts = count_dropped_nw_inputs_scalar(conv, indicators, input_mask);
        record_nd(&counts);
        return counts;
    }
    assert_eq!(
        indicators.len(),
        conv.out_channels(),
        "one indicator mask per kernel required"
    );
    let in_shape = input_mask.shape();
    assert_eq!(
        in_shape.channels(),
        conv.in_channels(),
        "input mask channel count mismatch"
    );
    let out_shape = conv.output_shape(in_shape);
    let stride = conv.stride();
    let pad = conv.pad() as isize;
    let (in_h, in_w) = (in_shape.height(), in_shape.width());
    let (out_h, out_w) = (out_shape.height(), out_shape.width());
    let kernel_shape = Shape::new(conv.in_channels(), k, k);
    for (m, indicator) in indicators.iter().enumerate() {
        assert_eq!(
            indicator.shape(),
            kernel_shape,
            "indicator shape mismatch for kernel {m}"
        );
    }

    // Words per packed window: one bit per kernel position, same linear
    // layout as the indicator masks, so the reduction is a straight
    // word-lane AND + popcount.
    let wpw = kernel_shape.len().div_ceil(64);
    let in_plane = in_shape.plane();
    let out_plane = out_shape.plane();
    let mut counts = vec![0u16; out_shape.len()];
    let mut windows = vec![0u64; out_w * wpw];
    for r in 0..out_h {
        windows.fill(0);
        for n in 0..conv.in_channels() {
            for i in 0..k {
                let ri = (r * stride + i) as isize - pad;
                if ri < 0 || ri as usize >= in_h {
                    continue;
                }
                let row_base = n * in_plane + ri as usize * in_w;
                let kbit = (n * k + i) * k;
                for (c, win) in windows.chunks_exact_mut(wpw).enumerate() {
                    // Clip the window row ci ∈ [ci0, ci0 + k) to the image.
                    let ci0 = (c * stride) as isize - pad;
                    let lo = ci0.max(0) as usize;
                    let hi = ((ci0 + k as isize).min(in_w as isize)) as usize;
                    if lo >= hi {
                        continue;
                    }
                    let bits = input_mask.load_bits(row_base + lo, hi - lo);
                    let dst = kbit + (lo as isize - ci0) as usize;
                    let (w, b) = (dst / 64, dst % 64);
                    win[w] |= bits << b;
                    if b != 0 && w + 1 < wpw {
                        win[w + 1] |= bits >> (64 - b);
                    }
                }
            }
        }
        for (m, indicator) in indicators.iter().enumerate() {
            let iw = indicator.words();
            let row = &mut counts[m * out_plane + r * out_w..][..out_w];
            for (slot, win) in row.iter_mut().zip(windows.chunks_exact(wpw)) {
                *slot = BitMask::and_popcount(iw, win) as u16;
            }
        }
    }
    let counts = NdCounts {
        shape: out_shape,
        counts,
    };
    record_nd(&counts);
    counts
}

/// Feeds every computed `N_d` into the `predictor_nd` telemetry histogram
/// — the software analogue of tapping the counting lanes' output bus. The
/// conversion only happens while a recorder is installed.
fn record_nd(counts: &NdCounts) {
    if fbcnn_telemetry::enabled() {
        let values: Vec<f64> = counts.counts.iter().map(|&c| f64::from(c)).collect();
        fbcnn_telemetry::histogram_batch("predictor_nd", &[], &values);
    }
}

/// Scalar reference implementation of [`count_dropped_nw_inputs`]: unpacks
/// the mask to bytes and accumulates per kernel position. Retained as the
/// bit-exact baseline for property tests and the `counting` bench's
/// before/after comparison.
///
/// # Panics
///
/// Panics if `input_mask` does not match the convolution's input shape or
/// `indicators` does not hold one mask per output channel.
pub fn count_dropped_nw_inputs_scalar(
    conv: &Conv2d,
    indicators: &[BitMask],
    input_mask: &BitMask,
) -> NdCounts {
    assert_eq!(
        indicators.len(),
        conv.out_channels(),
        "one indicator mask per kernel required"
    );
    let in_shape = input_mask.shape();
    assert_eq!(
        in_shape.channels(),
        conv.in_channels(),
        "input mask channel count mismatch"
    );
    let out_shape = conv.output_shape(in_shape);
    let k = conv.kernel_size();
    let stride = conv.stride();
    let pad = conv.pad() as isize;
    let (in_h, in_w) = (in_shape.height(), in_shape.width());
    let (out_h, out_w) = (out_shape.height(), out_shape.width());
    let kernel_shape = Shape::new(conv.in_channels(), k, k);

    // Unpack the mask once: byte indexing in the hot loop is several
    // times faster than per-bit extraction.
    let mask_bytes: Vec<u8> = (0..in_shape.len())
        .map(|i| u8::from(input_mask.get(i)))
        .collect();

    // Transpose the indicators: for every kernel position (n, i, j), the
    // list of kernels whose weight there is non-positive. This amortizes
    // the row-slice setup across kernels instead of paying it per
    // (kernel, position) pair.
    let mut kernels_at: Vec<Vec<u32>> = vec![Vec::new(); kernel_shape.len()];
    for (m, indicator) in indicators.iter().enumerate() {
        assert_eq!(
            indicator.shape(),
            kernel_shape,
            "indicator shape mismatch for kernel {m}"
        );
        for idx in indicator.iter_set() {
            kernels_at[idx].push(m as u32);
        }
    }

    let out_plane = out_shape.plane();
    let mut counts = vec![0u16; out_shape.len()];
    for (idx, kernels) in kernels_at.iter().enumerate() {
        if kernels.is_empty() {
            continue;
        }
        let (n, i, j) = kernel_shape.unravel(idx);
        let mask_plane = &mask_bytes[n * in_shape.plane()..(n + 1) * in_shape.plane()];
        // Column bounds: ci = c·stride + j − pad ∈ [0, in_w).
        let c_lo = ((pad - j as isize).max(0) as usize).div_ceil(stride);
        let c_hi = if (in_w as isize + pad) <= j as isize {
            0
        } else {
            (((in_w as isize + pad - j as isize - 1) / stride as isize) + 1)
                .clamp(0, out_w as isize) as usize
        }
        .max(c_lo);
        for r in 0..out_h {
            let ri = (r * stride + i) as isize - pad;
            if ri < 0 || ri as usize >= in_h {
                continue;
            }
            let mask_row = &mask_plane[ri as usize * in_w..(ri as usize + 1) * in_w];
            if stride == 1 {
                let off = (c_lo as isize + j as isize - pad) as usize;
                let len = c_hi - c_lo;
                let src = &mask_row[off..off + len];
                for &m in kernels {
                    let base = m as usize * out_plane + r * out_w;
                    for (count, &v) in counts[base + c_lo..base + c_hi].iter_mut().zip(src) {
                        *count += v as u16;
                    }
                }
            } else {
                for &m in kernels {
                    let base = m as usize * out_plane + r * out_w;
                    for c in c_lo..c_hi {
                        let ci = (c * stride + j) as isize - pad;
                        counts[base + c] += mask_row[ci as usize] as u16;
                    }
                }
            }
        }
    }
    NdCounts {
        shape: out_shape,
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PolarityIndicators;
    use fbcnn_bayes::BayesianNetwork;
    use fbcnn_nn::models;
    use fbcnn_nn::NetworkBuilder;

    /// Brute-force reference implementation of the count.
    fn reference_count(conv: &Conv2d, input_mask: &BitMask, m: usize, r: usize, c: usize) -> u16 {
        let in_shape = input_mask.shape();
        let mut n_d = 0u16;
        for n in 0..conv.in_channels() {
            for i in 0..conv.kernel_size() {
                for j in 0..conv.kernel_size() {
                    let ri = (r * conv.stride() + i) as isize - conv.pad() as isize;
                    let ci = (c * conv.stride() + j) as isize - conv.pad() as isize;
                    if ri < 0
                        || ci < 0
                        || ri as usize >= in_shape.height()
                        || ci as usize >= in_shape.width()
                    {
                        continue;
                    }
                    if input_mask.get_at(n, ri as usize, ci as usize)
                        && conv.weight(m, n, i, j) <= 0.0
                    {
                        n_d += 1;
                    }
                }
            }
        }
        n_d
    }

    #[test]
    fn counting_matches_bruteforce() {
        let mut conv = Conv2d::new(3, 4, 3, 1, 1, true);
        let mut state = 99u64;
        for w in conv.weights_mut() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            *w = ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0;
        }
        let in_shape = Shape::new(3, 6, 6);
        let mask = BitMask::from_fn(in_shape, |i| i % 3 == 0);
        let indicators = PolarityIndicators::profile_conv(&conv);
        let counts = count_dropped_nw_inputs(&conv, &indicators, &mask);
        for (m, r, c) in counts.shape().coords() {
            assert_eq!(
                counts.at(m, r, c),
                reference_count(&conv, &mask, m, r, c),
                "mismatch at ({m},{r},{c})"
            );
        }
    }

    #[test]
    fn packed_matches_scalar_across_geometries() {
        // stride/pad/kernel combinations that exercise clipping on every
        // side, plus channel counts pushing windows past one word.
        for (in_c, out_c, k, stride, pad, dim) in [
            (1, 1, 1, 1, 0, 4),
            (3, 4, 3, 1, 1, 6),
            (2, 3, 5, 2, 2, 9),
            (6, 16, 5, 1, 0, 14), // LeNet conv2 geometry: 150-bit windows
            (4, 2, 3, 3, 1, 10),
        ] {
            let mut conv = Conv2d::new(in_c, out_c, k, stride, pad, true);
            let mut state = (in_c * 31 + k) as u64;
            for w in conv.weights_mut() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                *w = ((state >> 33) as f32 / u32::MAX as f32) * 2.0 - 1.0;
            }
            let in_shape = Shape::new(in_c, dim, dim);
            let mask = BitMask::from_fn(in_shape, |i| {
                (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .count_ones()
                    .is_multiple_of(2)
            });
            let indicators = PolarityIndicators::profile_conv(&conv);
            let fast = count_dropped_nw_inputs(&conv, &indicators, &mask);
            let scalar = count_dropped_nw_inputs_scalar(&conv, &indicators, &mask);
            assert_eq!(fast, scalar, "divergence at k={k} s={stride} p={pad}");
        }
    }

    #[test]
    fn empty_mask_counts_zero() {
        let conv = Conv2d::new(2, 2, 3, 1, 1, true);
        let indicators = PolarityIndicators::profile_conv(&conv);
        let mask = BitMask::zeros(Shape::new(2, 5, 5));
        let counts = count_dropped_nw_inputs(&conv, &indicators, &mask);
        assert_eq!(counts.max(), 0);
    }

    #[test]
    fn all_dropped_counts_equal_negative_weights_in_window() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, false);
        for (i, w) in conv.weights_mut().iter_mut().enumerate() {
            *w = if i < 4 { -1.0 } else { 1.0 }; // 4 negative weights
        }
        let indicators = PolarityIndicators::profile_conv(&conv);
        let mask = BitMask::ones(Shape::new(1, 5, 5));
        let counts = count_dropped_nw_inputs(&conv, &indicators, &mask);
        // Interior windows see all 4 negative weights.
        assert!(counts.as_slice().iter().all(|&c| c == 4));
    }

    #[test]
    fn first_layer_has_no_input_mask() {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let masks = bnet.generate_masks(0, 0);
        let first = bnet.network().conv_nodes()[0];
        assert!(input_drop_mask(bnet.network(), &masks, first).is_none());
    }

    #[test]
    fn pooled_mask_feeds_the_next_conv() {
        let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
        let net = bnet.network();
        let masks = bnet.generate_masks(0, 0);
        let convs = net.conv_nodes();
        // conv2's input is pool1(conv1): resolved mask = pooled conv1 mask.
        let resolved = input_drop_mask(net, &masks, convs[1]).expect("resolvable");
        let expected = pool_mask(
            masks.get(convs[0]).unwrap(),
            net.node(NodeId(convs[0].0 + 1))
                .layer()
                .unwrap()
                .as_pool()
                .unwrap(),
        );
        assert_eq!(resolved, expected);
    }

    #[test]
    fn concat_mask_merges_branches() {
        // input -> two 1x1 convs -> concat -> conv
        let mut b = NetworkBuilder::new(Shape::new(1, 4, 4));
        let x = b.input();
        let a = b.layer(x, Conv2d::new(1, 2, 1, 1, 0, true), "a").unwrap();
        let c = b.layer(x, Conv2d::new(1, 3, 1, 1, 0, true), "c").unwrap();
        let cat = b.concat(&[a, c], "cat").unwrap();
        let last = b
            .layer(cat, Conv2d::new(5, 2, 3, 1, 1, true), "last")
            .unwrap();
        let net = b.build().unwrap();
        let bnet = BayesianNetwork::new(net, 0.5);
        let masks = bnet.generate_masks(3, 0);
        let resolved = input_drop_mask(bnet.network(), &masks, last).expect("concat resolves");
        assert_eq!(resolved.shape(), Shape::new(5, 4, 4));
        let ma = masks.get(a).unwrap();
        let mc = masks.get(c).unwrap();
        assert_eq!(
            resolved.count_ones(),
            ma.count_ones() + mc.count_ones(),
            "concat mask must preserve branch bits"
        );
        // Spot-check channel offsets.
        for r in 0..4 {
            for col in 0..4 {
                assert_eq!(resolved.get_at(0, r, col), ma.get_at(0, r, col));
                assert_eq!(resolved.get_at(2, r, col), mc.get_at(0, r, col));
            }
        }
    }

    #[test]
    fn googlenet_masks_resolve_everywhere_past_layer_one() {
        let net = models::ModelKind::GoogLeNet.build_scaled(1, models::ModelScale::TINY);
        let bnet = BayesianNetwork::new(net, 0.3);
        let masks = bnet.generate_masks(0, 0);
        let convs = bnet.network().conv_nodes();
        for (i, &node) in convs.iter().enumerate() {
            let resolved = input_drop_mask(bnet.network(), &masks, node);
            if i == 0 {
                assert!(resolved.is_none());
            } else {
                assert!(resolved.is_some(), "conv {i} failed to resolve");
            }
        }
    }
}
