#![warn(missing_docs)]

//! Unaffected-neuron prediction — the algorithmic core of Fast-BCNN.
//!
//! The paper's key observation (§III) is that most zero-valued neurons of
//! the dropout-free *pre-inference* stay zero in every dropout sample.
//! Whether a particular zero neuron might flip is predicted from the
//! number of *dropped nw-inputs* — inputs that (a) are dropped by the
//! incoming dropout mask and (b) multiply a negative weight: losing many
//! negative products can push a negative pre-activation past zero.
//!
//! This crate implements that pipeline:
//!
//! * [`PolarityIndicators`] — per-kernel 1-bit weight-polarity maps
//!   (Algorithm 1 lines 4–5, hardware indicator buffers);
//! * [`count_dropped_nw_inputs`] — the binary convolution of dropout bits
//!   with indicator bits (the prediction unit's counting lanes, Fig. 9);
//! * [`input_drop_mask`] — resolves which *inputs* of a convolution are
//!   dropped, pooling masks through intervening pool layers (the mask
//!   pooling unit) and concatenating them across Inception branches;
//! * [`ThresholdSet`] / [`ThresholdOptimizer`] — per-kernel thresholds
//!   `α` tuned by Algorithm 1 to a confidence level `p_cf`;
//! * [`SkipMap`] / [`build_skip_maps`] — the per-sample skip decisions
//!   combining dropped neurons and predicted-unaffected neurons;
//! * [`PredictiveInference`] — the functional skipping forward pass,
//!   bit-identical to the dense pass on every neuron it does compute.
//!
//! # Examples
//!
//! ```
//! use fbcnn_bayes::BayesianNetwork;
//! use fbcnn_nn::models;
//! use fbcnn_predictor::{ThresholdOptimizer, PredictiveInference};
//! use fbcnn_tensor::Tensor;
//!
//! let bnet = BayesianNetwork::new(models::lenet5(1), 0.3);
//! let input = Tensor::full(bnet.network().input_shape(), 0.3);
//! let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 77);
//! let engine = PredictiveInference::new(&bnet, &input, thresholds);
//! let masks = bnet.generate_masks(77, 0);
//! let run = engine.run_sample(&masks);
//! assert_eq!(run.logits().len(), 10);
//! ```

mod counting;
mod evaluate;
mod indicator;
mod predictive;
mod skipmap;
mod threshold;

pub use counting::{
    count_dropped_nw_inputs, count_dropped_nw_inputs_scalar, input_drop_mask, NdCounts,
};
pub use evaluate::{evaluate_predictions, EvalReport};
pub use indicator::PolarityIndicators;
pub use predictive::{
    PredictiveInference, PredictorError, PredictorShared, PreparedInput, SkippingRun,
};
pub use skipmap::{build_skip_maps, SkipMap, SkipStats};
pub use threshold::{ThresholdError, ThresholdOptimizer, ThresholdSet};
