use crate::counting::{count_dropped_nw_inputs, input_drop_mask};
use crate::{PolarityIndicators, ThresholdSet};
use fbcnn_bayes::mask::DropoutMasks;
use fbcnn_nn::Network;
use fbcnn_tensor::BitMask;
use serde::{Deserialize, Serialize};

/// The skip decisions for one convolution layer in one sample inference.
///
/// A neuron is skipped when it is a *dropped neuron* (its own dropout bit
/// is `1`) or a *predicted unaffected neuron* (zero in the pre-inference
/// and `N_d < α`). These are the two OR-gate inputs of the skip engine
/// (Fig. 8a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkipMap {
    /// Dropped neurons (the dropout mask itself).
    pub dropped: BitMask,
    /// Predicted-unaffected neurons.
    pub predicted: BitMask,
    /// The union — everything the PE skips.
    pub skip: BitMask,
}

/// Aggregate counts over one or more [`SkipMap`]s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SkipStats {
    /// Total neurons considered.
    pub total: usize,
    /// Dropped neurons.
    pub dropped: usize,
    /// Predicted-unaffected neurons.
    pub predicted: usize,
    /// Skipped neurons (union; ≤ dropped + predicted).
    pub skipped: usize,
}

impl SkipMap {
    /// Builds the map from its two constituent masks.
    ///
    /// # Panics
    ///
    /// Panics if the mask shapes differ.
    pub fn new(dropped: BitMask, predicted: BitMask) -> Self {
        let skip = dropped.or(&predicted);
        Self {
            dropped,
            predicted,
            skip,
        }
    }

    /// Whether neuron `i` is skipped.
    #[inline]
    pub fn is_skipped(&self, i: usize) -> bool {
        self.skip.get(i)
    }

    /// Counts for this map.
    pub fn stats(&self) -> SkipStats {
        SkipStats {
            total: self.skip.len(),
            dropped: self.dropped.count_ones(),
            predicted: self.predicted.count_ones(),
            skipped: self.skip.count_ones(),
        }
    }
}

impl SkipStats {
    /// Accumulates another stats record.
    pub fn absorb(&mut self, other: SkipStats) {
        self.total += other.total;
        self.dropped += other.dropped;
        self.predicted += other.predicted;
        self.skipped += other.skipped;
    }

    /// Fraction of neurons skipped.
    pub fn skip_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.skipped as f64 / self.total as f64
        }
    }

    /// Overlap between dropped and predicted (both conditions held).
    pub fn overlap(&self) -> usize {
        (self.dropped + self.predicted).saturating_sub(self.skipped)
    }
}

/// Builds the per-node [`SkipMap`]s of one sample inference.
///
/// `zero_masks` holds, per node id, the pre-inference zero-neuron index of
/// each convolution node (`None` elsewhere). Nodes whose input dropout
/// mask cannot be resolved (the first layer) receive a skip map with only
/// the dropped component — the hardware handles them via the first-layer
/// shortcut instead.
pub fn build_skip_maps(
    net: &Network,
    masks: &DropoutMasks,
    zero_masks: &[Option<BitMask>],
    indicators: &PolarityIndicators,
    thresholds: &ThresholdSet,
) -> Vec<Option<SkipMap>> {
    let mut out: Vec<Option<SkipMap>> = vec![None; net.len()];
    for &node in &net.conv_nodes() {
        let own_mask = masks
            .get(node)
            .expect("every conv node carries a dropout mask")
            .clone();
        let shape = own_mask.shape();
        let predicted = match (
            input_drop_mask(net, masks, node),
            thresholds.get(node),
            zero_masks[node.0].as_ref(),
        ) {
            (Some(input_mask), Some(alphas), Some(zeros)) => {
                let conv = net
                    .node(node)
                    .layer()
                    .and_then(|l| l.as_conv())
                    .expect("conv node");
                let counts = count_dropped_nw_inputs(conv, indicators.kernels(node), &input_mask);
                // Only pre-inference zeros can be predicted: walk the set
                // bits directly instead of scanning the whole map.
                let plane = shape.plane();
                let mut predicted = BitMask::zeros(shape);
                let (mut hits, mut misses) = (0u64, 0u64);
                for i in zeros.iter_set() {
                    if counts.at_linear(i) < alphas[i / plane] {
                        predicted.set(i, true);
                        hits += 1;
                    } else {
                        misses += 1;
                    }
                }
                if fbcnn_telemetry::enabled() {
                    let labels = [("layer", net.node(node).label())];
                    fbcnn_telemetry::counter_add("predictor_threshold_hits", &labels, hits);
                    fbcnn_telemetry::counter_add("predictor_threshold_misses", &labels, misses);
                }
                predicted
            }
            _ => BitMask::zeros(shape),
        };
        out[node.0] = Some(SkipMap::new(own_mask, predicted));
    }
    out
}

/// Sums the stats of every conv layer's skip map (ignoring `None` slots).
pub fn total_stats(maps: &[Option<SkipMap>]) -> SkipStats {
    let mut total = SkipStats::default();
    for map in maps.iter().flatten() {
        total.absorb(map.stats());
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThresholdOptimizer;
    use fbcnn_bayes::BayesianNetwork;
    use fbcnn_nn::models;
    use fbcnn_tensor::{Shape, Tensor};

    fn setup() -> (BayesianNetwork, Tensor, ThresholdSet, PolarityIndicators) {
        let bnet = BayesianNetwork::new(models::lenet5(3), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r * 3 + c * 5) % 11) as f32 / 11.0
        });
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 9);
        let indicators = PolarityIndicators::from_network(bnet.network());
        (bnet, input, thresholds, indicators)
    }

    #[test]
    fn skip_is_union_of_components() {
        let (bnet, input, thresholds, indicators) = setup();
        let net = bnet.network();
        let pre = bnet.forward_deterministic(&input);
        let zero_masks: Vec<Option<BitMask>> = net
            .nodes()
            .iter()
            .map(|n| {
                n.layer()
                    .filter(|l| l.is_conv())
                    .map(|_| pre.activations[n.id().0].zero_mask())
            })
            .collect();
        let masks = bnet.generate_masks(4, 0);
        let maps = build_skip_maps(net, &masks, &zero_masks, &indicators, &thresholds);
        for map in maps.iter().flatten() {
            for i in 0..map.skip.len() {
                assert_eq!(map.skip.get(i), map.dropped.get(i) || map.predicted.get(i));
            }
            // Predicted neurons are always pre-inference zeros.
            let s = map.stats();
            assert!(s.skipped <= s.dropped + s.predicted);
            assert!(s.skipped >= s.dropped.max(s.predicted));
        }
    }

    #[test]
    fn first_layer_skips_only_dropped() {
        let (bnet, input, thresholds, indicators) = setup();
        let net = bnet.network();
        let pre = bnet.forward_deterministic(&input);
        let zero_masks: Vec<Option<BitMask>> = net
            .nodes()
            .iter()
            .map(|n| {
                n.layer()
                    .filter(|l| l.is_conv())
                    .map(|_| pre.activations[n.id().0].zero_mask())
            })
            .collect();
        let masks = bnet.generate_masks(4, 0);
        let maps = build_skip_maps(net, &masks, &zero_masks, &indicators, &thresholds);
        let first = net.conv_nodes()[0];
        let map = maps[first.0].as_ref().unwrap();
        assert_eq!(map.predicted.count_ones(), 0);
        assert_eq!(&map.skip, &map.dropped);
    }

    #[test]
    fn later_layers_predict_something() {
        let (bnet, input, thresholds, indicators) = setup();
        let net = bnet.network();
        let pre = bnet.forward_deterministic(&input);
        let zero_masks: Vec<Option<BitMask>> = net
            .nodes()
            .iter()
            .map(|n| {
                n.layer()
                    .filter(|l| l.is_conv())
                    .map(|_| pre.activations[n.id().0].zero_mask())
            })
            .collect();
        let masks = bnet.generate_masks(4, 0);
        let maps = build_skip_maps(net, &masks, &zero_masks, &indicators, &thresholds);
        let second = net.conv_nodes()[1];
        let map = maps[second.0].as_ref().unwrap();
        assert!(
            map.predicted.count_ones() > 0,
            "expected unaffected predictions in layer 2"
        );
        let stats = total_stats(&maps);
        assert!(stats.skip_rate() > 0.3, "skip rate {}", stats.skip_rate());
    }

    #[test]
    fn stats_overlap_identity() {
        let s = Shape::flat(100);
        let dropped = BitMask::from_fn(s, |i| i.is_multiple_of(2));
        let predicted = BitMask::from_fn(s, |i| i % 3 == 0);
        let map = SkipMap::new(dropped, predicted);
        let stats = map.stats();
        // |A ∩ B| = |A| + |B| - |A ∪ B| = 50 + 34 - 67 = 17
        assert_eq!(stats.overlap(), 17);
        assert_eq!(stats.skipped, 67);
    }
}
