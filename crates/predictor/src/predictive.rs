use crate::skipmap::{build_skip_maps, total_stats, SkipMap, SkipStats};
use crate::{PolarityIndicators, ThresholdError, ThresholdSet};
use fbcnn_bayes::mask::DropoutMasks;
use fbcnn_bayes::{BayesianNetwork, SampleRun};
use fbcnn_nn::NnError;
use fbcnn_tensor::{BitMask, Tensor};
use std::fmt;
use std::sync::Arc;

/// Why a [`PredictiveInference`] could not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum PredictorError {
    /// The optimization input does not fit the network.
    Input(NnError),
    /// The threshold set is structurally inconsistent with the network.
    Thresholds(ThresholdError),
}

impl fmt::Display for PredictorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PredictorError::Input(e) => write!(f, "bad input: {e}"),
            PredictorError::Thresholds(e) => write!(f, "bad thresholds: {e}"),
        }
    }
}

impl std::error::Error for PredictorError {}

impl From<NnError> for PredictorError {
    fn from(e: NnError) -> Self {
        PredictorError::Input(e)
    }
}

impl From<ThresholdError> for PredictorError {
    fn from(e: ThresholdError) -> Self {
        PredictorError::Thresholds(e)
    }
}

/// The *input-invariant* half of a skipping inference: thresholds,
/// weight-polarity indicator maps and the structural upstream-dropout
/// flags. None of these depend on the input image, so one instance can
/// be built per engine and shared (behind an [`Arc`]) across every
/// request a serving layer handles — the cross-request amortization the
/// batched engine exploits.
#[derive(Debug, Clone)]
pub struct PredictorShared {
    thresholds: ThresholdSet,
    indicators: PolarityIndicators,
    /// Per node: whether its inputs carry dropout (structural, so it is
    /// resolved once with probe masks instead of per sample).
    upstream_dropout: Vec<bool>,
}

impl PredictorShared {
    /// Profiles the network's kernels and resolves the structural
    /// upstream-dropout flags — work that is identical for every input.
    pub fn new(bnet: &BayesianNetwork, thresholds: ThresholdSet) -> Self {
        let indicators = PolarityIndicators::from_network(bnet.network());
        let probe = bnet.generate_masks(0, 0);
        let upstream_dropout = bnet
            .network()
            .nodes()
            .iter()
            .map(|n| crate::counting::input_drop_mask(bnet.network(), &probe, n.id()).is_some())
            .collect();
        Self {
            thresholds,
            indicators,
            upstream_dropout,
        }
    }

    /// Fallible constructor: validates the threshold set first.
    ///
    /// # Errors
    ///
    /// [`PredictorError::Thresholds`] when the set fails
    /// [`ThresholdSet::validate`].
    pub fn try_new(
        bnet: &BayesianNetwork,
        thresholds: ThresholdSet,
    ) -> Result<Self, PredictorError> {
        thresholds.validate(bnet.network())?;
        Ok(Self::new(bnet, thresholds))
    }

    /// The thresholds this state was built from.
    pub fn thresholds(&self) -> &ThresholdSet {
        &self.thresholds
    }
}

/// The *per-input* half of a skipping inference: the input itself, its
/// dropout-free pre-inference and the derived zero-neuron indexes.
///
/// Deterministic in the input, so a serving layer may cache instances by
/// [`PreparedInput::fingerprint`] and reuse them across requests that
/// repeat an input — the cached pre-inference is bit-identical to a
/// freshly computed one.
#[derive(Debug, Clone)]
pub struct PreparedInput {
    input: Tensor,
    pre: SampleRun,
    zero_masks: Vec<Option<BitMask>>,
}

impl PreparedInput {
    /// Runs the pre-inference and records the zero-neuron indexes.
    pub fn new(bnet: &BayesianNetwork, input: &Tensor) -> Self {
        let _phase =
            fbcnn_telemetry::span_with("phase", || vec![("stage".into(), "pre_inference".into())]);
        let pre = bnet.forward_deterministic(input);
        let zero_masks = bnet
            .network()
            .nodes()
            .iter()
            .map(|n| {
                n.layer()
                    .filter(|l| l.is_conv())
                    .map(|_| pre.activations[n.id().0].zero_mask())
            })
            .collect();
        Self {
            input: input.clone(),
            pre,
            zero_masks,
        }
    }

    /// The input this state was prepared for.
    pub fn input(&self) -> &Tensor {
        &self.input
    }

    /// The recorded pre-inference.
    pub fn pre_inference(&self) -> &SampleRun {
        &self.pre
    }

    /// 64-bit FNV-1a over the input's shape and exact f32 bit patterns —
    /// the cache key of a pre-inference cache. Two bit-identical inputs
    /// always collide (that is the point); two different inputs collide
    /// with probability ~2⁻⁶⁴, and a careful cache confirms with
    /// [`PreparedInput::matches`] before reuse.
    pub fn fingerprint(input: &Tensor) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        let shape = input.shape();
        eat(shape.channels() as u64);
        eat(shape.height() as u64);
        eat(shape.width() as u64);
        for &v in input.as_slice() {
            eat(u64::from(v.to_bits()));
        }
        h
    }

    /// Whether this prepared state was built for exactly `input`
    /// (bit-level comparison — the fingerprint-collision backstop).
    pub fn matches(&self, input: &Tensor) -> bool {
        self.input == *input
    }
}

/// The functional skipping inference — the paper's `PredictInference`.
///
/// Construction runs the dropout-free *pre-inference* once and records
/// every convolution layer's zero-neuron index; each subsequent
/// [`PredictiveInference::run_sample`] then:
///
/// * reuses the pre-inference outputs for layers without upstream dropout
///   (the first-layer shortcut — the dotted path in Fig. 7), applying the
///   dropout mask directly;
/// * for every other convolution layer, computes skip decisions from the
///   resolved input dropout mask, the indicator bits and the thresholds,
///   writes zero for skipped neurons and computes kept neurons with
///   arithmetic identical to the dense pass.
///
/// On neurons it computes, the result is bit-for-bit equal to
/// [`BayesianNetwork::forward_sample`]; the only deviations are
/// mispredicted unaffected neurons forced to zero — the source of the
/// (small) accuracy loss the paper measures.
///
/// Internally the state is split into the input-invariant
/// [`PredictorShared`] and the per-input [`PreparedInput`], both behind
/// [`Arc`]s: [`PredictiveInference::new`] builds both on the spot, while
/// a serving layer reuses one shared state and a cache of prepared
/// inputs via [`PredictiveInference::from_parts`]. The two construction
/// routes yield bit-identical inferences.
#[derive(Debug, Clone)]
pub struct PredictiveInference<'a> {
    bnet: &'a BayesianNetwork,
    shared: Arc<PredictorShared>,
    prepared: Arc<PreparedInput>,
}

/// The outcome of one skipping sample inference.
#[derive(Debug, Clone)]
pub struct SkippingRun {
    /// Per-node outputs (post-dropout), indexed by node id.
    pub activations: Vec<Tensor>,
    /// Per-node skip maps (conv nodes only).
    pub skip_maps: Vec<Option<SkipMap>>,
}

impl SkippingRun {
    /// The final logits.
    pub fn logits(&self) -> &[f32] {
        self.activations
            .last()
            .expect("a built network has nodes")
            .as_slice()
    }

    /// Aggregate skip statistics over all conv layers.
    pub fn stats(&self) -> SkipStats {
        total_stats(&self.skip_maps)
    }
}

impl<'a> PredictiveInference<'a> {
    /// Prepares the engine: runs the pre-inference and profiles kernels.
    pub fn new(bnet: &'a BayesianNetwork, input: &Tensor, thresholds: ThresholdSet) -> Self {
        Self::from_parts(
            bnet,
            Arc::new(PredictorShared::new(bnet, thresholds)),
            Arc::new(PreparedInput::new(bnet, input)),
        )
    }

    /// Assembles an inference from pre-built halves — the serving-layer
    /// entry point that shares one [`PredictorShared`] across requests
    /// and reuses cached [`PreparedInput`]s for repeated inputs.
    pub fn from_parts(
        bnet: &'a BayesianNetwork,
        shared: Arc<PredictorShared>,
        prepared: Arc<PreparedInput>,
    ) -> Self {
        Self {
            bnet,
            shared,
            prepared,
        }
    }

    /// Fallible constructor: validates the input shape and the threshold
    /// set before running the pre-inference.
    ///
    /// [`PredictiveInference::new`] trusts its arguments (the calibrated
    /// path constructs thresholds itself); use `try_new` when the
    /// thresholds or input come from outside — a deserialized artifact, a
    /// fault-injection harness — and an index panic inside the skip-map
    /// builder must become a typed error instead.
    ///
    /// # Errors
    ///
    /// [`PredictorError::Input`] when the input shape disagrees with the
    /// network, [`PredictorError::Thresholds`] when the set fails
    /// [`ThresholdSet::validate`].
    pub fn try_new(
        bnet: &'a BayesianNetwork,
        input: &Tensor,
        thresholds: ThresholdSet,
    ) -> Result<Self, PredictorError> {
        bnet.network().check_input(input)?;
        thresholds.validate(bnet.network())?;
        Ok(Self::new(bnet, input, thresholds))
    }

    /// The recorded pre-inference.
    pub fn pre_inference(&self) -> &SampleRun {
        &self.prepared.pre
    }

    /// Per-node zero-neuron indexes from the pre-inference.
    pub fn zero_masks(&self) -> &[Option<BitMask>] {
        &self.prepared.zero_masks
    }

    /// The thresholds in use.
    pub fn thresholds(&self) -> &ThresholdSet {
        &self.shared.thresholds
    }

    /// The input-invariant half (thresholds, indicators, structure).
    pub fn shared(&self) -> &Arc<PredictorShared> {
        &self.shared
    }

    /// The per-input half (input, pre-inference, zero masks).
    pub fn prepared(&self) -> &Arc<PreparedInput> {
        &self.prepared
    }

    /// Runs a complete skipping MC-dropout inference: `t` sample passes
    /// with the masks `generate_masks(seed, 0..t)`, returning the
    /// per-sample softmax rows plus aggregate skip statistics.
    ///
    /// This is the skipping counterpart of
    /// [`fbcnn_bayes::McDropout::run`]; summarize the rows with
    /// [`fbcnn_bayes::McDropout::summarize`].
    ///
    /// # Panics
    ///
    /// Panics if `t == 0`.
    pub fn run_mc(&self, seed: u64, t: usize) -> (Vec<Vec<f32>>, SkipStats) {
        assert!(t > 0, "need at least one sample");
        let _span =
            fbcnn_telemetry::span_with("mc_run", || vec![("mode".into(), "skipping".into())]);
        fbcnn_telemetry::counter_add("mc_samples", &[("path", "skipping")], t as u64);
        let mut probs = Vec::with_capacity(t);
        let mut stats = SkipStats::default();
        for s in 0..t {
            let masks = {
                let _phase = fbcnn_telemetry::span_with("phase", || {
                    vec![("stage".into(), "mask_gen".into())]
                });
                self.bnet.generate_masks(seed, s)
            };
            let run = self.run_sample(&masks);
            stats.absorb(run.stats());
            probs.push(fbcnn_tensor::stats::softmax(run.logits()));
        }
        (probs, stats)
    }

    /// Runs one skipping sample inference under the given dropout masks.
    ///
    /// When a telemetry recorder is installed, each call emits the
    /// `prediction` and `conv` phase spans plus one set of per-layer
    /// `skip_neurons_*` counters derived from the very same [`SkipMap`]s
    /// that [`SkippingRun::stats`] aggregates — the two views reconcile
    /// exactly.
    pub fn run_sample(&self, masks: &DropoutMasks) -> SkippingRun {
        let net = self.bnet.network();
        let skip_maps = {
            let _phase =
                fbcnn_telemetry::span_with("phase", || vec![("stage".into(), "prediction".into())]);
            build_skip_maps(
                net,
                masks,
                &self.prepared.zero_masks,
                &self.shared.indicators,
                &self.shared.thresholds,
            )
        };
        if fbcnn_telemetry::enabled() {
            for &node in &net.conv_nodes() {
                if let Some(map) = skip_maps[node.0].as_ref() {
                    let s = map.stats();
                    let labels = [("layer", net.node(node).label())];
                    fbcnn_telemetry::counter_add(
                        "skip_neurons_considered",
                        &labels,
                        s.total as u64,
                    );
                    fbcnn_telemetry::counter_add("skip_neurons_dropped", &labels, s.dropped as u64);
                    fbcnn_telemetry::counter_add(
                        "skip_neurons_predicted",
                        &labels,
                        s.predicted as u64,
                    );
                    fbcnn_telemetry::counter_add("skip_neurons_skipped", &labels, s.skipped as u64);
                }
            }
        }
        let _conv_phase =
            fbcnn_telemetry::span_with("phase", || vec![("stage".into(), "conv".into())]);
        let activations = net.forward_with(&self.prepared.input, |net, node, ins| {
            let id = node.id();
            let Some(conv) = node.layer().and_then(|l| l.as_conv()) else {
                return net.eval_node(node, ins);
            };
            let map = skip_maps[id.0].as_ref().expect("conv nodes have skip maps");
            if !self.shared.upstream_dropout[id.0] {
                // First-layer shortcut: inputs are identical to the
                // pre-inference, so reuse its outputs and just apply the
                // dropout bits.
                let mut out = self.prepared.pre.activations[id.0].clone();
                out.apply_drop_mask(&map.dropped);
                return out;
            }
            let out_shape = net.shape(id);
            let mut out = Tensor::zeros(out_shape);
            let (out_h, out_w) = (out_shape.height(), out_shape.width());
            let plane = out_shape.plane();
            let input = ins[0];
            for m in 0..conv.out_channels() {
                let base = m * plane;
                let skipped = (base..base + plane).filter(|&i| map.is_skipped(i)).count();
                // Both strategies accumulate in the same (bias, n, i, j)
                // order, so they are bit-identical on kept neurons; pick
                // whichever does less work. The dense path's better
                // constants win only on lightly-skipped channels.
                if skipped * 4 < plane {
                    // Mostly kept: compute the dense channel, then force
                    // the skipped neurons to zero.
                    conv.forward_channel_into(input, m, out.channel_mut(m));
                    for i in base..base + plane {
                        if map.is_skipped(i) {
                            out.set(i, 0.0);
                        }
                    }
                } else {
                    for r in 0..out_h {
                        for c in 0..out_w {
                            let i = base + r * out_w + c;
                            if map.is_skipped(i) {
                                continue; // stays zero
                            }
                            let v = conv.forward_neuron(input, m, r, c);
                            out.set(i, v);
                        }
                    }
                }
            }
            out
        });
        SkippingRun {
            activations,
            skip_maps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThresholdOptimizer;
    use fbcnn_nn::models;

    fn setup() -> (BayesianNetwork, Tensor) {
        let bnet = BayesianNetwork::new(models::lenet5(5), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r * 7 + c * 3) % 13) as f32 / 13.0
        });
        (bnet, input)
    }

    #[test]
    fn never_predict_reproduces_exact_inference() {
        // With prediction disabled, skipping covers exactly the dropped
        // neurons, which are zero in the exact pass too — so the runs must
        // agree bit-for-bit.
        let (bnet, input) = setup();
        let thresholds = ThresholdSet::never_predict(bnet.network().len());
        let engine = PredictiveInference::new(&bnet, &input, thresholds);
        for t in 0..3 {
            let masks = bnet.generate_masks(21, t);
            let exact = bnet.forward_sample(&input, &masks);
            let skipped = engine.run_sample(&masks);
            for (a, b) in exact.activations.iter().zip(&skipped.activations) {
                assert_eq!(a, b, "sample {t} diverged with prediction off");
            }
        }
    }

    #[test]
    fn computed_neurons_are_bit_identical_while_inputs_agree() {
        // Bit-identity holds layer by layer as long as the layer's inputs
        // are untouched by mispredictions. Layer 1 uses the shortcut
        // (exact by construction) and therefore layer 2's inputs agree
        // with the exact run; from layer 3 onward forced zeros upstream
        // may legitimately change computed values.
        let (bnet, input) = setup();
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        let engine = PredictiveInference::new(&bnet, &input, thresholds);
        let masks = bnet.generate_masks(8, 0);
        let exact = bnet.forward_sample(&input, &masks);
        let skipped = engine.run_sample(&masks);
        for &node in bnet.network().conv_nodes().iter().take(2) {
            let map = skipped.skip_maps[node.0].as_ref().unwrap();
            let (a, b) = (&exact.activations[node.0], &skipped.activations[node.0]);
            for i in 0..a.len() {
                if !map.is_skipped(i) {
                    assert_eq!(a.at(i), b.at(i), "non-skipped neuron {i} differs");
                }
            }
        }
    }

    #[test]
    fn skipped_neurons_are_zero() {
        let (bnet, input) = setup();
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        let engine = PredictiveInference::new(&bnet, &input, thresholds);
        let masks = bnet.generate_masks(8, 1);
        let run = engine.run_sample(&masks);
        for &node in &bnet.network().conv_nodes() {
            let map = run.skip_maps[node.0].as_ref().unwrap();
            let act = &run.activations[node.0];
            for i in map.skip.iter_set() {
                assert_eq!(act.at(i), 0.0);
            }
        }
    }

    #[test]
    fn skip_rate_is_substantial_at_default_confidence() {
        let (bnet, input) = setup();
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        let engine = PredictiveInference::new(&bnet, &input, thresholds);
        let masks = bnet.generate_masks(8, 2);
        let stats = engine.run_sample(&masks).stats();
        // The paper estimates 60-75% overall; allow a broad band here.
        assert!(
            stats.skip_rate() > 0.35,
            "skip rate {} unexpectedly low",
            stats.skip_rate()
        );
    }

    #[test]
    fn try_new_screens_inputs_and_thresholds() {
        let (bnet, input) = setup();
        let net_len = bnet.network().len();
        let good = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        assert!(PredictiveInference::try_new(&bnet, &input, good.clone()).is_ok());

        let bad_input = Tensor::zeros(fbcnn_tensor::Shape::new(1, 2, 2));
        assert!(matches!(
            PredictiveInference::try_new(&bnet, &bad_input, good.clone()),
            Err(PredictorError::Input(_))
        ));

        let mut truncated = good;
        let node = bnet.network().conv_nodes()[1];
        truncated.insert(node, vec![7; 3]);
        assert!(matches!(
            PredictiveInference::try_new(&bnet, &input, truncated),
            Err(PredictorError::Thresholds(
                crate::ThresholdError::KernelCountMismatch { .. }
            ))
        ));

        let mut misplaced = ThresholdSet::never_predict(net_len);
        misplaced.insert(fbcnn_nn::NodeId(0), vec![1; 4]);
        assert!(matches!(
            PredictiveInference::try_new(&bnet, &input, misplaced),
            Err(PredictorError::Thresholds(
                crate::ThresholdError::NotAConvNode { node: 0 }
            ))
        ));
    }

    #[test]
    fn from_parts_is_bit_identical_to_new() {
        // The serving layer builds inferences from one shared state and a
        // cached prepared input; that route must reproduce `new` exactly.
        let (bnet, input) = setup();
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        let direct = PredictiveInference::new(&bnet, &input, thresholds.clone());
        let shared = std::sync::Arc::new(PredictorShared::new(&bnet, thresholds));
        let prepared = std::sync::Arc::new(PreparedInput::new(&bnet, &input));
        let assembled = PredictiveInference::from_parts(&bnet, shared.clone(), prepared.clone());
        for t in 0..3 {
            let masks = bnet.generate_masks(31, t);
            let a = direct.run_sample(&masks);
            let b = assembled.run_sample(&masks);
            assert_eq!(a.activations, b.activations, "sample {t} diverged");
            assert_eq!(a.skip_maps, b.skip_maps, "sample {t} skip maps diverged");
        }
        // The same Arcs serve a second request without re-preparation.
        let again = PredictiveInference::from_parts(&bnet, shared, prepared);
        let masks = bnet.generate_masks(31, 0);
        assert_eq!(
            again.run_sample(&masks).activations,
            direct.run_sample(&masks).activations
        );
    }

    #[test]
    fn fingerprint_separates_inputs_and_matches_confirms() {
        let (bnet, input) = setup();
        let a = PreparedInput::fingerprint(&input);
        assert_eq!(a, PreparedInput::fingerprint(&input), "not deterministic");
        let mut other = input.clone();
        other.set(0, other.at(0) + 0.25);
        assert_ne!(a, PreparedInput::fingerprint(&other));
        let prepared = PreparedInput::new(&bnet, &input);
        assert!(prepared.matches(&input));
        assert!(!prepared.matches(&other));
        assert_eq!(prepared.input(), &input);
        assert_eq!(
            prepared.pre_inference().activations.len(),
            bnet.network().len()
        );
    }

    #[test]
    fn shared_state_validates_thresholds() {
        let (bnet, input) = setup();
        let good = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        assert!(PredictorShared::try_new(&bnet, good.clone()).is_ok());
        let mut truncated = good;
        truncated.insert(bnet.network().conv_nodes()[1], vec![7; 3]);
        assert!(matches!(
            PredictorShared::try_new(&bnet, truncated),
            Err(PredictorError::Thresholds(_))
        ));
    }

    #[test]
    fn output_quality_is_close_to_exact() {
        let (bnet, input) = setup();
        let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 3);
        let engine = PredictiveInference::new(&bnet, &input, thresholds);
        let mut max_diff = 0.0f32;
        for t in 0..4 {
            let masks = bnet.generate_masks(8, t);
            let exact = bnet.forward_sample(&input, &masks);
            let skipped = engine.run_sample(&masks);
            let e = fbcnn_tensor::stats::softmax(exact.logits());
            let s = fbcnn_tensor::stats::softmax(skipped.logits());
            for (a, b) in e.iter().zip(&s) {
                max_diff = max_diff.max((a - b).abs());
            }
        }
        assert!(
            max_diff < 0.25,
            "probability divergence {max_diff} too large"
        );
    }
}
