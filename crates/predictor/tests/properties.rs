//! Property-based tests for the prediction machinery.

use fbcnn_bayes::BayesianNetwork;
use fbcnn_nn::{models, Conv2d};
use fbcnn_predictor::{
    build_skip_maps, count_dropped_nw_inputs, count_dropped_nw_inputs_scalar, PolarityIndicators,
    ThresholdOptimizer, ThresholdSet,
};
use fbcnn_tensor::{BitMask, Shape, Tensor};
use proptest::prelude::*;

fn arb_conv_and_mask() -> impl Strategy<Value = (Conv2d, BitMask)> {
    (1usize..4, 1usize..4, 5usize..9).prop_flat_map(|(n, m, dim)| {
        let wlen = m * n * 9;
        (
            proptest::collection::vec(-1.0f32..1.0, wlen),
            proptest::collection::vec(any::<bool>(), n * dim * dim),
            Just((n, m, dim)),
        )
            .prop_map(|(weights, bits, (n, m, dim))| {
                let mut conv = Conv2d::new(n, m, 3, 1, 1, true);
                conv.weights_mut().copy_from_slice(&weights);
                let shape = Shape::new(n, dim, dim);
                let mut mask = BitMask::zeros(shape);
                for (i, b) in bits.into_iter().enumerate() {
                    mask.set(i, b);
                }
                (conv, mask)
            })
    })
}

/// Like [`arb_conv_and_mask`], but varying kernel size, stride and
/// padding — including kernels whose bit count crosses the 64-bit word
/// boundary of the packed counting lanes.
fn arb_counting_case() -> impl Strategy<Value = (Conv2d, BitMask)> {
    (
        (1usize..4, 1usize..4, 0usize..3),
        (0usize..3, 1usize..3, 5usize..10),
    )
        .prop_flat_map(|((n, m, k_idx), (pad, stride, dim))| {
            let k = [1usize, 3, 5][k_idx % 3].min(dim);
            let pad = pad.min(k.saturating_sub(1));
            let wlen = m * n * k * k;
            (
                proptest::collection::vec(-1.0f32..1.0, wlen),
                proptest::collection::vec(any::<bool>(), n * dim * dim),
                Just((n, m, k, pad, stride, dim)),
            )
                .prop_map(|(weights, bits, (n, m, k, pad, stride, dim))| {
                    let mut conv = Conv2d::new(n, m, k, stride, pad, true);
                    conv.weights_mut().copy_from_slice(&weights);
                    let mut mask = BitMask::zeros(Shape::new(n, dim, dim));
                    for (i, b) in bits.into_iter().enumerate() {
                        mask.set(i, b);
                    }
                    (conv, mask)
                })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn packed_counting_matches_scalar_reference((conv, mask) in arb_counting_case()) {
        // The word-parallel lanes must agree with the per-bit reference
        // on every count, for every geometry.
        let indicators = PolarityIndicators::profile_conv(&conv);
        prop_assert_eq!(
            count_dropped_nw_inputs(&conv, &indicators, &mask),
            count_dropped_nw_inputs_scalar(&conv, &indicators, &mask)
        );
    }

    #[test]
    fn counting_is_monotone_in_the_mask((conv, mask) in arb_conv_and_mask()) {
        // Clearing mask bits can never increase any count.
        let indicators = PolarityIndicators::profile_conv(&conv);
        let full = count_dropped_nw_inputs(&conv, &indicators, &mask);
        let mut reduced_mask = mask.clone();
        let set: Vec<usize> = mask.iter_set().collect();
        for &i in set.iter().step_by(2) {
            reduced_mask.set(i, false);
        }
        let reduced = count_dropped_nw_inputs(&conv, &indicators, &reduced_mask);
        for i in 0..full.shape().len() {
            prop_assert!(reduced.at_linear(i) <= full.at_linear(i));
        }
    }

    #[test]
    fn counts_are_bounded_by_indicator_popcount((conv, mask) in arb_conv_and_mask()) {
        let indicators = PolarityIndicators::profile_conv(&conv);
        let counts = count_dropped_nw_inputs(&conv, &indicators, &mask);
        let shape = counts.shape();
        for i in 0..shape.len() {
            let (m, _, _) = shape.unravel(i);
            prop_assert!(
                (counts.at_linear(i) as usize) <= indicators.kernels_popcount(m),
                "count exceeds negative-weight population"
            );
        }
    }
}

// Helper: expose popcount through a tiny extension trait for the test.
trait KernelPopcount {
    fn kernels_popcount(&self, m: usize) -> usize;
}

impl KernelPopcount for Vec<BitMask> {
    fn kernels_popcount(&self, m: usize) -> usize {
        self[m].count_ones()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn thresholds_are_monotone_in_confidence(seed in 0u64..50) {
        let bnet = BayesianNetwork::new(models::lenet5(seed), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r.wrapping_mul(7) + c.wrapping_mul(3) + seed as usize) % 11) as f32 / 11.0
        });
        let opt = |pcf: f64| {
            ThresholdOptimizer {
                samples: 2,
                confidence: pcf,
                ..ThresholdOptimizer::default()
            }
            .optimize(&bnet, &input, seed)
        };
        let loose = opt(0.55);
        let strict = opt(0.99);
        for node in loose.nodes() {
            for (a, b) in loose
                .get(node)
                .unwrap()
                .iter()
                .zip(strict.get(node).unwrap())
            {
                prop_assert!(b <= a, "confidence monotonicity violated");
            }
        }
    }

    #[test]
    fn skip_maps_partition_consistently(seed in 0u64..50) {
        let bnet = BayesianNetwork::new(models::lenet5(seed), 0.3);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r * 5 + c + seed as usize) % 9) as f32 / 9.0
        });
        let net = bnet.network();
        let indicators = PolarityIndicators::from_network(net);
        let pre = bnet.forward_deterministic(&input);
        let zero_masks: Vec<Option<BitMask>> = net
            .nodes()
            .iter()
            .map(|n| {
                n.layer()
                    .filter(|l| l.is_conv())
                    .map(|_| pre.activations[n.id().0].zero_mask())
            })
            .collect();
        let thresholds = ThresholdOptimizer {
            samples: 2,
            ..ThresholdOptimizer::default()
        }
        .optimize(&bnet, &input, seed);
        let masks = bnet.generate_masks(seed, 0);
        let maps = build_skip_maps(net, &masks, &zero_masks, &indicators, &thresholds);
        for (idx, map) in maps.iter().enumerate() {
            let Some(map) = map else { continue };
            // Predicted bits live inside the pre-inference zero set.
            let zeros = zero_masks[idx].as_ref().unwrap();
            for i in map.predicted.iter_set() {
                prop_assert!(zeros.get(i), "prediction outside the zero set");
            }
            // Dropped bits equal the dropout mask exactly.
            prop_assert_eq!(&map.dropped, masks.get(fbcnn_nn::NodeId(idx)).unwrap());
            // Union algebra.
            let stats = map.stats();
            prop_assert_eq!(
                stats.skipped + map.dropped.count_and(&map.predicted),
                stats.dropped + stats.predicted
            );
        }
    }

    #[test]
    fn never_predict_thresholds_do_nothing(seed in 0u64..30) {
        let bnet = BayesianNetwork::new(models::lenet5(seed), 0.4);
        let input = Tensor::from_fn(bnet.network().input_shape(), |_, r, c| {
            ((r + c + seed as usize) % 6) as f32 / 6.0
        });
        let thresholds = ThresholdSet::never_predict(bnet.network().len());
        let pe = fbcnn_predictor::PredictiveInference::new(&bnet, &input, thresholds);
        let masks = bnet.generate_masks(seed, 1);
        let run = pe.run_sample(&masks);
        let exact = bnet.forward_sample(&input, &masks);
        prop_assert_eq!(run.logits(), exact.logits());
    }
}
