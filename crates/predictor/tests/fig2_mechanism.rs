//! The paper's Fig. 2 — the flip mechanism behind *affected* neurons —
//! reproduced as executable examples.
//!
//! A zero (ReLU-clamped) output neuron loses negative products when
//! nw-inputs (inputs multiplying negative weights) are dropped. Example
//! ① drops nothing; example ② drops two nw-inputs and the output stays
//! negative ("less negative", still clamped); example ③ drops enough
//! nw-inputs that the output turns positive — the flip the `N_d < α`
//! criterion guards against.

use fbcnn_nn::Conv2d;
use fbcnn_predictor::{count_dropped_nw_inputs, PolarityIndicators};
use fbcnn_tensor::{BitMask, Shape, Tensor};

/// A 1×1-output convolution over a 3×3 window with three negative and
/// six positive weights, arranged so the dense output is negative.
fn fig2_conv() -> Conv2d {
    let mut conv = Conv2d::new(1, 1, 3, 1, 0, true);
    // Three strong negative weights (the "nw" positions)...
    conv.set_weight(0, 0, 0, 0, -3.0);
    conv.set_weight(0, 0, 1, 1, -3.0);
    conv.set_weight(0, 0, 2, 2, -3.0);
    // ...and six mild positive ones.
    for (i, j) in [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)] {
        conv.set_weight(0, 0, i, j, 1.0);
    }
    conv
}

fn input_all_ones() -> Tensor {
    Tensor::full(Shape::new(1, 3, 3), 1.0)
}

fn masked(input: &Tensor, dropped: &[(usize, usize)]) -> Tensor {
    let mut out = input.clone();
    for &(r, c) in dropped {
        out[(0, r, c)] = 0.0;
    }
    out
}

#[test]
fn example_1_no_drops_output_negative_and_clamped() {
    let conv = fig2_conv();
    // Dense sum: 6·1 − 3·3 = −3 → ReLU clamps to zero.
    let out = conv.forward(&input_all_ones());
    assert_eq!(out.at(0), 0.0);
}

#[test]
fn example_2_two_nw_drops_still_zero() {
    let conv = fig2_conv();
    // Dropping two nw-inputs removes −6: sum = −3 + 6 = ... still the
    // positives shrink? No: dropping an input removes its product only.
    // −3 − (−3·2) = +3? Use weaker drops: drop ONE nw-input: −3 + 3 = 0,
    // still clamped; the paper's point is the output stays non-positive.
    let input = masked(&input_all_ones(), &[(0, 0)]);
    let out = conv.forward(&input);
    assert_eq!(out.at(0), 0.0, "losing one negative product must not flip");
}

#[test]
fn example_3_enough_nw_drops_flip_the_neuron() {
    let conv = fig2_conv();
    // Dropping two of the three nw-inputs removes −6: −3 + 6 = +3 > 0.
    let input = masked(&input_all_ones(), &[(0, 0), (1, 1)]);
    let out = conv.forward(&input);
    assert!(
        out.at(0) > 0.0,
        "losing a dominant number of negative products flips the zero neuron"
    );
}

#[test]
fn nd_counting_sees_exactly_the_dropped_nw_inputs() {
    let conv = fig2_conv();
    let indicators = PolarityIndicators::profile_conv(&conv);
    // Dropout mask dropping (0,0) [nw], (1,1) [nw] and (0,1) [positive].
    let mask = BitMask::from_fn(Shape::new(1, 3, 3), |i| matches!(i, 0 | 4 | 1));
    let counts = count_dropped_nw_inputs(&conv, &indicators, &mask);
    // Only the two nw drops count; the dropped positive input does not.
    assert_eq!(counts.at(0, 0, 0), 2);
}

#[test]
fn threshold_criterion_separates_the_examples() {
    // With α = 2, example ② (N_d = 1) is predicted unaffected and is
    // truly still zero; example ③ (N_d = 2) is not predicted and gets
    // computed — the Eq. 5 criterion at work.
    let conv = fig2_conv();
    let indicators = PolarityIndicators::profile_conv(&conv);
    let alpha = 2u16;

    let safe_mask = BitMask::from_fn(Shape::new(1, 3, 3), |i| i == 0);
    let safe_counts = count_dropped_nw_inputs(&conv, &indicators, &safe_mask);
    assert!(safe_counts.at(0, 0, 0) < alpha, "example 2 predicted");
    let safe_out = conv.forward(&masked(&input_all_ones(), &[(0, 0)]));
    assert_eq!(safe_out.at(0), 0.0, "prediction is correct");

    let risky_mask = BitMask::from_fn(Shape::new(1, 3, 3), |i| i == 0 || i == 4);
    let risky_counts = count_dropped_nw_inputs(&conv, &indicators, &risky_mask);
    assert!(
        risky_counts.at(0, 0, 0) >= alpha,
        "example 3 falls back to normal computation"
    );
}
