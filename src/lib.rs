#![warn(missing_docs)]

//! Root meta-crate of the Fast-BCNN reproduction workspace.
//!
//! This crate exists to host the top-level `examples/` and `tests/`
//! directories; the library surface lives in the member crates
//! (`fast-bcnn` and the `fbcnn-*` substrates). Downstream users should
//! depend on [`fast_bcnn`] directly.

pub use fast_bcnn as fastbcnn;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_is_reachable() {
        // The re-export wires the workspace together for examples/tests.
        let cfg = crate::fastbcnn::EngineConfig::default();
        assert_eq!(cfg.drop_rate, 0.3);
    }
}
