//! Algorithm 1 walk-through: optimize per-kernel thresholds at several
//! confidence levels and watch the precision/recall/skip-rate trade-off
//! move.
//!
//! ```sh
//! cargo run --release --example threshold_tuning
//! ```

use fast_bcnn::report::format_table;
use fast_bcnn::{evaluate_predictions, synth_input, BayesianNetwork, ThresholdOptimizer};
use fbcnn_nn::models::ModelKind;

fn main() {
    let bnet = BayesianNetwork::new(ModelKind::LeNet5.build(5), 0.3);
    let input = synth_input(bnet.network().input_shape(), 5);

    println!("Algorithm 1 on B-LeNet-5 (drop rate 0.3):\n");
    let mut rows = Vec::new();
    for pcf in [0.55, 0.68, 0.80, 0.90, 0.97] {
        let optimizer = ThresholdOptimizer::with_confidence(pcf);
        let thresholds = optimizer.optimize(&bnet, &input, 11);
        let report = evaluate_predictions(&bnet, &input, &thresholds, 8, 23);
        rows.push(vec![
            format!("{:.0}%", 100.0 * pcf),
            format!("{:.1}", thresholds.mean()),
            format!("{:.1}%", 100.0 * report.precision),
            format!("{:.1}%", 100.0 * report.recall),
            format!("{:.1}%", 100.0 * report.skip_rate),
            format!("{:.2}%", 100.0 * (1.0 - report.neuron_agreement)),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "p_cf",
                "mean alpha",
                "precision",
                "recall",
                "skip rate",
                "neurons changed"
            ],
            &rows
        )
    );
    println!("higher confidence -> smaller thresholds -> fewer (but safer) skips —");
    println!("exactly the Fig. 12(a) trade-off the paper tunes with p_cf.");

    // Show a few per-kernel thresholds for flavor.
    let thresholds = ThresholdOptimizer::default().optimize(&bnet, &input, 11);
    let node = bnet.network().conv_nodes()[1];
    let alphas = thresholds.get(node).expect("layer 2 has thresholds");
    println!(
        "\nper-kernel alpha for {} (first 8 kernels): {:?}",
        bnet.network().node(node).label(),
        &alphas[..8.min(alphas.len())]
    );
}
