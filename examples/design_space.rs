//! Accelerator design-space walk-through: build one workload and replay
//! it on every hardware model in the crate — the baseline, the four
//! Fast-BCNN design points, the FB-d / FB-u ablations, Cnvlutin and the
//! ideal skipper.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use fast_bcnn::report::format_table;
use fast_bcnn::{
    synth_input, BaselineSim, CnvlutinSim, Engine, EngineConfig, FastBcnnSim, HwConfig, IdealSim,
    SkipMode,
};
use fbcnn_nn::models::ModelKind;

fn main() {
    let engine = Engine::new(EngineConfig {
        samples: 25,
        ..EngineConfig::for_model(ModelKind::Vgg16)
    });
    let input = synth_input(engine.network().input_shape(), 3);

    // The workload (pre-inference + T passes + skip maps) is extracted
    // once; every hardware model replays it.
    let w = engine.workload(&input);
    println!(
        "workload: {} | T = {} | overall skip rate {:.1}%\n",
        w.model_name,
        w.t(),
        100.0 * w.total_skip_stats().skip_rate()
    );

    let base = BaselineSim::new(HwConfig::baseline()).run(&w);
    let mut rows = Vec::new();
    let mut push = |r: &fast_bcnn::RunReport| {
        rows.push(vec![
            r.name.clone(),
            r.total_cycles.to_string(),
            format!("{:.2}x", r.speedup_over(&base)),
            format!("{:.1}%", 100.0 * r.energy_reduction_vs(&base)),
            format!("{:.0}us", 1e6 * r.seconds_at(100)),
        ]);
    };
    push(&base);
    push(&CnvlutinSim::new().run(&w));
    for tm in [8, 16, 32, 64] {
        push(&FastBcnnSim::new(HwConfig::fast_bcnn(tm), SkipMode::Both).run(&w));
    }
    push(&FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::DroppedOnly).run(&w));
    push(&FastBcnnSim::new(HwConfig::fast_bcnn(64), SkipMode::UnaffectedOnly).run(&w));
    push(&IdealSim::new(HwConfig::fast_bcnn(64)).run(&w));

    println!(
        "{}",
        format_table(
            &[
                "design",
                "total cycles",
                "speedup",
                "energy red.",
                "time @100MHz"
            ],
            &rows
        )
    );

    // Resource story (Table II).
    let res = fbcnn_accel::resources::estimate(&HwConfig::fast_bcnn(64));
    println!(
        "FB-64 prediction machinery overhead: {} LUTs + {} LUTs on top of {} (≈{:.1}%)",
        res.prediction_units.luts,
        res.central_predictor.luts,
        res.convolution_units.luts,
        100.0 * (res.prediction_units.luts + res.central_predictor.luts) as f64
            / res.convolution_units.luts as f64
    );
}
