//! Out-of-distribution detection (paper §I's driving motivation: an
//! unfamiliar input should *raise uncertainty*, not produce a confident
//! wrong answer).
//!
//! A trained LeNet-5 sees (a) in-distribution digits and (b) structured
//! junk it was never trained on. The Bayesian ensemble's predictive
//! entropy separates the two; a plain CNN gives one overconfident softmax
//! either way.
//!
//! ```sh
//! cargo run --release --example ood_detection
//! ```

use fast_bcnn::{Engine, EngineConfig, McDropout, PredictiveInference};
use fbcnn_nn::data::SynthDigits;
use fbcnn_nn::models::{ModelKind, ModelScale};
use fbcnn_nn::train::{self, TrainConfig};
use fbcnn_tensor::{stats, Shape, Tensor};

/// Structured junk: smooth random blobs — bright like digits, shaped like
/// nothing the network was trained on.
fn ood_input(seed: u64) -> Tensor {
    fast_bcnn::synth_input(Shape::new(1, 28, 28), 0xBAD_0000 + seed)
}

fn main() {
    let mut net = ModelKind::LeNet5.build(1);
    fbcnn_nn::init::he_uniform(&mut net, 1);
    let train_set = SynthDigits::new(1).batch(0, 400);
    train::train(
        &mut net,
        &train_set,
        &TrainConfig {
            epochs: 7,
            ..TrainConfig::default()
        },
    );

    let samples = 16;
    let engine = Engine::with_network(
        net,
        EngineConfig {
            model: ModelKind::LeNet5,
            scale: ModelScale::FULL,
            drop_rate: 0.3,
            samples,
            confidence: 0.68,
            calibration_samples: 6,
            seed: 7,
            threads: 1,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        },
    );

    let mc = |image: &Tensor| {
        let pe = PredictiveInference::new(
            engine.bayesian_network(),
            image,
            engine.thresholds().clone(),
        );
        let probs = (0..samples)
            .map(|t| {
                let masks = engine.bayesian_network().generate_masks(7, t);
                stats::softmax(pe.run_sample(&masks).logits())
            })
            .collect();
        McDropout::summarize(probs)
    };

    let n = 30;
    let test = SynthDigits::new(555).batch(0, n);
    let mut id_mi = Vec::new();
    let mut ood_mi = Vec::new();
    for (i, s) in test.iter().enumerate() {
        id_mi.push(mc(&s.image).predictive_entropy);
        ood_mi.push(mc(&ood_input(i as u64)).predictive_entropy);
    }

    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
    println!("predictive entropy (nats), {n} cases each:");
    println!("  in-distribution digits: mean {:.4}", mean(&id_mi));
    println!("  out-of-distribution:    mean {:.4}", mean(&ood_mi));

    // A simple detector: flag inputs above an ID-derived threshold.
    let mut sorted = id_mi.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let threshold = sorted[(0.9 * n as f32) as usize]; // 90th percentile of ID
    let caught = ood_mi.iter().filter(|&&m| m > threshold).count();
    let false_alarms = id_mi.iter().filter(|&&m| m > threshold).count();
    println!(
        "\ndetector at the 90th ID percentile ({threshold:.4}):\n  flags {caught}/{n} OOD inputs, {false_alarms}/{n} false alarms"
    );
    println!("\nthe skipping inference preserves the uncertainty signal the");
    println!("detector rests on, at a fraction of the per-sample compute.");
}
