//! Quickstart: build a Bayesian LeNet-5, run MC-dropout inference with
//! neuron skipping, and compare against the exact run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fast_bcnn::{synth_input, Engine, EngineConfig};
use fbcnn_nn::models::ModelKind;

fn main() {
    // An engine bundles: the network, the dropout machinery, and the
    // offline Algorithm-1 threshold calibration.
    let engine = Engine::new(EngineConfig {
        samples: 24,
        ..EngineConfig::for_model(ModelKind::LeNet5)
    });
    println!(
        "model: {} ({} conv layers, {} MACs/pass)",
        engine.network().name(),
        engine.network().conv_nodes().len(),
        engine.network().total_macs()
    );

    let input = synth_input(engine.network().input_shape(), 7);

    // Exact MC dropout: T dense stochastic passes.
    let exact = engine.predict_exact(&input);
    // Fast-BCNN: pre-inference + T skipping passes.
    let (fast, stats) = engine.predict_fast(&input);

    println!(
        "\nexact    class {} entropy {:.3} nats",
        exact.class, exact.predictive_entropy
    );
    println!(
        "skipping class {} entropy {:.3} nats",
        fast.class, fast.predictive_entropy
    );
    println!(
        "skipped {} of {} neuron computations ({:.1}%)",
        stats.skipped,
        stats.total,
        100.0 * stats.skip_rate()
    );
    println!(
        "  dropped neurons:   {:>8} ({:.1}%)",
        stats.dropped,
        100.0 * stats.dropped as f64 / stats.total as f64
    );
    println!(
        "  predicted zeros:   {:>8} ({:.1}%)",
        stats.predicted,
        100.0 * stats.predicted as f64 / stats.total as f64
    );

    let shift: f32 = exact
        .mean
        .iter()
        .zip(&fast.mean)
        .map(|(a, b)| (a - b).abs())
        .sum();
    println!("\ntotal probability mass moved by skipping: {shift:.4}");

    // And what the hardware would make of it.
    let workload = engine.workload(&input);
    let base = engine.simulate_baseline(&workload);
    let fb = engine.simulate_fast(&workload, 64);
    println!(
        "\nsimulated FB-64: {:.2}x speedup, {:.1}% energy reduction over the baseline accelerator",
        fb.speedup_over(&base),
        100.0 * fb.energy_reduction_vs(&base)
    );
}
