//! Medical-referral scenario (paper §I, Leibig et al.): train LeNet-5 on
//! SynthDigits, run Bayesian inference with neuron skipping, and *refer*
//! the most uncertain cases to a human instead of auto-deciding.
//!
//! The headline property: accuracy on the retained (confident) cases is
//! higher than overall accuracy — uncertainty flags the mistakes — and
//! the skipping inference preserves that behaviour at a fraction of the
//! compute.
//!
//! ```sh
//! cargo run --release --example uncertainty_gate
//! ```

use fast_bcnn::{Engine, EngineConfig, McDropout, PredictiveInference};
use fbcnn_bayes::metrics::ReferralGate;
use fbcnn_nn::data::SynthDigits;
use fbcnn_nn::models::{ModelKind, ModelScale};
use fbcnn_nn::train::{self, TrainConfig};

fn main() {
    // 1. Train the underlying CNN.
    let mut net = ModelKind::LeNet5.build(1);
    fbcnn_nn::init::he_uniform(&mut net, 1);
    let train_set = SynthDigits::new(1).batch(0, 400);
    let report = train::train(
        &mut net,
        &train_set,
        &TrainConfig {
            epochs: 7,
            ..TrainConfig::default()
        },
    );
    println!(
        "trained LeNet-5: {:.1}% train accuracy (losses {:?})",
        100.0 * report.final_train_accuracy,
        report
            .epoch_losses
            .iter()
            .map(|l| (l * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // 2. Wrap it as a BCNN with calibrated skipping.
    let samples = 16;
    let engine = Engine::with_network(
        net,
        EngineConfig {
            model: ModelKind::LeNet5,
            scale: ModelScale::FULL,
            drop_rate: 0.3,
            samples,
            confidence: 0.68,
            calibration_samples: 6,
            seed: 42,
            threads: 1,
            ..EngineConfig::for_model(ModelKind::LeNet5)
        },
    );

    // 3. Classify a held-out test set with the skipping inference,
    //    recording predictive entropy per case.
    let test = SynthDigits::new(999).batch(0, 120);
    let mut cases: Vec<(f32, bool)> = Vec::new(); // (entropy, correct)
    let mut skip = fast_bcnn::SkipStats::default();
    for s in &test {
        let pe = PredictiveInference::new(
            engine.bayesian_network(),
            &s.image,
            engine.thresholds().clone(),
        );
        let (probs, stats) = pe.run_mc(42, samples);
        skip.absorb(stats);
        let pred = McDropout::summarize(probs);
        cases.push((pred.predictive_entropy, pred.class == s.label));
    }

    let overall = cases.iter().filter(|(_, c)| *c).count() as f64 / cases.len() as f64;
    println!(
        "\noverall accuracy (skipping BCNN, T = {samples}): {:.1}%  — {:.1}% of neuron work skipped",
        100.0 * overall,
        100.0 * skip.skip_rate()
    );

    // 4. Refer the most uncertain fraction of cases via the gate API.
    let entropies: Vec<f32> = cases.iter().map(|(e, _)| *e).collect();
    for referral in [0.0, 0.1, 0.2, 0.3] {
        let gate = ReferralGate::from_quantile(&entropies, 1.0 - referral);
        let (retained, referred) = gate.partition(cases.clone());
        let acc = retained.iter().filter(|&&c| c).count() as f64 / retained.len().max(1) as f64;
        println!(
            "refer {:>4.0}% most uncertain -> retained accuracy {:.1}% ({} kept, {} referred)",
            100.0 * referral,
            100.0 * acc,
            retained.len(),
            referred.len()
        );
    }
    println!("\nuncertainty gating turns Bayesian spread into avoided mistakes —");
    println!("and Fast-BCNN's skipping makes the T-sample ensemble affordable.");
}
