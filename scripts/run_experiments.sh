#!/usr/bin/env bash
# Regenerates every table and figure of the paper's evaluation into
# results/ (text + JSON). Full scale, T = 50 — expect ~30-60 minutes on
# one core. Pass --quick through to every harness for a fast smoke run:
#
#   scripts/run_experiments.sh          # full protocol
#   scripts/run_experiments.sh --quick  # minutes, tiny models
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results

EXPERIMENTS=(table01 table02 table03 motivation fig03 fig04 accuracy breakdown \
             sync_audit ablation fig10 fig12b fig12a fig11 timeline)

for exp in "${EXPERIMENTS[@]}"; do
  echo "=== $exp $(date +%T) ==="
  cargo run -q -p fbcnn-bench --release --bin "$exp" -- \
    "$@" --json "results/$exp.json" \
    --trace-out "results/$exp.trace.jsonl" \
    --metrics-out "results/$exp.metrics.prom" | tee "results/$exp.txt"
done
echo "all experiments written to results/ (tables + JSON + telemetry traces)"
